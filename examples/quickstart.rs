//! Quickstart: the paper's Figure 1 scenario.
//!
//! A sparse auction-attribute table is stored vertically (attribute name /
//! value pairs). We define a pivoted materialized view over it, let the
//! planner compile a maintenance strategy, and refresh the view
//! incrementally as auctions change.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gpivot::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. The vertical base table (Figure 1's ItemInfo) ────────────────
    let schema = Schema::from_pairs_keyed(
        &[
            ("AuctionID", DataType::Int),
            ("Attribute", DataType::Str),
            ("Value", DataType::Str),
        ],
        &["AuctionID", "Attribute"],
    )?;
    let iteminfo = Table::from_rows(
        Arc::new(schema),
        vec![
            row![1, "Manufacturer", "Sony"],
            row![1, "Type", "TV"],
            row![2, "Manufacturer", "Panasonic"],
            row![3, "Type", "VCR"],
        ],
    )?;
    let mut catalog = Catalog::new();
    catalog.register("iteminfo", iteminfo)?;
    println!("ItemInfo (vertical storage):");
    println!("{}", catalog.table("iteminfo")?);

    // ── 2. A pivoted materialized view ──────────────────────────────────
    let view = Plan::scan("iteminfo").gpivot(PivotSpec::simple(
        "Attribute",
        "Value",
        vec![Value::str("Manufacturer"), Value::str("Type")],
    ));
    let mut vm = ViewManager::new(catalog);
    let strategy = vm.register_view("items_pivoted", view)?;
    println!("planner chose maintenance strategy: {strategy}\n");
    println!("Pivoted view (horizontal):");
    println!("{}", vm.query_view("items_pivoted")?);

    // ── 3. Incremental maintenance ──────────────────────────────────────
    // Auction 2 gets a Type; auction 3 gets a Manufacturer; auction 1's
    // manufacturer is corrected.
    let mut deltas = SourceDeltas::new();
    deltas.insert_rows(
        "iteminfo",
        vec![row![2, "Type", "DVD"], row![3, "Manufacturer", "Panasonic"]],
    );
    deltas.delete_rows("iteminfo", vec![row![1, "Manufacturer", "Sony"]]);
    deltas.insert_rows("iteminfo", vec![row![1, "Manufacturer", "JVC"]]);

    let outcomes = vm.refresh(&deltas)?;
    let outcome = &outcomes["items_pivoted"];
    println!(
        "refresh touched {} rows ({} inserted, {} updated, {} deleted):",
        outcome.stats.total(),
        outcome.stats.inserted,
        outcome.stats.updated,
        outcome.stats.deleted,
    );
    println!("{}", vm.query_view("items_pivoted")?);

    // ── 4. The view is exactly what recomputation would produce ─────────
    assert!(vm.verify_view("items_pivoted")?);
    println!("verified: incremental result equals recomputation ✓");
    Ok(())
}
