//! The serve-layer dashboard: the paper's three TPC-H evaluation views
//! registered in one long-lived `ViewService`, fed interleaved change
//! batches from concurrent producer threads, refreshed in epochs on a
//! parallel worker pool while a reader thread takes consistent snapshots.
//!
//! ```text
//! cargo run --release --example serve_dashboard
//! ```

use gpivot::prelude::*;
use gpivot::tpch::views::VIEW2_THRESHOLD;
use gpivot::tpch::{generate, view1, view2, view3, workload, TpchConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const EPOCHS: u64 = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size synthetic TPC-H database.
    let config = TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(0.2)
    };
    println!(
        "generating TPC-H-shaped data (scale {}) ...",
        config.scale_factor
    );
    let catalog = generate(&config);
    println!(
        "  lineitem {} rows / orders {} / customers {}",
        catalog.table("lineitem")?.len(),
        catalog.table("orders")?.len(),
        catalog.table("customer")?.len()
    );

    // The mirror catalog the workload generators sample from; it advances
    // in lock-step with what the service commits.
    let mirror = Arc::new(Mutex::new(catalog.clone()));

    let svc = ViewService::new(catalog, ServeConfig::default());
    for (name, plan) in [
        ("orders_crosstab", view1()),
        ("big_orders", view2(VIEW2_THRESHOLD)),
        ("sales_by_year", view3()),
    ] {
        let strategy = svc.register_view(name, plan)?;
        println!("registered {name:<16} strategy = {strategy}");
    }

    println!("\nstreaming {EPOCHS} epochs of mixed base-table activity:");
    println!(
        "{:>6} {:>12} {:>8} {:>12} {:>12} {:>10}",
        "epoch", "delta rows", "views", "propagated", "applied", "refresh"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let snapshots_taken = Arc::new(AtomicU64::new(0));

    std::thread::scope(|s| -> Result<(), Box<dyn std::error::Error>> {
        // A reader thread continuously takes snapshots: every view it sees
        // belongs to the same epoch, even while refreshes run.
        {
            let svc = svc.clone();
            let stop = Arc::clone(&stop);
            let snapshots_taken = Arc::clone(&snapshots_taken);
            s.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let snap = svc.snapshot();
                    let rows = snap.query_view("sales_by_year").map(|t| t.len());
                    assert!(rows.is_ok());
                    drop(snap);
                    snapshots_taken.fetch_add(1, Ordering::SeqCst);
                    std::thread::yield_now();
                }
            });
        }

        for epoch in 0..EPOCHS {
            // Two concurrent producers per epoch, each ingesting its own
            // per-table batches (the queue coalesces them additively).
            let batches = {
                let mirror = mirror.lock().unwrap();
                match epoch % 3 {
                    0 => vec![
                        workload::mixed_batch(&mirror, 0.01, 70 + epoch),
                        workload::order_churn(&mirror, 0.005, 80 + epoch),
                    ],
                    1 => vec![
                        workload::delete_fraction(&mirror, "lineitem", 0.005, 70 + epoch),
                        workload::customer_churn(&mirror, 0.01, 80 + epoch),
                    ],
                    _ => vec![workload::insert_new_rows(&mirror, 0.01, 70 + epoch)],
                }
            };
            std::thread::scope(|p| {
                for batch in &batches {
                    let svc = svc.clone();
                    p.spawn(move || {
                        for table in batch.tables() {
                            svc.ingest_with(
                                table,
                                batch.delta(table).unwrap().clone(),
                                IngestOptions::blocking(),
                            )
                            .unwrap();
                        }
                    });
                }
            });
            for batch in &batches {
                let mut mirror = mirror.lock().unwrap();
                for table in batch.tables() {
                    mirror.apply_delta(table, batch.delta(table).unwrap())?;
                }
            }

            let summary = svc.refresh_epoch()?;
            println!(
                "{:>6} {:>12} {:>8} {:>12} {:>12} {:>8.2}ms",
                summary.epoch,
                summary.delta_rows,
                summary.views_refreshed,
                summary.rows_propagated,
                summary.rows_applied,
                summary.duration.as_secs_f64() * 1e3,
            );
        }
        stop.store(true, Ordering::SeqCst);
        Ok(())
    })?;

    // Every view still equals its definition recomputed from scratch.
    assert!(svc.verify_all()?);
    println!(
        "\nall views verified against recomputation after {EPOCHS} epochs ✓ \
         ({} consistent snapshots observed)",
        snapshots_taken.load(Ordering::SeqCst)
    );

    let metrics = svc.metrics();
    println!("\n{}", metrics.report());

    // The same snapshot in Prometheus text exposition — what a `/metrics`
    // endpoint would serve. Phase and operator timing histograms appear as
    // one `gpivot_span_duration_seconds` family with log2 `le` buckets.
    println!("--- prometheus exposition ---");
    print!("{}", metrics.prometheus());
    Ok(())
}
