//! Observability tour: EXPLAIN trees, §7.1 SQL rendering, `EXPLAIN
//! ANALYZE`-style execution traces, the cost model's strategy choice, and a
//! dynamic (high-order) pivot that recompiles itself when new dimension
//! values appear.
//!
//! ```text
//! cargo run --example explain_and_cost
//! ```

use gpivot::core::cost::{cheapest_strategy, estimate_refresh_cost, CatalogStats};
use gpivot::core::dynamic::{DynamicPivotView, DynamicRefresh};
use gpivot::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small payments table.
    let schema = Schema::from_pairs_keyed(
        &[
            ("id", DataType::Int),
            ("method", DataType::Str),
            ("amount", DataType::Int),
        ],
        &["id", "method"],
    )?;
    let mut rows = Vec::new();
    for id in 0..200i64 {
        for (mi, m) in ["card", "cash"].iter().enumerate() {
            if (id + mi as i64) % 3 != 0 {
                rows.push(row![id, *m, (id * 13 + mi as i64) % 500]);
            }
        }
    }
    let mut catalog = Catalog::new();
    catalog.register("payments", Table::from_rows(Arc::new(schema), rows)?)?;

    let view = Plan::scan("payments")
        .gpivot(PivotSpec::simple(
            "method",
            "amount",
            vec![Value::str("card"), Value::str("cash")],
        ))
        .select(Expr::col("card**amount").gt(Expr::lit(250)));

    // ── EXPLAIN: the algebra tree ────────────────────────────────────────
    println!("═══ EXPLAIN ═══\n{view}");

    // ── SQL: the paper's §7.1 non-intrusive realization ──────────────────
    println!("═══ SQL (§7.1 dialect) ═══\n{}\n", view.to_sql(&catalog)?);

    // ── EXPLAIN ANALYZE: per-operator row counts ─────────────────────────
    let (result, trace) = Executor::new().run_traced(&view, &catalog)?;
    println!("═══ EXPLAIN ANALYZE ═══\n{trace}");
    println!("view rows: {}\n", result.len());

    // ── Cost model: per-strategy refresh estimates ───────────────────────
    let stats = CatalogStats::from_catalog(&catalog);
    println!("═══ cost model (expected delta = 20 rows) ═══");
    for strategy in Strategy::ALL {
        match estimate_refresh_cost(&view, strategy, &stats, &catalog, 20.0) {
            Some(cost) => println!("  {strategy:<24} ≈ {cost:>10.0} row-ops"),
            None => println!("  {strategy:<24}   (not applicable)"),
        }
    }
    let (best, cost) = cheapest_strategy(&view, &stats, &catalog, 20.0).unwrap();
    println!("  → cheapest: {best} ({cost:.0} row-ops)\n");

    // ── Dynamic pivot: schema evolves with the data ──────────────────────
    println!("═══ dynamic (high-order) pivot ═══");
    let mut dynamic = DynamicPivotView::create(&catalog, "payments", &["method"], &["amount"])?;
    println!(
        "discovered methods: {:?}",
        dynamic
            .spec()
            .groups
            .iter()
            .map(|g| g[0].to_string())
            .collect::<Vec<_>>()
    );

    // In-domain change: incremental refresh.
    let mut deltas = SourceDeltas::new();
    deltas.insert_rows("payments", vec![row![500, "card", 42]]);
    match dynamic.refresh(&catalog, &deltas)? {
        DynamicRefresh::Incremental(stats) => {
            println!(
                "in-domain insert  → incremental ({} rows touched)",
                stats.total()
            )
        }
        other => println!("unexpected: {other:?}"),
    }
    catalog.apply_delta("payments", deltas.delta("payments").unwrap())?;

    // A brand-new payment method: the view recompiles with a new column.
    let mut deltas = SourceDeltas::new();
    deltas.insert_rows("payments", vec![row![501, "crypto", 7]]);
    match dynamic.refresh(&catalog, &deltas)? {
        DynamicRefresh::Recompiled { new_groups } => {
            println!("new method insert → recompiled ({new_groups} pivot columns now)")
        }
        other => println!("unexpected: {other:?}"),
    }
    catalog.apply_delta("payments", deltas.delta("payments").unwrap())?;
    assert!(dynamic.table().schema().index_of("crypto**amount").is_ok());
    assert!(dynamic.verify(&catalog)?);
    println!("dynamic view verified ✓");
    Ok(())
}
