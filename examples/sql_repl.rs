//! An interactive SQL shell over [`GpivotService`]: type statements in the
//! §7.1 dialect against a small generated TPC-H catalog.
//!
//! ```text
//! cargo run --example sql_repl
//! ```
//!
//! Statements end with `;` and may span lines. Try:
//!
//! ```sql
//! CREATE MATERIALIZED VIEW prices AS
//!   SELECT * FROM (
//!     SELECT l_orderkey, l_linenumber, l_extendedprice FROM lineitem
//!   ) sub GPIVOT (l_extendedprice BY l_linenumber IN ((1), (2), (3)));
//!
//! EXPLAIN SELECT * FROM (
//!   SELECT * FROM (
//!     SELECT l_orderkey, l_linenumber, l_extendedprice FROM lineitem
//!   ) sub GPIVOT (l_extendedprice BY l_linenumber IN ((1), (2), (3)))
//! ) sub WHERE "1**l_extendedprice" > 30000.0;
//! ```
//!
//! Meta-commands: `\views` (registered views), `\metrics` (serve counters,
//! including `gpivot_sql_rewrites_total`), `:save <dir>` (checkpoint the
//! full service state — views, base tables, pending queue — to a
//! directory), `:open <dir>` (replace the session with the state saved
//! there; views are recovered from their persisted SQL), `\q` to exit.

use gpivot::prelude::*;
use std::io::{BufRead, Write as _};

const MAX_PRINTED_ROWS: usize = 20;

fn print_rows(table: &Table, used_view: Option<&str>) {
    let schema = table.schema();
    let header: Vec<&str> = (0..schema.arity())
        .map(|i| schema.field_at(i).name.as_str())
        .collect();
    println!("{}", header.join(" | "));
    for (i, row) in table.rows().iter().enumerate() {
        if i == MAX_PRINTED_ROWS {
            println!("... ({} rows total)", table.len());
            break;
        }
        let cells: Vec<String> = row.values().iter().map(|v| v.to_string()).collect();
        println!("{}", cells.join(" | "));
    }
    match used_view {
        Some(v) => println!("({} rows, served from view {v})", table.len()),
        None => println!("({} rows, from base tables)", table.len()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("gpivot sql shell — generating TPC-H (scale 0.02)...");
    let catalog = gpivot::tpch::generate(&gpivot::tpch::TpchConfig::scale(0.02));
    let tables: Vec<String> = catalog
        .table_names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let seed = catalog.clone();
    let mut svc = GpivotService::new(catalog);
    println!("tables: {}", tables.join(", "));
    println!("end statements with `;` — \\views, \\metrics, :save <dir>, :open <dir>, \\q to quit");

    let stdin = std::io::stdin();
    let mut buf = String::new();
    loop {
        print!("{}", if buf.is_empty() { "sql> " } else { "...> " });
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let trimmed = line.trim();
        if buf.is_empty() {
            match trimmed {
                "\\q" | "exit" | "quit" => break,
                "\\views" => {
                    for name in svc.service().view_names() {
                        println!("{name}");
                    }
                    continue;
                }
                "\\metrics" => {
                    print!("{}", svc.service().metrics().report());
                    continue;
                }
                "" => continue,
                _ => {}
            }
            if let Some(dir) = trimmed.strip_prefix(":save ") {
                match svc.save(dir.trim()) {
                    Ok(bytes) => println!("saved state to {} ({bytes} bytes)", dir.trim()),
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
            if let Some(dir) = trimmed.strip_prefix(":open ") {
                let dir = dir.trim();
                match GpivotService::open(dir, seed.clone(), ServeConfig::default()) {
                    Ok((opened, report)) => {
                        svc = opened;
                        if report.recovered {
                            println!(
                                "opened {dir} — {} views restored at epoch {}",
                                report.views_recovered + report.views_recomputed,
                                report.recovered_epoch
                            );
                        } else {
                            println!("{dir} had no saved state — started a fresh durable session");
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
                continue;
            }
        }
        buf.push_str(&line);
        if !buf.trim_end().ends_with(';') {
            continue; // keep accumulating the statement
        }
        let stmt = std::mem::take(&mut buf);
        match svc.execute_sql(&stmt) {
            Ok(SqlOutcome::ViewCreated {
                name,
                strategy,
                lint_warnings,
            }) => {
                println!("created materialized view {name} (strategy: {strategy})");
                for w in lint_warnings {
                    println!("lint: {w}");
                }
            }
            Ok(SqlOutcome::Rows { table, used_view }) => {
                print_rows(&table, used_view.as_deref());
            }
            Ok(SqlOutcome::Explain { text }) => print!("{text}"),
            Err(e) => println!("error: {e}"),
        }
    }
    Ok(())
}
