//! A streaming "sales dashboard": the paper's aggregate crosstab view
//! (Figure 39) maintained incrementally over a stream of order activity,
//! with per-batch timings against full recomputation.
//!
//! ```text
//! cargo run --release --example sales_dashboard
//! ```

use gpivot::prelude::*;
use gpivot::tpch::{
    delete_fraction, generate, insert_new_rows, insert_updates_only, view3, TpchConfig,
};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size synthetic TPC-H database.
    let config = TpchConfig {
        scale_factor: 0.5,
        empty_order_fraction: 0.25,
        ..TpchConfig::default()
    };
    println!(
        "generating TPC-H-shaped data (scale {}) ...",
        config.scale_factor
    );
    let catalog = generate(&config);
    println!(
        "  lineitem {} rows / orders {} / customers {}",
        catalog.table("lineitem")?.len(),
        catalog.table("orders")?.len(),
        catalog.table("customer")?.len()
    );

    // The crosstab view: per (customer, nation), yearly sales totals and
    // counts pivoted into columns.
    let mut vm = ViewManager::new(catalog);
    let strategy = vm.register_view("dashboard", view3())?;
    println!(
        "dashboard view: {} rows × {} visible columns, strategy = {strategy}\n",
        vm.view("dashboard")?.len(),
        vm.query_view("dashboard")?.schema().arity(),
    );

    // A small sample of the crosstab.
    let sample = vm.query_view("dashboard")?;
    let shown = sample.rows().iter().take(3).cloned().collect::<Vec<_>>();
    let preview = Table::bag(sample.schema().clone(), shown);
    println!("sample rows:\n{preview}");

    // Stream 6 batches of mixed activity and maintain incrementally.
    println!("streaming change batches:");
    println!(
        "{:>5} {:>22} {:>12} {:>14} {:>14}",
        "batch", "workload", "delta rows", "incremental", "recompute-est"
    );
    for batch in 0u64..6 {
        let pre = vm.catalog().clone();
        let (label, deltas) = match batch % 3 {
            0 => (
                "deletes (0.5%)",
                delete_fraction(&pre, "lineitem", 0.005, 50 + batch),
            ),
            1 => (
                "update inserts (0.5%)",
                insert_updates_only(&pre, 0.005, 50 + batch),
            ),
            _ => (
                "new-order inserts",
                insert_new_rows(&pre, 0.005, 50 + batch),
            ),
        };
        let n = deltas.total_changes();

        let t = Instant::now();
        vm.refresh(&deltas)?;
        let incremental = t.elapsed();

        // What a recompute would have cost on the (now committed) state.
        let t = Instant::now();
        let _ = Executor::new().run(&view3(), vm.catalog())?;
        let recompute = t.elapsed();

        println!(
            "{:>5} {:>22} {:>12} {:>12.2}ms {:>12.2}ms",
            batch,
            label,
            n,
            incremental.as_secs_f64() * 1e3,
            recompute.as_secs_f64() * 1e3,
        );
    }

    assert!(vm.verify_view("dashboard")?);
    println!("\ndashboard verified against recomputation after 6 batches ✓");
    Ok(())
}
