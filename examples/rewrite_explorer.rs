//! Tour of the rewriting rules: combination (Eq. 5–6), pullups (Eq. 7–10),
//! pushdowns (Eq. 11–12) and the query optimizer built from them — the
//! paper's "dual purpose" claim made visible.
//!
//! ```text
//! cargo run --example rewrite_explorer
//! ```

use gpivot::core::combine::{can_combine, compose_specs, split_composition};
use gpivot::core::rewrite::optimizer::optimize;
use gpivot::core::rewrite::pullup::push_select_below_pivot_selfjoin;
use gpivot::prelude::*;
use std::sync::Arc;

fn catalog() -> Result<Catalog, Box<dyn std::error::Error>> {
    let sales_schema = Schema::from_pairs_keyed(
        &[
            ("Country", DataType::Str),
            ("Manu", DataType::Str),
            ("Type", DataType::Str),
            ("Price", DataType::Int),
        ],
        &["Country", "Manu", "Type"],
    )?;
    let sales = Table::from_rows(
        Arc::new(sales_schema),
        vec![
            row!["USA", "Sony", "TV", 100],
            row!["USA", "Sony", "VCR", 150],
            row!["USA", "Panasonic", "TV", 120],
            row!["Japan", "Sony", "TV", 90],
            row!["Japan", "Panasonic", "VCR", 80],
        ],
    )?;
    let mut c = Catalog::new();
    c.register("sales", sales)?;
    Ok(c)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c = catalog()?;

    // ── Composition (Eq. 6, Figure 6) ───────────────────────────────────
    println!("═══ pivot composition (Eq. 6) ═══");
    let inner = PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")]);
    let outer = PivotSpec::new(
        vec!["Manu"],
        inner.output_col_names(),
        vec![vec![Value::str("Sony")], vec![Value::str("Panasonic")]],
    );
    println!("combinability: {}", can_combine(&inner, &outer));
    let combined = compose_specs(&inner, &outer)?;
    println!("combined spec: {combined}");
    let stacked = Plan::scan("sales").gpivot(inner).gpivot(outer);
    let merged = Plan::scan("sales").gpivot(combined.clone());
    let a = Executor::new().run(&stacked, &c)?;
    let b = Executor::new().run(&merged, &c)?;
    assert!(a.bag_eq(&b));
    println!("stacked pivots ≡ combined pivot on real data ✓");
    println!("{b}");

    // ── Split (§4.3) ─────────────────────────────────────────────────────
    println!("═══ split (§4.3): the reverse rewrite ═══");
    let parts = split_composition(&combined, 1)?;
    println!(
        "split back into: inner {} / outer {}",
        parts.first, parts.second
    );

    // ── Fig. 7's non-combinable cases ────────────────────────────────────
    println!("\n═══ §4.2.3 completeness: a non-combinable pair ═══");
    let bad_outer = PivotSpec::new(
        vec!["Country"],
        vec!["TV**Price"], // consumes only some pivoted columns
        vec![vec![Value::str("USA")]],
    );
    let inner2 = PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")]);
    println!("verdict: {}", can_combine(&inner2, &bad_outer));

    // ── Eq. 7: selection over pivoted cells → self-joins ────────────────
    println!("\n═══ Eq. 7: pushing σ(cell) below the pivot ═══");
    let filtered = Plan::scan("sales")
        .gpivot(PivotSpec::new(
            vec!["Manu", "Type"],
            vec!["Price"],
            vec![
                vec![Value::str("Sony"), Value::str("TV")],
                vec![Value::str("Sony"), Value::str("VCR")],
            ],
        ))
        .select(Expr::col("Sony**TV**Price").gt(Expr::lit(95)));
    println!("before:\n{filtered}");
    let pushed = push_select_below_pivot_selfjoin(&filtered, &c)?;
    println!("after (pivot on top, σ as key-qualifying self-joins):\n{pushed}");
    let x = Executor::new().run(&filtered, &c)?;
    let y = Executor::new().run(&pushed, &c)?;
    assert!(x.bag_eq(&y));
    println!("equivalent on real data ✓");

    // ── The optimizer: cancellation (Eq. 9) found automatically ────────
    println!("\n═══ optimizer: GUNPIVOT(GPIVOT(V)) cancels (Eq. 9) ═══");
    let spec = PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")]);
    let roundtrip = Plan::scan("sales")
        .gpivot(spec.clone())
        .gunpivot(UnpivotSpec::reversing(&spec));
    println!(
        "before ({} nodes, {} pivots):\n{roundtrip}",
        roundtrip.node_count(),
        roundtrip.pivot_count()
    );
    let (optimized, log) = optimize(&roundtrip, &c);
    println!("rules: {log:?}");
    println!(
        "after ({} nodes, {} pivots):\n{optimized}",
        optimized.node_count(),
        optimized.pivot_count()
    );
    let x = Executor::new().run(&roundtrip, &c)?;
    let y = Executor::new().run(&optimized, &c)?;
    assert!(x.bag_eq(&y));
    println!("equivalent on real data ✓");
    Ok(())
}
