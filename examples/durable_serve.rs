//! The durability loop end to end: a `ViewService` opened on a directory,
//! views registered and fed through committed epochs, a checkpoint, a
//! seeded *kill point* crashing the service mid-append — and then recovery:
//! reopen the same directory, watch the torn log tail get truncated and the
//! committed epochs come back, and verify every view against full
//! recomputation.
//!
//! ```text
//! cargo run --release --example durable_serve
//! ```

use gpivot::prelude::*;
use gpivot::serve::FsyncPolicy;
use gpivot::tpch::{generate, view1, view3, workload, TpchConfig};

fn parse(sql: &str) -> Result<Plan, String> {
    gpivot::sql::parse_query(sql).map_err(|e| e.to_string())
}

fn ingest_batch(
    svc: &ViewService,
    mirror: &mut Catalog,
    fraction: f64,
    seed: u64,
) -> Result<(), Box<dyn std::error::Error>> {
    // Generate against the mirror so deletes always name live rows, then
    // advance the mirror in lock-step with what the service will commit.
    let batch = workload::mixed_batch(mirror, fraction, seed);
    for table in batch.tables().map(str::to_string).collect::<Vec<_>>() {
        let delta = batch.delta(&table).cloned().unwrap_or_default();
        mirror.apply_delta(&table, &delta)?;
        svc.ingest_with(&table, delta, IngestOptions::blocking())?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("gpivot-durable-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let config = TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(0.05)
    };
    println!(
        "generating TPC-H-shaped data (scale {}) ...",
        config.scale_factor
    );
    let catalog = generate(&config);
    let mut mirror = catalog.clone();
    let cfg = ServeConfig::builder()
        .wal_fsync(FsyncPolicy::OnCommit)
        .build()
        .unwrap();

    // ── Act 1: bootstrap a durable service and commit some epochs ────────
    println!("\n[1] opening durable service at {}", dir.display());
    let (svc, report) = ViewService::open(&dir, catalog.clone(), cfg.clone(), &parse)?;
    println!("    fresh directory, recovered = {}", report.recovered);
    for (name, plan) in [("orders_crosstab", view1()), ("sales_by_year", view3())] {
        let strategy = svc.register_view(name, plan)?;
        println!("    registered {name} (strategy = {strategy}, logged before ack)");
    }
    for seed in [7, 8] {
        ingest_batch(&svc, &mut mirror, 0.01, seed)?;
        let summary = svc.refresh_epoch()?;
        println!(
            "    epoch {} committed: {} delta rows into {} views",
            summary.epoch, summary.delta_rows, summary.views_refreshed
        );
    }
    let bytes = svc.checkpoint()?;
    println!("    checkpoint written ({bytes} bytes), log rotated");
    ingest_batch(&svc, &mut mirror, 0.01, 9)?;
    svc.refresh_epoch()?;
    println!("    one more epoch committed after the checkpoint (lives in the log tail)");
    let epoch_before = svc.epoch();
    drop(svc);

    // ── Act 2: crash mid-append via a seeded kill point ──────────────────
    println!("\n[2] reopening with a kill point armed at the first WAL append");
    let mut crash_seed = catalog.clone();
    crash_seed
        .set_fault_injector(FaultInjector::seeded(42).with_kill_point(FaultSite::WalAppend, 1));
    let (svc, _) = ViewService::open(&dir, crash_seed, cfg.clone(), &parse)?;
    let doomed = workload::mixed_batch(&mirror, 0.01, 10);
    let table = doomed.tables().next().expect("non-empty batch").to_string();
    let delta = doomed.delta(&table).cloned().unwrap_or_default();
    match svc.ingest_with(&table, delta, IngestOptions::blocking()) {
        Err(e) => println!("    crash! {e}"),
        Ok(_) => unreachable!("the kill point fires on the first append"),
    }
    // The process "died": the ingest was never acknowledged, and the log
    // now ends in a torn, half-written frame.
    drop(svc);

    // ── Act 3: recover ───────────────────────────────────────────────────
    println!("\n[3] reopening after the crash");
    let (svc, report) = ViewService::open(&dir, catalog, cfg, &parse)?;
    println!(
        "    recovered = {}, checkpoint epoch {} + {} replayed epoch(s) -> epoch {}",
        report.recovered, report.checkpoint_epoch, report.replayed_epochs, report.recovered_epoch
    );
    println!(
        "    torn tails truncated = {}, views recovered = {}, recomputed = {}",
        report.torn_tails_truncated, report.views_recovered, report.views_recomputed
    );
    assert_eq!(
        svc.epoch(),
        epoch_before,
        "every acknowledged commit survived"
    );
    assert!(svc.verify_all()?, "views match full recomputation");
    println!("    epoch preserved ({epoch_before}) and all views verify against recomputation");

    // The unacknowledged ingest is gone — exactly the contract: callers
    // resubmit anything they never got an ack for.
    ingest_batch(&svc, &mut mirror, 0.01, 10)?;
    svc.refresh_epoch()?;
    println!(
        "    resubmitted the lost batch; epoch {} committed",
        svc.epoch()
    );

    println!("\nrecovery counters:");
    for line in svc.metrics().report().lines() {
        if line.contains("recovery") || line.contains("wal") {
            println!("    {line}");
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
