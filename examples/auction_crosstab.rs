//! The paper's Figure 2 view, end to end: a complex ROLAP view mixing two
//! pivots, a join and an aggregation — and how the rewrite driver compiles
//! it into an efficiently maintainable form.
//!
//! ```text
//! Payment (vertical)             Product
//! ┌────┬─────────┬───────┐       ┌─────┬───────────┬──────┐
//! │ ID │ Payment │ Price │       │ PID │ Manu      │ Type │
//! └────┴─────────┴───────┘       └─────┴───────────┴──────┘
//!        │ GPIVOT[Credit, ByAir]        │
//!        └──────────⋈───────────────────┘
//!                   │ GROUPBY(Manu, Type; sum(Credit), sum(ByAir))
//!                   │ GPIVOT[TV, VCR] — crosstab of the sums
//! ```
//!
//! ```text
//! cargo run --example auction_crosstab
//! ```

use gpivot::prelude::*;
use std::sync::Arc;

fn build_catalog() -> Result<Catalog, Box<dyn std::error::Error>> {
    let payment_schema = Schema::from_pairs_keyed(
        &[
            ("ID", DataType::Int),
            ("Payment", DataType::Str),
            ("Price", DataType::Int),
        ],
        &["ID", "Payment"],
    )?;
    let payment = Table::from_rows(
        Arc::new(payment_schema),
        vec![
            row![1, "Credit", 180],
            row![1, "ByAir", 20],
            row![2, "Credit", 300],
            row![3, "ByAir", 50],
            row![4, "Credit", 90],
        ],
    )?;
    let product_schema = Schema::from_pairs_keyed(
        &[
            ("PID", DataType::Int),
            ("Manu", DataType::Str),
            ("Type", DataType::Str),
        ],
        &["PID"],
    )?;
    let product = Table::from_rows(
        Arc::new(product_schema),
        vec![
            row![1, "Sony", "TV"],
            row![2, "Sony", "VCR"],
            row![3, "Panasonic", "TV"],
            row![4, "Panasonic", "VCR"],
        ],
    )?;
    let mut catalog = Catalog::new();
    catalog.register("payment", payment)?;
    catalog.register("product", product)?;
    Ok(catalog)
}

/// Figure 2's view: pivot payments, join products, aggregate, pivot again.
fn figure2_view() -> Plan {
    PlanBuilder::scan("payment")
        .gpivot(PivotSpec::simple(
            "Payment",
            "Price",
            vec![Value::str("Credit"), Value::str("ByAir")],
        ))
        .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
        .group_by(
            &["Manu", "Type"],
            vec![
                AggSpec::sum("Credit**Price", "CreditSum"),
                AggSpec::sum("ByAir**Price", "ByAirSum"),
            ],
        )
        .gpivot(PivotSpec::new(
            vec!["Type"],
            vec!["CreditSum", "ByAirSum"],
            vec![vec![Value::str("TV")], vec![Value::str("VCR")]],
        ))
        .build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = build_catalog()?;
    let view = figure2_view();

    println!("original view tree (Figure 2):\n{view}");

    // The rewrite driver pulls the lower pivot through the join and the
    // GROUPBY (Eq. 8), then combines it with the upper pivot (Eq. 6).
    let normalized = normalize_view(&view, &catalog)?;
    println!("rules applied:");
    for rule in &normalized.log {
        println!("  - {rule}");
    }
    println!("\nnormalized tree:\n{}", normalized.plan);
    println!(
        "top shape: {:?}\n",
        std::mem::discriminant(&normalized.shape)
    );

    // Compile and materialize.
    let mut vm = ViewManager::new(catalog);
    let strategy = vm.register_view("crosstab", view)?;
    println!("maintenance strategy: {strategy}");
    println!("{}", vm.maintenance_plan("crosstab")?);
    println!("crosstab contents:\n{}", vm.query_view("crosstab")?);

    // Stream a change: auction 3's ByAir payment is replaced and auction 2
    // pays an air surcharge; a new VCR auction appears.
    let mut deltas = SourceDeltas::new();
    deltas.delete_rows("payment", vec![row![3, "ByAir", 50]]);
    deltas.insert_rows(
        "payment",
        vec![
            row![3, "ByAir", 75],
            row![2, "ByAir", 12],
            row![5, "Credit", 40],
        ],
    );
    deltas.insert_rows("product", vec![]);
    // Auction 5 needs a product row too.
    let mut product_delta = SourceDeltas::new();
    product_delta.insert_rows("product", vec![row![5, "Sony", "VCR"]]);
    vm.refresh(&product_delta)?;
    vm.refresh(&deltas)?;

    println!("after incremental refresh:\n{}", vm.query_view("crosstab")?);
    assert!(vm.verify_view("crosstab")?);
    println!("verified against recomputation ✓");
    Ok(())
}
