//! Lint a view before it ever runs: the static plan analyzer.
//!
//! Builds two views over the Figure 1 scenario — one that violates the
//! §2.1 key requirement (GP001) and one that merely degrades maintenance
//! (a null-tolerant SELECT over a pivoted cell, GP011) — and shows how
//! `ViewManager::register_view` gates on the analyzer's verdict.
//!
//! ```text
//! cargo run --example lint_view
//! ```

use gpivot::prelude::*;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A keyless event log and a keyed attribute table.
    let cols = [
        ("AuctionID", DataType::Int),
        ("Attribute", DataType::Str),
        ("Value", DataType::Str),
    ];
    let keyless = Schema::from_pairs(&cols)?;
    let keyed = Schema::from_pairs_keyed(&cols, &["AuctionID", "Attribute"])?;
    let rows = vec![
        row![1, "Manufacturer", "Sony"],
        row![1, "Type", "TV"],
        row![2, "Manufacturer", "Panasonic"],
    ];
    let mut catalog = Catalog::new();
    catalog.register("log", Table::from_rows(Arc::new(keyless), rows.clone())?)?;
    catalog.register("iteminfo", Table::from_rows(Arc::new(keyed), rows)?)?;

    let spec = PivotSpec::simple(
        "Attribute",
        "Value",
        vec![Value::str("Manufacturer"), Value::str("Type")],
    );

    // ── 1. A hard violation: pivoting a keyless table (GP001) ───────────
    let bad = Plan::scan("log").gpivot(spec.clone());
    let report = analyze(&bad, &catalog);
    println!("analyzer verdict for the keyless pivot:");
    println!("{}", report.render(&bad));

    let mut vm = ViewManager::new(catalog);
    match vm.register_view("bad", bad) {
        Err(CoreError::PlanLint { view, diagnostics }) => {
            println!("registration of `{view}` refused:");
            for d in &diagnostics {
                println!("  {d}");
            }
        }
        other => panic!("expected a lint rejection, got {other:?}"),
    }

    // ── 2. A soft finding: null-tolerant SELECT over a cell (GP011) ─────
    let cell = gpivot::algebra::encode_pivot_col(&[Value::str("Manufacturer")], "Value");
    let warned = Plan::scan("iteminfo")
        .gpivot(spec)
        .select(Expr::col(cell).is_null());
    let strategy = vm.register_view("warned", warned)?;
    println!("\n`warned` registered (strategy {strategy}) with findings:");
    for d in vm.view("warned")?.lint_warnings() {
        println!("  {d}");
    }
    println!("\nwarnings degrade the maintenance plan but never block a view;");
    println!("errors block unless ViewOptions::new().skip_plan_lint() is passed.");
    Ok(())
}
