//! # gpivot
//!
//! A from-scratch Rust reproduction of **Chen & Rundensteiner, "GPIVOT:
//! Efficient Incremental Maintenance of Complex ROLAP Views" (ICDE 2005)**:
//! generalized pivot/unpivot operators for a relational algebra, the
//! combination and pullup/pushdown rewriting rules, and the incremental
//! view maintenance framework built on them.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`storage`] — values (`⊥`-aware), rows, schemas with keys, tables with
//!   key indexes and MERGE primitives, signed-multiset deltas, catalog;
//! * [`algebra`] — the plan language with `GPIVOT`/`GUNPIVOT` (Eq. 3–4),
//!   expressions with three-valued logic, schema + key inference;
//! * [`exec`] — the batch executor (hash joins / aggregation / pivoting);
//! * [`analyze`] — the static plan analyzer: a bottom-up dataflow over
//!   plan trees (keys, FDs, pivot-cell provenance) feeding the `GP0xx`
//!   lint rules that gate view registration;
//! * [`core`] — the paper's contribution: combination rules (Eq. 5–6),
//!   rewriting rules (Eq. 7–18), propagation rules (Fig. 22–23, 27, 29),
//!   and the [`core::ViewManager`] running the compile/refresh cycle;
//! * [`tpch`] — the TPC-H-shaped data generator, the paper's three view
//!   families, and the §7 delta workloads;
//! * [`serve`] — the service layer: a long-lived, thread-safe
//!   view-maintenance service (coalescing delta ingestion queue with
//!   backpressure, epoch-based parallel refresh scheduler, metrics) and
//!   the sharded scale-out tier (`ShardedService`: hash-partitioned
//!   shard workers with analyzer-proven shard-safe placement and
//!   heavy-key skew handling).
//!
//! ## Quickstart
//!
//! ```
//! use gpivot::prelude::*;
//!
//! // A vertical attribute table (Figure 1 of the paper).
//! let schema = Schema::from_pairs_keyed(
//!     &[("id", DataType::Int), ("attr", DataType::Str), ("val", DataType::Str)],
//!     &["id", "attr"],
//! ).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.register("iteminfo", Table::from_rows(std::sync::Arc::new(schema), vec![
//!     row![1, "Manufacturer", "Sony"],
//!     row![1, "Type", "TV"],
//!     row![2, "Manufacturer", "Panasonic"],
//! ]).unwrap()).unwrap();
//!
//! // Define a pivoted materialized view and let the planner pick the
//! // maintenance strategy.
//! let view = Plan::scan("iteminfo").gpivot(PivotSpec::simple(
//!     "attr", "val",
//!     vec![Value::str("Manufacturer"), Value::str("Type")],
//! ));
//! let mut vm = ViewManager::new(catalog);
//! let strategy = vm.register_view("pivoted", view).unwrap();
//! assert_eq!(strategy, Strategy::PivotUpdate);
//!
//! // Incrementally maintain it.
//! let mut deltas = SourceDeltas::new();
//! deltas.insert_rows("iteminfo", vec![row![2, "Type", "DVD"]]);
//! vm.refresh(&deltas).unwrap();
//! assert!(vm.verify_view("pivoted").unwrap());
//! ```

pub use gpivot_algebra as algebra;
pub use gpivot_analyze as analyze;
pub use gpivot_core as core;
pub use gpivot_exec as exec;
pub use gpivot_serve as serve;
pub use gpivot_sql as sql;
pub use gpivot_storage as storage;
pub use gpivot_tpch as tpch;
pub use tracing;

/// One-stop imports for examples and downstream users.
///
/// Curated to what the examples, tests, and a typical embedding actually
/// reach for; everything else stays one module path away (`gpivot::core`,
/// `gpivot::exec`, …).
pub mod prelude {
    pub use gpivot_algebra::{AggSpec, Expr, PivotSpec, Plan, PlanBuilder, UnpivotSpec};
    pub use gpivot_analyze::{analyze, AnalysisReport, DiagCode, Diagnostic, Severity};
    pub use gpivot_analyze::{shard_safety, ShardRouting, ShardVerdict, TableRoute};
    pub use gpivot_core::{
        normalize_view, CoreError, ErrorClass, SourceDeltas, Strategy, TopShape, ViewManager,
        ViewOptions,
    };
    pub use gpivot_exec::{ExecContext, ExecOptions, Executor, WorkerPool};
    pub use gpivot_serve::{
        IngestOptions, ServeConfig, ShardConfig, ShardedService, ViewHealth, ViewPlacement,
        ViewService,
    };
    pub use gpivot_sql::{parse_statement, GpivotService, SqlError, SqlOutcome, Statement};
    pub use gpivot_storage::{
        row, Catalog, DataType, Delta, FaultInjector, FaultSite, Row, Schema, Table, Value,
    };
    pub use tracing::{Histogram, TimingSubscriber};
}
