//! End-to-end tests for the parallel executor: thread-count invariance
//! (bit-identical output across worker counts) over the paper's §7 TPC-H
//! views, and panic isolation in partition workers.

use gpivot::prelude::*;
use gpivot::tpch::{generate, view1, view2, view3, workload, TpchConfig};
use proptest::prelude::{proptest, ProptestConfig};

fn tpch() -> Catalog {
    generate(&TpchConfig {
        seed: 7,
        ..TpchConfig::scale(0.02)
    })
}

/// An executor that always takes the partitioned/morsel kernels, so small
/// test inputs exercise the parallel paths.
fn exec_at(threads: usize) -> Executor {
    Executor::new()
        .with_threads(threads)
        .with_parallel_threshold(1)
        .with_morsel_rows(64)
}

#[test]
fn tpch_views_are_thread_invariant() {
    let c = tpch();
    for (name, plan) in [
        ("view1", view1()),
        ("view2", view2(30_000.0)),
        ("view3", view3()),
    ] {
        let baseline = exec_at(1).run(&plan, &c).unwrap();
        for threads in [2, 8] {
            let got = exec_at(threads).run(&plan, &c).unwrap();
            assert_eq!(
                baseline.rows(),
                got.rows(),
                "{name} rows differ between 1 and {threads} threads"
            );
        }
        // The partitioned kernels may order rows differently from the
        // sequential ones, but the bags must agree.
        let sequential = Executor::new()
            .with_parallel_threshold(usize::MAX)
            .run(&plan, &c)
            .unwrap();
        assert!(
            sequential.bag_eq(&baseline),
            "{name} partitioned result is not the sequential bag"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Full register + refresh cycles across thread counts: the
    /// recompute-maintained view (every refresh runs the whole plan on the
    /// executor) must be row-for-row identical, and the incrementally
    /// maintained view must be the same bag and verify against
    /// recomputation. (Incremental apply iterates a hash-keyed delta, so
    /// its *order* is not pinned — only executor output is.)
    #[test]
    fn refresh_is_thread_invariant(seed in 0u64..1_000, fraction_ppm in 5_000u64..50_000) {
        let fraction = fraction_ppm as f64 / 1_000_000.0;
        let catalog = tpch();
        let batch = workload::mixed_batch(&catalog, fraction, seed);

        let mut managers: Vec<ViewManager> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let mut vm = ViewManager::new(catalog.clone()).with_exec(exec_at(threads));
                vm.register_view_with("recomputed", view1(), Strategy::Recompute)
                    .unwrap();
                vm.register_view_with("v3", view3(), ViewOptions::new().expected_delta_rows(64.0))
                    .unwrap();
                vm
            })
            .collect();
        for vm in &mut managers {
            vm.refresh(&batch).unwrap();
        }
        let baseline = &managers[0];
        let expected = baseline.query_view("recomputed").unwrap();
        let expected_v3 = baseline.query_view("v3").unwrap();
        for vm in &managers[1..] {
            let got = vm.query_view("recomputed").unwrap();
            assert_eq!(
                expected.rows(),
                got.rows(),
                "recompute-maintained view diverged across thread counts"
            );
            assert!(vm.verify_view("v3").unwrap());
            assert!(expected_v3.bag_eq(&vm.query_view("v3").unwrap()));
        }
    }
}

/// A panic inside a partition worker comes back as a classified, transient
/// error — the pool joins every worker (no hang) and the service layer's
/// retry machinery treats it like any caught refresh panic.
#[test]
fn partition_worker_panic_is_transient_not_a_hang() {
    let pool = WorkerPool::new(4);
    let err = pool
        .run("GPivot", vec![0usize, 1, 2, 3], |i| {
            if i == 2 {
                panic!("injected partition failure");
            }
            Ok(i)
        })
        .unwrap_err();
    let core_err = CoreError::from(err);
    assert_eq!(core_err.classify(), ErrorClass::Transient);
    assert!(core_err.to_string().contains("GPivot"));
    assert!(core_err.to_string().contains("injected partition failure"));
}
