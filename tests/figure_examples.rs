//! The paper's worked examples, transcribed as executable assertions: each
//! test reproduces the exact tuples a figure of the paper shows.

use gpivot::prelude::*;
use std::sync::Arc;

/// Figure 1's ItemInfo table.
fn iteminfo() -> Table {
    let schema = Schema::from_pairs_keyed(
        &[
            ("AuctionID", DataType::Int),
            ("Attribute", DataType::Str),
            ("Value", DataType::Str),
        ],
        &["AuctionID", "Attribute"],
    )
    .unwrap();
    Table::from_rows(
        Arc::new(schema),
        vec![
            row![1, "Manufacturer", "Sony"],
            row![1, "Type", "TV"],
            row![2, "Manufacturer", "Panasonic"],
            row![3, "Type", "VCR"],
        ],
    )
    .unwrap()
}

fn iteminfo_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register("iteminfo", iteminfo()).unwrap();
    c
}

fn fig1_pivot() -> PivotSpec {
    PivotSpec::simple(
        "Attribute",
        "Value",
        vec![Value::str("Manufacturer"), Value::str("Type")],
    )
}

#[test]
fn figure_1_pivot() {
    let c = iteminfo_catalog();
    let out = Executor::new()
        .run(&Plan::scan("iteminfo").gpivot(fig1_pivot()), &c)
        .unwrap();
    assert_eq!(
        out.sorted_rows(),
        vec![
            row![1, "Sony", "TV"],
            Row::new(vec![Value::Int(2), Value::str("Panasonic"), Value::Null]),
            Row::new(vec![Value::Int(3), Value::Null, Value::str("VCR")]),
        ]
    );
}

#[test]
fn figure_1_unpivot_reverses() {
    let c = iteminfo_catalog();
    let plan = Plan::scan("iteminfo")
        .gpivot(fig1_pivot())
        .gunpivot(UnpivotSpec::reversing(&fig1_pivot()));
    let out = Executor::new().run(&plan, &c).unwrap();
    assert_eq!(out.sorted_rows(), iteminfo().sorted_rows());
}

#[test]
fn figure_3_insert_propagation() {
    // "Assume some data were inserted into the ItemInfo table": the paper
    // inserts (2, Type, DVD) and (3, Manufacturer, Panasonic). The
    // insert/delete rules delete (2,Panasonic,⊥) and (3,⊥,VCR) and insert
    // (2,Panasonic,DVD) and (3,Panasonic,VCR).
    let mut vm = ViewManager::new(iteminfo_catalog());
    vm.register_view_with(
        "v",
        Plan::scan("iteminfo").gpivot(fig1_pivot()),
        Strategy::InsertDelete,
    )
    .unwrap();

    let mut deltas = SourceDeltas::new();
    deltas.insert_rows(
        "iteminfo",
        vec![row![2, "Type", "DVD"], row![3, "Manufacturer", "Panasonic"]],
    );
    let outcome = vm.refresh(&deltas).unwrap().remove("v").unwrap();
    // Two rows deleted, two re-inserted — the churn §2.3 criticizes.
    assert_eq!(outcome.stats.deleted, 2);
    assert_eq!(outcome.stats.inserted, 2);

    assert_eq!(
        vm.query_view("v").unwrap().sorted_rows(),
        vec![
            row![1, "Sony", "TV"],
            row![2, "Panasonic", "DVD"],
            row![3, "Panasonic", "VCR"],
        ]
    );
}

#[test]
fn figure_3_update_rules_avoid_churn() {
    // The same change maintained with the update rules touches the same
    // rows but as in-place updates.
    let mut vm = ViewManager::new(iteminfo_catalog());
    vm.register_view_with(
        "v",
        Plan::scan("iteminfo").gpivot(fig1_pivot()),
        Strategy::PivotUpdate,
    )
    .unwrap();
    let mut deltas = SourceDeltas::new();
    deltas.insert_rows(
        "iteminfo",
        vec![row![2, "Type", "DVD"], row![3, "Manufacturer", "Panasonic"]],
    );
    let outcome = vm.refresh(&deltas).unwrap().remove("v").unwrap();
    assert_eq!(outcome.stats.deleted, 0, "no delete/re-insert churn");
    assert_eq!(outcome.stats.inserted, 0);
    assert_eq!(outcome.stats.updated, 2);
    assert!(vm.verify_view("v").unwrap());
}

/// Figure 5's sales table.
fn sales_catalog() -> Catalog {
    let schema = Schema::from_pairs_keyed(
        &[
            ("Country", DataType::Str),
            ("Manu", DataType::Str),
            ("Type", DataType::Str),
            ("Price", DataType::Int),
            ("Quantity", DataType::Int),
        ],
        &["Country", "Manu", "Type"],
    )
    .unwrap();
    let sales = Table::from_rows(
        Arc::new(schema),
        vec![
            row!["USA", "Sony", "TV", 100, 10],
            row!["USA", "Panasonic", "VCR", 130, 5],
            row!["Japan", "Sony", "TV", 90, 3],
        ],
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("sales", sales).unwrap();
    c
}

#[test]
fn figure_5_generalized_pivot() {
    // GPIVOT[{Sony,Panasonic} × {TV,VCR}] on (Price, Quantity): multiple
    // measures by multiple dimensions.
    let c = sales_catalog();
    let spec = PivotSpec::cross(
        vec!["Manu", "Type"],
        vec!["Price", "Quantity"],
        vec![
            vec![Value::str("Sony"), Value::str("Panasonic")],
            vec![Value::str("TV"), Value::str("VCR")],
        ],
    );
    let out = Executor::new()
        .run(&Plan::scan("sales").gpivot(spec.clone()), &c)
        .unwrap();
    assert_eq!(
        out.schema().column_names(),
        vec![
            "Country",
            "Sony**TV**Price",
            "Sony**TV**Quantity",
            "Sony**VCR**Price",
            "Sony**VCR**Quantity",
            "Panasonic**TV**Price",
            "Panasonic**TV**Quantity",
            "Panasonic**VCR**Price",
            "Panasonic**VCR**Quantity",
        ]
    );
    let usa = out.iter().find(|r| r[0] == Value::str("USA")).unwrap();
    assert_eq!(
        usa.values()[1..].to_vec(),
        vec![
            Value::Int(100),
            Value::Int(10), // Sony TV
            Value::Null,
            Value::Null, // Sony VCR
            Value::Null,
            Value::Null, // Panasonic TV
            Value::Int(130),
            Value::Int(5), // Panasonic VCR
        ]
    );

    // And GUNPIVOT decodes it back (Figure 5's right half).
    let back = Executor::new()
        .run(
            &Plan::scan("sales")
                .gpivot(spec.clone())
                .gunpivot(UnpivotSpec::reversing(&spec)),
            &c,
        )
        .unwrap();
    let direct = Executor::new()
        .run(
            &Plan::scan("sales").project_cols(&["Country", "Manu", "Type", "Price", "Quantity"]),
            &c,
        )
        .unwrap();
    assert_eq!(back.sorted_rows(), direct.sorted_rows());
}

/// Figures 24–26: the Items ⋈ Payment maintenance example.
fn fig24_catalog() -> Catalog {
    let items_schema = Schema::from_pairs_keyed(
        &[
            ("ID", DataType::Int),
            ("Attribute", DataType::Str),
            ("Value", DataType::Str),
        ],
        &["ID", "Attribute"],
    )
    .unwrap();
    let items = Table::from_rows(
        Arc::new(items_schema),
        vec![row![1, "Manufacturer", "Sony"], row![2, "Type", "VCR"]],
    )
    .unwrap();
    let payment_schema = Schema::from_pairs_keyed(
        &[
            ("PID", DataType::Int),
            ("Price", DataType::Int),
            ("Qty", DataType::Int),
        ],
        &["PID"],
    )
    .unwrap();
    let payment = Table::from_rows(
        Arc::new(payment_schema),
        vec![row![1, 200, 15], row![2, 300, 20]],
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("items", items).unwrap();
    c.register("payment", payment).unwrap();
    c
}

fn fig24_view() -> Plan {
    Plan::scan("items")
        .gpivot(PivotSpec::simple(
            "Attribute",
            "Value",
            vec![Value::str("Manufacturer"), Value::str("Type")],
        ))
        .join(Plan::scan("payment"), vec![("ID", "PID")])
}

#[test]
fn figures_24_to_26_pullup_plan_beats_naive() {
    // Figure 26: the GPIVOT is pulled above the join, deltas propagate
    // through the join, and the apply phase updates rows in place.
    let c = fig24_catalog();
    let nv = normalize_view(&fig24_view(), &c).unwrap();
    assert!(matches!(nv.shape, TopShape::PivotTop { .. }));

    let mut deltas = SourceDeltas::new();
    deltas.insert_rows(
        "items",
        vec![row![1, "Type", "TV"], row![2, "Manufacturer", "Panasonic"]],
    );

    // Both the naive (Fig. 25) and pullup (Fig. 26) plans converge...
    for strategy in [Strategy::InsertDelete, Strategy::PivotUpdate] {
        let mut vm = ViewManager::new(c.clone());
        vm.register_view_with("v", fig24_view(), strategy).unwrap();
        let outcome = vm.refresh(&deltas).unwrap().remove("v").unwrap();
        assert!(vm.verify_view("v").unwrap());
        match strategy {
            // ...but the naive plan deletes and re-inserts both rows...
            Strategy::InsertDelete => {
                assert_eq!(outcome.stats.deleted, 2);
                assert_eq!(outcome.stats.inserted, 2);
            }
            // ...while the update rules update them in place.
            _ => {
                assert_eq!(outcome.stats.updated, 2);
                assert_eq!(outcome.stats.deleted + outcome.stats.inserted, 0);
            }
        }
    }
}

/// Figure 28: the Figure 2 view under a deletion that kills a subgroup.
#[test]
fn figure_28_subgroup_death_deletes_view_row() {
    let payment_schema = Schema::from_pairs_keyed(
        &[
            ("ID", DataType::Int),
            ("Payment", DataType::Str),
            ("Price", DataType::Int),
        ],
        &["ID", "Payment"],
    )
    .unwrap();
    let payment = Table::from_rows(
        Arc::new(payment_schema),
        vec![
            row![1, "Credit", 180],
            row![2, "Credit", 300], // Sony VCR's only payment
        ],
    )
    .unwrap();
    let product_schema = Schema::from_pairs_keyed(
        &[
            ("PID", DataType::Int),
            ("Manu", DataType::Str),
            ("Type", DataType::Str),
        ],
        &["PID"],
    )
    .unwrap();
    let product = Table::from_rows(
        Arc::new(product_schema),
        vec![row![1, "Sony", "TV"], row![2, "Panasonic", "VCR"]],
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register("payment", payment).unwrap();
    catalog.register("product", product).unwrap();

    let view = PlanBuilder::scan("payment")
        .gpivot(PivotSpec::simple(
            "Payment",
            "Price",
            vec![Value::str("Credit"), Value::str("ByAir")],
        ))
        .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
        .group_by(
            &["Manu", "Type"],
            vec![
                AggSpec::sum("Credit**Price", "CreditSum"),
                AggSpec::sum("ByAir**Price", "ByAirSum"),
            ],
        )
        .gpivot(PivotSpec::new(
            vec!["Type"],
            vec!["CreditSum", "ByAirSum"],
            vec![vec![Value::str("TV")], vec![Value::str("VCR")]],
        ))
        .build();

    let mut vm = ViewManager::new(catalog);
    let strategy = vm.register_view("v", view).unwrap();
    assert_eq!(strategy, Strategy::GroupPivotUpdate);
    assert_eq!(vm.view("v").unwrap().len(), 2); // Sony row + Panasonic row

    // Delete Panasonic's only payment: its count hits 0, every pivoted cell
    // of the Panasonic row becomes ⊥, and the row disappears (Fig. 28).
    let mut deltas = SourceDeltas::new();
    deltas.delete_rows("payment", vec![row![2, "Credit", 300]]);
    let outcome = vm.refresh(&deltas).unwrap().remove("v").unwrap();
    assert_eq!(outcome.stats.deleted, 1);
    assert!(vm.verify_view("v").unwrap());

    let remaining = vm.query_view("v").unwrap();
    assert_eq!(remaining.len(), 1);
    assert_eq!(remaining.rows()[0][0], Value::str("Sony"));
}

/// Figures 30–31: SELECT over GPIVOT under deletion.
#[test]
fn figures_30_31_postponed_selection_filtering() {
    // View: σ(Type**Value = 'TV')-ish — the paper's condition keeps
    // auctions whose pivoted attributes satisfy a predicate; deleting a
    // source row may make a view row fail the condition.
    let c = iteminfo_catalog();
    let view = Plan::scan("iteminfo").gpivot(fig1_pivot()).select(
        Expr::col("Type**Value")
            .eq(Expr::lit("TV"))
            .or(Expr::col("Manufacturer**Value").eq(Expr::lit("Sony"))),
    );
    let mut vm = ViewManager::new(c);
    let strategy = vm.register_view("v", view).unwrap();
    assert_eq!(strategy, Strategy::SelectPivotUpdate);
    // Only auction 1 satisfies (Sony, TV).
    assert_eq!(vm.view("v").unwrap().len(), 1);

    // Delete auction 1's Type row: it still satisfies via Manufacturer.
    let mut d1 = SourceDeltas::new();
    d1.delete_rows("iteminfo", vec![row![1, "Type", "TV"]]);
    vm.refresh(&d1).unwrap();
    assert!(vm.verify_view("v").unwrap());
    assert_eq!(vm.view("v").unwrap().len(), 1);

    // Delete its Manufacturer row too: now it fails the condition and the
    // postponed selection filtering removes it (Fig. 31's auction 3 case).
    let mut d2 = SourceDeltas::new();
    d2.delete_rows("iteminfo", vec![row![1, "Manufacturer", "Sony"]]);
    let outcome = vm.refresh(&d2).unwrap().remove("v").unwrap();
    assert_eq!(outcome.stats.deleted, 1);
    assert!(vm.view("v").unwrap().is_empty());
    assert!(vm.verify_view("v").unwrap());

    // Inserts can make a previously-unsatisfying auction appear (Fig. 31's
    // "locate the other source tuple" case).
    let mut d3 = SourceDeltas::new();
    d3.insert_rows(
        "iteminfo",
        vec![row![2, "Type", "TV"]], // auction 2 already has Manufacturer=Panasonic
    );
    let outcome = vm.refresh(&d3).unwrap().remove("v").unwrap();
    assert_eq!(outcome.stats.inserted, 1);
    let v = vm.query_view("v").unwrap();
    assert_eq!(v.sorted_rows(), vec![row![2, "Panasonic", "TV"]]);
    assert!(vm.verify_view("v").unwrap());
}
