EXPLAIN SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 100000.0
