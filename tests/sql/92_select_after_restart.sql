SELECT *
FROM (
  SELECT *
  FROM (
    SELECT *
    FROM (
      SELECT *
      FROM (
        SELECT l_orderkey, l_linenumber, l_extendedprice
        FROM (
          SELECT * FROM lineitem
        ) sub
      ) sub
      GPIVOT (l_extendedprice BY l_linenumber IN ((1), (2), (3)))
    ) sub
    WHERE ("1**l_extendedprice" > 30000.0)
  ) l
  JOIN (
    SELECT * FROM orders
  ) r
    ON l.l_orderkey = r.o_orderkey
) l
JOIN (
  SELECT * FROM customer
) r
  ON l.o_custkey = r.c_custkey
