CREATE MATERIALIZED VIEW v3 AS
SELECT *
FROM (
  SELECT c_custkey, c_nationkey, o_year, sum(l_extendedprice) AS sum_price, count(*) AS cnt
  FROM (
    SELECT *
    FROM (
      SELECT *
      FROM (
        SELECT * FROM lineitem
      ) l
      JOIN (
        SELECT * FROM orders
      ) r
        ON l.l_orderkey = r.o_orderkey
    ) l
    JOIN (
      SELECT * FROM customer
    ) r
      ON l.o_custkey = r.c_custkey
  ) sub
  GROUP BY c_custkey, c_nationkey, o_year
) sub
GPIVOT (sum_price, cnt BY o_year IN ((1994), (1995), (1996), (1997), (1998)))
