SELECT *
FROM lineitem
GPIVOT (l_extendedprice BY l_linenumber IN ((1, 2), (3)))
