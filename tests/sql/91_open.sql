:open @TMP@
