:save @TMP@
