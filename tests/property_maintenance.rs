//! Property-based end-to-end tests: for *random* base data and *random*
//! (key-respecting) delta batches, every applicable maintenance strategy
//! must converge to exactly what recomputation over the post-update state
//! produces — across all four view shapes the paper distinguishes.

use gpivot::prelude::*;
// `gpivot::prelude::Strategy` (the maintenance strategy) clashes with
// proptest's `Strategy` trait; import the latter anonymously.
use proptest::prelude::{
    any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig,
};
use proptest::strategy::Strategy as _;
use std::collections::BTreeSet;
use std::sync::Arc;

const ATTRS: [&str; 4] = ["a", "b", "c", "d"];

/// A random vertical fact table `facts(id, attr, val)` with key (id, attr),
/// where `val` may be NULL, plus a dimension table `dims(id, grp)`.
#[derive(Debug, Clone)]
struct Scenario {
    facts: Vec<(i64, usize, Option<i64>)>,
    dims: Vec<(i64, i64)>,
    deletes: Vec<usize>, // indices into facts
    inserts: Vec<(i64, usize, Option<i64>)>,
}

fn arb_scenario() -> impl proptest::strategy::Strategy<Value = Scenario> {
    let facts = prop::collection::btree_set((0i64..12, 0usize..ATTRS.len()), 0..30)
        .prop_flat_map(|keys| {
            let keys: Vec<_> = keys.into_iter().collect();
            let n = keys.len();
            (
                Just(keys),
                prop::collection::vec(prop_oneof![Just(None), (1i64..100).prop_map(Some)], n),
            )
        })
        .prop_map(|(keys, vals)| {
            keys.into_iter()
                .zip(vals)
                .map(|((id, attr), val)| (id, attr, val))
                .collect::<Vec<_>>()
        });
    (facts, prop::collection::vec(0i64..4, 12))
        .prop_flat_map(|(facts, grps)| {
            let dims: Vec<(i64, i64)> = (0i64..12).zip(grps).collect();
            (
                Just(facts),
                Just(dims),
                prop::collection::vec(any::<prop::sample::Index>(), 0..6),
                prop::collection::btree_set((0i64..14, 0usize..ATTRS.len()), 0..8),
                prop::collection::vec(prop_oneof![Just(None), (1i64..100).prop_map(Some)], 8),
            )
        })
        .prop_map(|(facts, dims, delete_picks, insert_keys, insert_vals)| {
            // Deletes: distinct indices into facts.
            let mut deletes: BTreeSet<usize> = BTreeSet::new();
            if !facts.is_empty() {
                for p in delete_picks {
                    deletes.insert(p.index(facts.len()));
                }
            }
            // Inserts: keys absent from (facts − deletes).
            let surviving: BTreeSet<(i64, usize)> = facts
                .iter()
                .enumerate()
                .filter(|(i, _)| !deletes.contains(i))
                .map(|(_, &(id, attr, _))| (id, attr))
                .collect();
            let inserts: Vec<(i64, usize, Option<i64>)> = insert_keys
                .into_iter()
                .zip(insert_vals)
                .filter(|((id, attr), _)| !surviving.contains(&(*id, *attr)))
                .map(|((id, attr), val)| (id, attr, val))
                .collect();
            Scenario {
                facts,
                dims,
                deletes: deletes.into_iter().collect(),
                inserts,
            }
        })
}

fn fact_row(&(id, attr, val): &(i64, usize, Option<i64>)) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::str(ATTRS[attr]),
        val.map(Value::Int).unwrap_or(Value::Null),
    ])
}

fn build_catalog(s: &Scenario) -> Catalog {
    let fact_schema = Schema::from_pairs_keyed(
        &[
            ("id", DataType::Int),
            ("attr", DataType::Str),
            ("val", DataType::Int),
        ],
        &["id", "attr"],
    )
    .unwrap();
    let facts = Table::from_rows(
        Arc::new(fact_schema),
        s.facts.iter().map(fact_row).collect(),
    )
    .unwrap();
    let dim_schema = Schema::from_pairs_keyed(
        &[("d_id", DataType::Int), ("grp", DataType::Int)],
        &["d_id"],
    )
    .unwrap();
    let dims = Table::from_rows(
        Arc::new(dim_schema),
        s.dims
            .iter()
            .map(|&(id, grp)| Row::new(vec![Value::Int(id), Value::Int(grp)]))
            .collect(),
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("facts", facts).unwrap();
    c.register("dims", dims).unwrap();
    c
}

fn build_deltas(s: &Scenario) -> SourceDeltas {
    let mut d = SourceDeltas::new();
    d.delete_rows(
        "facts",
        s.deletes.iter().map(|&i| fact_row(&s.facts[i])).collect(),
    );
    d.insert_rows("facts", s.inserts.iter().map(fact_row).collect());
    d
}

fn pivot_spec() -> PivotSpec {
    PivotSpec::simple(
        "attr",
        "val",
        ATTRS.iter().take(3).map(|a| Value::str(*a)).collect(),
    )
}

/// The four view shapes of the paper, §6.
fn view_shapes() -> Vec<(&'static str, Plan, Vec<Strategy>)> {
    let pure_pivot = Plan::scan("facts").gpivot(pivot_spec());
    let pivot_join = Plan::scan("facts")
        .gpivot(pivot_spec())
        .join(Plan::scan("dims"), vec![("id", "d_id")]);
    let select_pivot = Plan::scan("facts")
        .gpivot(pivot_spec())
        .select(Expr::col("a**val").gt(Expr::lit(25)));
    let group_pivot = Plan::scan("facts")
        .join(Plan::scan("dims"), vec![("id", "d_id")])
        .group_by(
            &["grp", "attr"],
            vec![AggSpec::sum("val", "s"), AggSpec::count_star("n")],
        )
        .gpivot(PivotSpec::new(
            vec!["attr"],
            vec!["s", "n"],
            ATTRS.iter().take(3).map(|a| vec![Value::str(*a)]).collect(),
        ));
    use Strategy::*;
    vec![
        (
            "pure-pivot",
            pure_pivot,
            vec![Recompute, InsertDelete, PivotUpdate],
        ),
        (
            "pivot-join",
            pivot_join,
            vec![Recompute, InsertDelete, PivotUpdate],
        ),
        (
            "select-pivot",
            select_pivot,
            vec![
                Recompute,
                InsertDelete,
                SelectPushdownUpdate,
                SelectPivotUpdate,
            ],
        ),
        (
            "group-pivot",
            group_pivot,
            vec![Recompute, GroupByInsDel, GroupPivotUpdate],
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    #[test]
    fn every_strategy_converges_on_random_data(s in arb_scenario()) {
        let deltas = build_deltas(&s);
        for (name, plan, strategies) in view_shapes() {
            for strategy in strategies {
                let mut vm = ViewManager::new(build_catalog(&s));
                vm.register_view_with("v", plan.clone(), strategy)
                    .unwrap_or_else(|e| panic!("{name}/{strategy}: create failed: {e}"));
                vm.refresh(&deltas)
                    .unwrap_or_else(|e| panic!("{name}/{strategy}: refresh failed: {e}"));
                prop_assert!(
                    vm.verify_view("v").unwrap(),
                    "{}/{} diverged from recomputation\nscenario: {:?}",
                    name, strategy, s
                );
            }
        }
    }

    #[test]
    fn pivot_unpivot_roundtrip_on_random_data(s in arb_scenario()) {
        // GUNPIVOT(GPIVOT(V)) keeps exactly the listed-attribute, non-⊥ rows.
        let c = build_catalog(&s);
        let spec = pivot_spec();
        let roundtrip = Plan::scan("facts")
            .gpivot(spec.clone())
            .gunpivot(UnpivotSpec::reversing(&spec));
        let got = Executor::new().run(&roundtrip, &c).unwrap();
        let expected = Executor::new().run(
            &Plan::scan("facts").select(
                Expr::col("attr")
                    .in_list(spec.groups.iter().map(|g| g[0].clone()).collect())
                    .and(Expr::col("val").is_null().not()),
            ),
            &c,
        )
        .unwrap();
        prop_assert_eq!(got.sorted_rows(), expected.sorted_rows());
    }

    #[test]
    fn normalization_preserves_view_semantics(s in arb_scenario()) {
        let c = build_catalog(&s);
        for (name, plan, _) in view_shapes() {
            let nv = normalize_view(&plan, &c).unwrap();
            let original = Executor::new().run(&plan, &c).unwrap();
            let rewritten = Executor::new().run(&nv.view_plan(), &c).unwrap();
            prop_assert_eq!(
                original.schema().column_names(),
                rewritten.schema().column_names(),
                "{}: columns changed", name
            );
            prop_assert_eq!(
                original.sorted_rows(),
                rewritten.sorted_rows(),
                "{}: contents changed", name
            );
        }
    }

    #[test]
    fn consecutive_refreshes_stay_consistent(
        s in arb_scenario(),
        s2_inserts in prop::collection::btree_set((20i64..26, 0usize..ATTRS.len()), 0..6),
    ) {
        // Two maintenance rounds in sequence on the auto-selected strategy.
        let mut vm = ViewManager::new(build_catalog(&s));
        let (_, plan, _) = &view_shapes()[3]; // group-pivot crosstab
        vm.register_view("v", plan.clone()).unwrap();

        vm.refresh(&build_deltas(&s)).unwrap();
        prop_assert!(vm.verify_view("v").unwrap());

        let mut second = SourceDeltas::new();
        second.insert_rows(
            "facts",
            s2_inserts
                .into_iter()
                .map(|(id, attr)| fact_row(&(id, attr, Some(id))))
                .collect(),
        );
        vm.refresh(&second).unwrap();
        prop_assert!(vm.verify_view("v").unwrap());
    }
}
