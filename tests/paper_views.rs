//! End-to-end tests over the paper's three evaluation views (Figures 32,
//! 36, 39) on TPC-H-shaped data: normalization reaches the expected shape,
//! the planner picks the paper's strategy, and *every applicable strategy*
//! converges to the recomputed state under all three §7.2 workloads.

use gpivot::prelude::*;
use gpivot::tpch::{
    delete_fraction, generate, insert_new_rows, insert_updates_only, view1, view2, view3,
    TpchConfig,
};

fn catalog() -> Catalog {
    generate(&TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(0.02)
    })
}

#[test]
fn view1_normalizes_to_pivot_top() {
    let c = catalog();
    let nv = normalize_view(&view1(), &c).unwrap();
    assert!(
        matches!(nv.shape, TopShape::PivotTop { .. }),
        "view (1) must normalize to GPivot-on-top; got {:?}\nplan:\n{}",
        nv.shape,
        nv.plan
    );
    // The pivot was pulled through two joins.
    assert!(nv.log.iter().filter(|r| r.contains("pullup-join")).count() >= 2);
}

#[test]
fn view2_normalizes_to_select_over_pivot() {
    let c = catalog();
    let nv = normalize_view(&view2(30_000.0), &c).unwrap();
    assert!(
        matches!(nv.shape, TopShape::SelectOverPivot { .. }),
        "view (2) must normalize to Select-over-GPivot; got {:?}\nplan:\n{}",
        nv.shape,
        nv.plan
    );
}

#[test]
fn view3_normalizes_to_pivot_over_group_by() {
    let c = catalog();
    let nv = normalize_view(&view3(), &c).unwrap();
    assert!(
        matches!(nv.shape, TopShape::PivotOverGroupBy { .. }),
        "view (3) must keep GPivot over GroupBy; got {:?}\nplan:\n{}",
        nv.shape,
        nv.plan
    );
}

#[test]
fn normalized_views_are_equivalent_to_originals() {
    let c = catalog();
    for (name, plan) in [
        ("view1", view1()),
        ("view2", view2(30_000.0)),
        ("view3", view3()),
    ] {
        let nv = normalize_view(&plan, &c).unwrap();
        let original = Executor::new().run(&plan, &c).unwrap();
        let rewritten = Executor::new().run(&nv.view_plan(), &c).unwrap();
        assert_eq!(
            original.schema().column_names(),
            rewritten.schema().column_names(),
            "{name}: column names changed"
        );
        assert!(
            original.bag_eq(&rewritten),
            "{name}: normalization changed the view contents"
        );
    }
}

#[test]
fn planner_picks_the_papers_strategies() {
    let vm = ViewManager::new(catalog());
    assert_eq!(vm.choose_strategy(&view1()), Strategy::PivotUpdate);
    assert_eq!(
        vm.choose_strategy(&view2(30_000.0)),
        Strategy::SelectPivotUpdate
    );
    assert_eq!(vm.choose_strategy(&view3()), Strategy::GroupPivotUpdate);
}

/// Maintain `plan` with `strategy` under `deltas` and check the result
/// matches recomputation over the post-update state.
fn check_strategy(plan: &Plan, strategy: Strategy, deltas: &SourceDeltas) {
    let mut vm = ViewManager::new(catalog());
    vm.register_view_with("v", plan.clone(), strategy)
        .unwrap_or_else(|e| panic!("create with {strategy}: {e}"));
    vm.refresh(deltas)
        .unwrap_or_else(|e| panic!("refresh with {strategy}: {e}"));
    assert!(
        vm.verify_view("v").unwrap(),
        "strategy {strategy} diverged from recomputation"
    );
}

fn workloads(c: &Catalog) -> Vec<(&'static str, SourceDeltas)> {
    vec![
        ("delete-1pct", delete_fraction(c, "lineitem", 0.01, 11)),
        ("insert-updates", insert_updates_only(c, 0.01, 12)),
        ("insert-new", insert_new_rows(c, 0.01, 13)),
        ("mixed", {
            let mut d = delete_fraction(c, "lineitem", 0.005, 14);
            let ins = insert_new_rows(c, 0.005, 15);
            d.add_delta("lineitem", ins.delta("lineitem").unwrap().clone());
            d
        }),
    ]
}

#[test]
fn view1_all_strategies_converge() {
    let c = catalog();
    for (wname, deltas) in workloads(&c) {
        for strategy in [
            Strategy::Recompute,
            Strategy::InsertDelete,
            Strategy::PivotUpdate,
        ] {
            eprintln!("view1 / {wname} / {strategy}");
            check_strategy(&view1(), strategy, &deltas);
        }
    }
}

#[test]
fn view2_all_strategies_converge() {
    let c = catalog();
    let plan = view2(30_000.0);
    for (wname, deltas) in workloads(&c) {
        for strategy in [
            Strategy::Recompute,
            Strategy::InsertDelete,
            Strategy::SelectPushdownUpdate,
            Strategy::SelectPivotUpdate,
        ] {
            eprintln!("view2 / {wname} / {strategy}");
            check_strategy(&plan, strategy, &deltas);
        }
    }
}

#[test]
fn view3_all_strategies_converge() {
    let c = catalog();
    let plan = view3();
    for (wname, deltas) in workloads(&c) {
        for strategy in [
            Strategy::Recompute,
            Strategy::GroupByInsDel,
            Strategy::GroupPivotUpdate,
        ] {
            eprintln!("view3 / {wname} / {strategy}");
            check_strategy(&plan, strategy, &deltas);
        }
    }
}

#[test]
fn repeated_refresh_cycles_stay_consistent() {
    // Several maintenance cycles in sequence, mixing workload shapes.
    let mut vm = ViewManager::new(catalog());
    vm.register_view("v1", view1()).unwrap();
    vm.register_view("v2", view2(30_000.0)).unwrap();
    vm.register_view("v3", view3()).unwrap();

    for round in 0..4 {
        let c = vm.catalog().clone();
        let deltas = match round % 3 {
            0 => delete_fraction(&c, "lineitem", 0.005, 100 + round),
            1 => insert_updates_only(&c, 0.005, 100 + round),
            _ => insert_new_rows(&c, 0.005, 100 + round),
        };
        vm.refresh(&deltas).unwrap();
        for v in ["v1", "v2", "v3"] {
            assert!(
                vm.verify_view(v).unwrap(),
                "{v} out of sync after round {round}"
            );
        }
    }
}
