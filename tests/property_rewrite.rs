//! Fuzzing the rewrite driver and the maintenance planner with *generated
//! plans*: random (but always well-typed) operator stacks over a fixed
//! schema. For every generated view the normalization must preserve
//! semantics, and the auto-selected maintenance strategy must converge.

use gpivot::prelude::*;
use proptest::prelude::{prop, proptest, ProptestConfig};

use std::sync::Arc;

fn catalog() -> Catalog {
    let facts_schema = Schema::from_pairs_keyed(
        &[
            ("id", DataType::Int),
            ("attr", DataType::Str),
            ("val", DataType::Int),
            ("qty", DataType::Int),
        ],
        &["id", "attr"],
    )
    .unwrap();
    let mut rows = Vec::new();
    for id in 0..18i64 {
        for (ai, attr) in ["a", "b", "c"].iter().enumerate() {
            if (id + ai as i64) % 3 != 0 {
                rows.push(row![id, *attr, (id * 7 + ai as i64) % 50, id % 9]);
            }
        }
    }
    let facts = Table::from_rows(Arc::new(facts_schema), rows).unwrap();
    let dims_schema = Schema::from_pairs_keyed(
        &[("d_id", DataType::Int), ("grp", DataType::Str)],
        &["d_id"],
    )
    .unwrap();
    let dims = Table::from_rows(
        Arc::new(dims_schema),
        (0..18i64)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::str(["x", "y", "z"][(i % 3) as usize]),
                ])
            })
            .collect(),
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("facts", facts).unwrap();
    c.register("dims", dims).unwrap();
    c
}

/// Deterministically build a well-typed plan from a byte string: each byte
/// proposes one operator on top of the current plan; proposals that do not
/// type-check are skipped. This biases generation toward interesting stacks
/// (pivot under join under select …) while guaranteeing validity.
fn build_plan(choices: &[u8], c: &Catalog) -> Plan {
    let mut plan = Plan::scan("facts");
    for &b in choices {
        let Ok(schema) = plan.schema(c) else { break };
        let cols: Vec<String> = schema
            .column_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        let pick = |n: u8| cols[(n as usize) % cols.len()].clone();

        let candidate: Option<Plan> = match b % 7 {
            // Selection on some column (numeric comparison or IN-list).
            0 => {
                let col = pick(b / 7);
                let pred = if b % 2 == 0 {
                    Expr::col(&col).gt(Expr::lit((b as i64) % 40))
                } else {
                    Expr::col(&col).in_list(vec![
                        Value::str("a"),
                        Value::str("x"),
                        Value::Int((b as i64) % 10),
                    ])
                };
                Some(plan.clone().select(pred))
            }
            // Pivot val/qty by attr, if those columns are still around.
            1 => {
                if cols.contains(&"attr".to_string()) && cols.contains(&"val".to_string()) {
                    let on = if cols.contains(&"qty".to_string()) && b % 2 == 0 {
                        vec!["val", "qty"]
                    } else {
                        vec!["val"]
                    };
                    Some(plan.clone().gpivot(PivotSpec::new(
                        vec!["attr"],
                        on,
                        vec![
                            vec![Value::str("a")],
                            vec![Value::str("b")],
                            vec![Value::str("c")],
                        ],
                    )))
                } else {
                    None
                }
            }
            // Join the dimension table once.
            2 => {
                if cols.contains(&"id".to_string()) && !cols.contains(&"d_id".to_string()) {
                    Some(plan.clone().join(Plan::scan("dims"), vec![("id", "d_id")]))
                } else {
                    None
                }
            }
            // Permute / duplicate-free projection keeping everything
            // (rotation by b).
            3 => {
                let mut rotated = cols.clone();
                rotated.rotate_left((b as usize) % cols.len().max(1));
                Some(
                    plan.clone()
                        .project_cols(&rotated.iter().map(String::as_str).collect::<Vec<_>>()),
                )
            }
            // Group by one column, summing/counting another.
            4 => {
                let g = pick(b / 7);
                let a = pick(b / 3);
                if g == a {
                    None
                } else {
                    Some(plan.clone().group_by(
                        &[g.as_str()],
                        vec![AggSpec::sum(&a, "agg_sum"), AggSpec::count_star("agg_cnt")],
                    ))
                }
            }
            // Unpivot a previously created pivot's cells.
            5 => {
                let cells: Vec<String> = cols
                    .iter()
                    .filter(|c| c.contains("**val"))
                    .cloned()
                    .collect();
                if cells.len() >= 2 {
                    Some(plan.clone().gunpivot(UnpivotSpec::simple(
                        cells.iter().map(String::as_str).collect::<Vec<_>>(),
                        "which",
                        "cell_val",
                    )))
                } else {
                    None
                }
            }
            // Selection over a pivoted cell (SELECT-over-GPIVOT shapes).
            _ => {
                let cell = cols.iter().find(|c| c.contains("**"));
                cell.map(|cell| {
                    plan.clone()
                        .select(Expr::col(cell).gt(Expr::lit((b as i64) % 30)))
                })
            }
        };
        if let Some(candidate) = candidate {
            // Keep only well-typed extensions; also bound tree growth.
            if candidate.schema(c).is_ok() && candidate.node_count() <= 16 {
                plan = candidate;
            }
        }
    }
    plan
}

fn deltas() -> SourceDeltas {
    let mut d = SourceDeltas::new();
    d.delete_rows("facts", vec![row![1, "b", 8, 1], row![4, "b", 29, 4]]);
    d.insert_rows(
        "facts",
        vec![
            row![0, "a", 13, 3],
            row![20, "b", 5, 2],
            row![21, "c", 44, 3],
        ],
    );
    d.delete_rows("dims", vec![row![5, "z"]]);
    d.insert_rows("dims", vec![row![5, "w"], row![20, "x"], row![21, "y"]]);
    d
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn normalization_preserves_random_plans(
        choices in prop::collection::vec(0u8..=255, 0..10)
    ) {
        let c = catalog();
        let plan = build_plan(&choices, &c);
        let nv = normalize_view(&plan, &c).unwrap();
        let original = Executor::new().run(&plan, &c).unwrap();
        let rewritten = Executor::new().run(&nv.view_plan(), &c).unwrap();
        assert_eq!(
            original.schema().column_names(),
            rewritten.schema().column_names(),
            "columns changed for plan:\n{plan}\nnormalized:\n{}",
            nv.plan
        );
        assert_eq!(
            original.sorted_rows(),
            rewritten.sorted_rows(),
            "contents changed for plan:\n{plan}\nnormalized:\n{}\nrules: {:?}",
            nv.plan,
            nv.log
        );
    }

    #[test]
    fn auto_strategy_converges_on_random_plans(
        choices in prop::collection::vec(0u8..=255, 0..10)
    ) {
        let c = catalog();
        let plan = build_plan(&choices, &c);
        let mut vm = ViewManager::new(c);
        let strategy = vm.register_view("v", plan.clone()).unwrap();
        vm.refresh(&deltas()).unwrap();
        assert!(
            vm.verify_view("v").unwrap(),
            "strategy {strategy} diverged for plan:\n{plan}"
        );
    }
}

#[test]
fn generator_produces_interesting_plans() {
    // Sanity-check the fuzz generator itself: across a spread of seeds it
    // must produce plans with pivots, joins, selects and group-bys — not
    // just bare scans.
    let c = catalog();
    let mut with_pivot = 0;
    let mut with_join = 0;
    let mut with_groupby = 0;
    let mut max_nodes = 0;
    for seed in 0u8..=254 {
        let choices: Vec<u8> = (0u8..8)
            .map(|i| seed.wrapping_mul(31).wrapping_add(i.wrapping_mul(57)))
            .collect();
        let plan = build_plan(&choices, &c);
        max_nodes = max_nodes.max(plan.node_count());
        if plan.pivot_count() > 0 {
            with_pivot += 1;
        }
        if plan.explain().contains("Join") {
            with_join += 1;
        }
        if plan.explain().contains("GroupBy") {
            with_groupby += 1;
        }
    }
    assert!(with_pivot > 40, "only {with_pivot} plans had pivots");
    assert!(with_join > 20, "only {with_join} plans had joins");
    assert!(with_groupby > 20, "only {with_groupby} plans had group-bys");
    assert!(max_nodes >= 6, "max plan size {max_nodes} too small");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The propagate phase is exact on arbitrary operator stacks:
    /// Δ(plan) == plan(post) − plan(pre) as signed multisets.
    #[test]
    fn delta_propagation_oracle_on_random_plans(
        choices in prop::collection::vec(0u8..=255, 0..10)
    ) {
        use gpivot::core::maintain::{propagate, PropagationCtx};

        let c = catalog();
        let plan = build_plan(&choices, &c);
        let d = deltas();
        let ctx = PropagationCtx::new(&c, &d);
        let got = propagate(&plan, &ctx).unwrap();

        let pre = Executor::new().run(&plan, &c).unwrap();
        let mut post_catalog = c.clone();
        for t in d.tables() {
            post_catalog.apply_delta(t, d.delta(t).unwrap()).unwrap();
        }
        let post = Executor::new().run(&plan, &post_catalog).unwrap();
        let mut expected = Delta::from_deletes(pre.rows().iter().cloned());
        expected.merge(&Delta::from_inserts(post.rows().iter().cloned()));
        assert_eq!(got, expected, "delta mismatch for plan:\n{plan}");
    }
}
