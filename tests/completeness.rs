//! The paper's completeness story (§3): "for those intermediate pivot
//! operators that cannot be pulled up, we have to apply the insert/delete
//! propagation rules … This also makes our solution complete in the sense
//! that it is capable of maintaining any ROLAP views."
//!
//! These tests build views whose pivots provably *cannot* be hoisted
//! (Figure 10's grouping-on-pivoted-columns case, key-losing projections,
//! GUNPIVOT-fed aggregations) and check that the fallback strategies still
//! maintain them exactly.

use gpivot::prelude::*;
use std::sync::Arc;

fn catalog() -> Catalog {
    let schema = Schema::from_pairs_keyed(
        &[
            ("id", DataType::Int),
            ("attr", DataType::Str),
            ("val", DataType::Int),
        ],
        &["id", "attr"],
    )
    .unwrap();
    let t = Table::from_rows(
        Arc::new(schema),
        vec![
            row![1, "a", 10],
            row![1, "b", 20],
            row![2, "a", 10],
            row![2, "b", 99],
            row![3, "b", 20],
            row![4, "a", 10],
        ],
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("facts", t).unwrap();
    c
}

fn spec() -> PivotSpec {
    PivotSpec::simple("attr", "val", vec![Value::str("a"), Value::str("b")])
}

fn deltas() -> SourceDeltas {
    let mut d = SourceDeltas::new();
    d.delete_rows("facts", vec![row![1, "a", 10], row![3, "b", 20]]);
    d.insert_rows("facts", vec![row![3, "a", 10], row![5, "b", 7]]);
    d
}

/// Figure 10's non-pullable shape: GROUP BY over pivoted output columns.
#[test]
fn grouping_on_pivoted_columns_falls_back_and_still_maintains() {
    let view = Plan::scan("facts")
        .gpivot(spec())
        .group_by(&["a**val"], vec![AggSpec::count_star("n")]);

    let c = catalog();
    // Normalization must leave the pivot stuck...
    let nv = normalize_view(&view, &c).unwrap();
    assert!(
        matches!(nv.shape, TopShape::Relational | TopShape::StuckPivot),
        "grouping on pivoted values must not hoist the pivot; got {:?}",
        nv.shape
    );
    // ...the planner must fall back...
    let vm = ViewManager::new(c.clone());
    let strategy = vm.choose_strategy(&view);
    assert_eq!(strategy, Strategy::InsertDelete);

    // ...and the fallback must still be exact.
    let mut vm = ViewManager::new(c);
    vm.register_view("v", view).unwrap();
    vm.refresh(&deltas()).unwrap();
    assert!(vm.verify_view("v").unwrap());
}

/// A projection that drops a pivoted output column. §5.1.2 cannot push it
/// below the pivot — but the paper also advises "not to remove the pivoted
/// output columns in the materialized view definition". The view manager
/// follows that advice automatically: the top projection is absorbed into
/// the output map, the *full* pivot is materialized (so the Fig. 23 update
/// rules still apply), and the dropped cell is merely hidden from the
/// user-facing view.
#[test]
fn cell_dropping_projection_materializes_full_pivot() {
    let view = Plan::scan("facts")
        .gpivot(spec())
        .project_cols(&["id", "a**val"]);
    let mut vm = ViewManager::new(catalog());
    let strategy = vm.register_view("v", view).unwrap();
    assert_eq!(strategy, Strategy::PivotUpdate);
    // The materialized table keeps every cell...
    assert!(vm
        .view("v")
        .unwrap()
        .table()
        .schema()
        .index_of("b**val")
        .is_ok());
    // ...while the user view hides the dropped one.
    assert_eq!(
        vm.query_view("v").unwrap().schema().column_names(),
        vec!["id", "a**val"]
    );
    vm.refresh(&deltas()).unwrap();
    assert!(vm.verify_view("v").unwrap());
}

/// A keyless view (duplicate-producing projection): still maintainable as a
/// bag with the insert/delete rules — the paper's "count algorithm" remark
/// in §6.1.
#[test]
fn keyless_view_is_maintained_as_a_bag() {
    let view = Plan::scan("facts")
        .gpivot(spec())
        .project_cols(&["a**val", "b**val"]); // drops the key column `id`
    let c = catalog();
    let nv_schema = view.schema(&c).unwrap();
    assert!(!nv_schema.has_key(), "precondition: the view has no key");

    let mut vm = ViewManager::new(c);
    vm.register_view("v", view).unwrap();
    vm.refresh(&deltas()).unwrap();
    assert!(vm.verify_view("v").unwrap());
}

/// GUNPIVOT feeding an aggregation on *name* columns (§5.3.4's non-pullable
/// case — "we cannot aggregate over column names").
#[test]
fn unpivot_with_name_aggregation_still_maintains() {
    let s = spec();
    let view = Plan::scan("facts")
        .gpivot(s.clone())
        .gunpivot(UnpivotSpec::reversing(&s))
        .group_by(&["id"], vec![AggSpec::max("attr", "last_attr")]);
    let mut vm = ViewManager::new(catalog());
    vm.register_view("v", view).unwrap();
    vm.refresh(&deltas()).unwrap();
    assert!(vm.verify_view("v").unwrap());
}

/// Simultaneous deltas on several base tables of the same view.
#[test]
fn multi_table_delta_batches() {
    let mut c = catalog();
    let dims = Schema::from_pairs_keyed(
        &[("d_id", DataType::Int), ("grp", DataType::Str)],
        &["d_id"],
    )
    .unwrap();
    c.register(
        "dims",
        Table::from_rows(
            Arc::new(dims),
            vec![
                row![1, "x"],
                row![2, "y"],
                row![3, "x"],
                row![4, "y"],
                row![5, "x"],
            ],
        )
        .unwrap(),
    )
    .unwrap();

    let view = Plan::scan("facts")
        .gpivot(spec())
        .join(Plan::scan("dims"), vec![("id", "d_id")]);
    for strategy in [
        Strategy::Recompute,
        Strategy::InsertDelete,
        Strategy::PivotUpdate,
    ] {
        let mut vm = ViewManager::new(c.clone());
        vm.register_view_with("v", view.clone(), strategy).unwrap();
        // One batch touching both tables at once.
        let mut d = deltas();
        d.delete_rows("dims", vec![row![2, "y"]]);
        d.insert_rows("dims", vec![row![2, "z"], row![6, "x"]]);
        vm.refresh(&d).unwrap();
        assert!(
            vm.verify_view("v").unwrap(),
            "strategy {strategy} diverged on a multi-table batch"
        );
    }
}

/// Views over a GUNPIVOT top (no pivot at all at the top) maintain via the
/// linear Fig. 22 unpivot propagation inside InsertDelete.
#[test]
fn unpivot_topped_view_maintains_linearly() {
    let s = spec();
    let view = Plan::scan("facts")
        .gpivot(s.clone())
        .gunpivot(UnpivotSpec::reversing(&s));
    let mut vm = ViewManager::new(catalog());
    vm.register_view("v", view).unwrap();
    let outcome = vm.refresh(&deltas()).unwrap().remove("v").unwrap();
    assert!(outcome.stats.total() > 0);
    assert!(vm.verify_view("v").unwrap());
}

/// A UNION of two pivoted branches: no pullup rule crosses a bag union, so
/// the pivots stay stuck — and the insert/delete fallback still maintains
/// the view exactly.
#[test]
fn union_of_pivots_maintains_via_fallback() {
    let view = Plan::Union {
        left: Box::new(Plan::scan("facts").gpivot(spec())),
        right: Box::new(
            Plan::scan("facts")
                .select(Expr::col("val").gt(Expr::lit(15)))
                .gpivot(spec()),
        ),
    };
    let mut vm = ViewManager::new(catalog());
    let strategy = vm.register_view("v", view).unwrap();
    assert_eq!(strategy, Strategy::InsertDelete);
    vm.refresh(&deltas()).unwrap();
    assert!(vm.verify_view("v").unwrap());
}

/// AVG is not self-maintainable under the Fig. 27 rules (the paper
/// restricts them to SUM/COUNT); the planner must fall back to the
/// affected-group recomputation method, which handles any aggregate.
#[test]
fn avg_crosstab_falls_back_to_groupby_insdel() {
    let view = Plan::scan("facts")
        .group_by(&["attr"], vec![AggSpec::avg("val", "avg_val")])
        .gpivot(PivotSpec::new(
            vec!["attr"],
            vec!["avg_val"],
            vec![vec![Value::str("a")], vec![Value::str("b")]],
        ));
    let mut vm = ViewManager::new(catalog());
    let strategy = vm.register_view("v", view).unwrap();
    assert_eq!(strategy, Strategy::GroupByInsDel);
    vm.refresh(&deltas()).unwrap();
    assert!(vm.verify_view("v").unwrap());
}

/// MIN/MAX crosstabs likewise: group recomputation handles order statistics
/// that no incremental rule can maintain under deletes.
#[test]
fn min_max_crosstab_falls_back_and_survives_deletes() {
    let view = Plan::scan("facts")
        .group_by(
            &["attr"],
            vec![AggSpec::min("val", "lo"), AggSpec::max("val", "hi")],
        )
        .gpivot(PivotSpec::new(
            vec!["attr"],
            vec!["lo", "hi"],
            vec![vec![Value::str("a")], vec![Value::str("b")]],
        ));
    let mut vm = ViewManager::new(catalog());
    let strategy = vm.register_view("v", view).unwrap();
    assert_eq!(strategy, Strategy::GroupByInsDel);
    // Delete the current max of group (attr=b): only recomputation can
    // discover the new max, which is exactly what GroupByInsDel does.
    let mut d = SourceDeltas::new();
    d.delete_rows("facts", vec![row![2, "b", 99]]);
    vm.refresh(&d).unwrap();
    assert!(vm.verify_view("v").unwrap());
}
