//! Cross-validation of the static plan analyzer against the runtime:
//!
//! * analyzer says *maintenance-safe* (no `Error` diagnostics) ⇒ the view
//!   registers, and incremental refresh equals recomputation on random
//!   insert/delete workloads;
//! * analyzer says a pullup rule is blocked (GP011/GP013/GP014/GP015) ⇒
//!   the corresponding rewrite rule really rejects, with the same code;
//! * analyzer says *unsafe* (GP001) ⇒ registration is refused with
//!   [`CoreError::PlanLint`] carrying that code.
//!
//! Plus deterministic anchors: the paper's three TPC-H evaluation views
//! all register lint-clean.

use gpivot::core::rewrite::pullup;
use gpivot::prelude::*;
use proptest::prelude::{any, prop, prop_assert, prop_oneof, proptest, Just, ProptestConfig};
use proptest::strategy::Strategy as _;
use std::collections::BTreeSet;
use std::sync::Arc;

const ATTRS: [&str; 2] = ["a", "b"];

/// The view shapes the generator chooses between, each with a known
/// analyzer verdict to cross-check at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// `GPivot(facts)` — clean.
    PurePivot,
    /// Select on a K column above the pivot — clean, pullup applies.
    SelectOnK,
    /// Null-intolerant select on a cell — clean (Fig. 29 machinery).
    SelectCellStrict,
    /// Null-tolerant select on a cell — GP011, both select rules reject.
    SelectCellNullTolerant,
    /// Join on K — clean, pullup applies.
    JoinOnK,
    /// Join condition on a pivoted cell — GP013, pullup-join rejects.
    JoinOnCell,
    /// Left outer join above the pivot — GP014, pullup-join rejects.
    OuterJoin,
    /// COUNT over a cell — GP015, Eq. 8 pullup rejects.
    GroupByCount,
    /// SUM covering every cell — clean, Eq. 8 pullup applies.
    GroupBySum,
    /// Pivot over a keyless table — GP001, registration refused.
    KeylessPivot,
}

const SHAPES: [Shape; 10] = [
    Shape::PurePivot,
    Shape::SelectOnK,
    Shape::SelectCellStrict,
    Shape::SelectCellNullTolerant,
    Shape::JoinOnK,
    Shape::JoinOnCell,
    Shape::OuterJoin,
    Shape::GroupByCount,
    Shape::GroupBySum,
    Shape::KeylessPivot,
];

#[derive(Debug, Clone)]
struct Scenario {
    shape_pick: usize,
    facts: Vec<(i64, usize, Option<i64>)>,
    dims: Vec<(i64, i64)>,
    deletes: Vec<usize>,
    inserts: Vec<(i64, usize, Option<i64>)>,
}

fn arb_scenario() -> impl proptest::strategy::Strategy<Value = Scenario> {
    let facts = prop::collection::btree_set((0i64..10, 0usize..ATTRS.len()), 0..24)
        .prop_flat_map(|keys| {
            let keys: Vec<_> = keys.into_iter().collect();
            let n = keys.len();
            (
                Just(keys),
                prop::collection::vec(prop_oneof![Just(None), (1i64..100).prop_map(Some)], n),
            )
        })
        .prop_map(|(keys, vals)| {
            keys.into_iter()
                .zip(vals)
                .map(|((id, attr), val)| (id, attr, val))
                .collect::<Vec<_>>()
        });
    (
        0usize..SHAPES.len(),
        facts,
        prop::collection::vec(0i64..4, 10),
        prop::collection::vec(any::<prop::sample::Index>(), 0..5),
        prop::collection::btree_set((0i64..12, 0usize..ATTRS.len()), 0..6),
        prop::collection::vec(prop_oneof![Just(None), (1i64..100).prop_map(Some)], 6),
    )
        .prop_map(
            |(shape_pick, facts, grps, delete_picks, insert_keys, insert_vals)| {
                let dims: Vec<(i64, i64)> = (0i64..10).zip(grps).collect();
                let mut deletes: BTreeSet<usize> = BTreeSet::new();
                if !facts.is_empty() {
                    for p in delete_picks {
                        deletes.insert(p.index(facts.len()));
                    }
                }
                let surviving: BTreeSet<(i64, usize)> = facts
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| !deletes.contains(i))
                    .map(|(_, &(id, attr, _))| (id, attr))
                    .collect();
                let inserts: Vec<(i64, usize, Option<i64>)> = insert_keys
                    .into_iter()
                    .zip(insert_vals)
                    .filter(|((id, attr), _)| !surviving.contains(&(*id, *attr)))
                    .map(|((id, attr), val)| (id, attr, val))
                    .collect();
                Scenario {
                    shape_pick,
                    facts,
                    dims,
                    deletes: deletes.into_iter().collect(),
                    inserts,
                }
            },
        )
}

fn fact_row(&(id, attr, val): &(i64, usize, Option<i64>)) -> Row {
    Row::new(vec![
        Value::Int(id),
        Value::str(ATTRS[attr]),
        val.map(Value::Int).unwrap_or(Value::Null),
    ])
}

/// `facts(id, attr, val)` keyed, `log` with the same columns but *no*
/// key, and `dims(d_id, grp)`.
fn build_catalog(s: &Scenario) -> Catalog {
    let cols = [
        ("id", DataType::Int),
        ("attr", DataType::Str),
        ("val", DataType::Int),
    ];
    let keyed = Schema::from_pairs_keyed(&cols, &["id", "attr"]).unwrap();
    let rows: Vec<Row> = s.facts.iter().map(fact_row).collect();
    let facts = Table::from_rows(Arc::new(keyed), rows.clone()).unwrap();
    let unkeyed = Schema::from_pairs(&cols).unwrap();
    let log = Table::from_rows(Arc::new(unkeyed), rows).unwrap();
    let dim_schema = Schema::from_pairs_keyed(
        &[("d_id", DataType::Int), ("grp", DataType::Int)],
        &["d_id"],
    )
    .unwrap();
    let dims = Table::from_rows(
        Arc::new(dim_schema),
        s.dims
            .iter()
            .map(|&(id, grp)| Row::new(vec![Value::Int(id), Value::Int(grp)]))
            .collect(),
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("facts", facts).unwrap();
    c.register("log", log).unwrap();
    c.register("dims", dims).unwrap();
    c
}

fn build_deltas(s: &Scenario) -> SourceDeltas {
    let mut d = SourceDeltas::new();
    d.delete_rows(
        "facts",
        s.deletes.iter().map(|&i| fact_row(&s.facts[i])).collect(),
    );
    d.insert_rows("facts", s.inserts.iter().map(fact_row).collect());
    d
}

fn spec() -> PivotSpec {
    PivotSpec::simple(
        "attr",
        "val",
        ATTRS.iter().map(|a| Value::str(*a)).collect(),
    )
}

fn cell(attr: &str) -> String {
    gpivot::algebra::encode_pivot_col(&[Value::str(attr)], "val")
}

fn build_view(shape: Shape) -> Plan {
    let pivoted = Plan::scan("facts").gpivot(spec());
    match shape {
        Shape::PurePivot => pivoted,
        Shape::SelectOnK => pivoted.select(Expr::col("id").gt(Expr::lit(3))),
        Shape::SelectCellStrict => pivoted.select(Expr::col(cell("a")).gt(Expr::lit(25))),
        Shape::SelectCellNullTolerant => pivoted.select(Expr::col(cell("a")).is_null()),
        Shape::JoinOnK => pivoted.join(Plan::scan("dims"), vec![("id", "d_id")]),
        Shape::JoinOnCell => pivoted.join(Plan::scan("dims"), vec![(cell("a").as_str(), "d_id")]),
        Shape::OuterJoin => Plan::Join {
            left: Box::new(pivoted),
            right: Box::new(Plan::scan("dims")),
            kind: gpivot::algebra::JoinKind::LeftOuter,
            on: vec![("id".into(), "d_id".into())],
            residual: None,
        },
        Shape::GroupByCount => pivoted.group_by(&["id"], vec![AggSpec::count(cell("a"), "n")]),
        Shape::GroupBySum => pivoted.group_by(
            &["id"],
            vec![AggSpec::sum(cell("a"), "sa"), AggSpec::sum(cell("b"), "sb")],
        ),
        Shape::KeylessPivot => Plan::scan("log").gpivot(spec()),
    }
}

/// The analyzer code each unsafe-ish shape must report, if any.
fn expected_code(shape: Shape) -> Option<DiagCode> {
    match shape {
        Shape::SelectCellNullTolerant => Some(DiagCode::Gp011SelectOverCells),
        Shape::JoinOnCell => Some(DiagCode::Gp013JoinOnCells),
        Shape::OuterJoin => Some(DiagCode::Gp014OuterJoin),
        Shape::GroupByCount => Some(DiagCode::Gp015AggNotBottomRespecting),
        Shape::KeylessPivot => Some(DiagCode::Gp001PivotInputNoKey),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 40,
        ..ProptestConfig::default()
    })]

    /// The three-way agreement: analyzer verdict vs registration vs
    /// refresh-equals-recompute, on random data and workloads.
    #[test]
    fn analyzer_verdicts_match_runtime(s in arb_scenario()) {
        let shape = SHAPES[s.shape_pick];
        let plan = build_view(shape);
        let catalog = build_catalog(&s);
        let report = analyze(&plan, &catalog);

        // 1. The generator's expectation holds statically.
        if let Some(code) = expected_code(shape) {
            prop_assert!(
                report.codes().contains(&code),
                "{shape:?}: analyzer missed {code}: {report:?}"
            );
        }

        // 2. Analyzer "rule blocked" verdicts are confirmed by the rules.
        match shape {
            Shape::SelectCellNullTolerant => {
                for (rule_name, res) in [
                    ("pullup-select", pullup::pullup_through_select(&plan, &catalog)),
                    (
                        "select-selfjoin",
                        pullup::push_select_below_pivot_selfjoin(&plan, &catalog),
                    ),
                ] {
                    match res {
                        Err(CoreError::RuleNotApplicable { code, .. }) => prop_assert!(
                            code == DiagCode::Gp011SelectOverCells,
                            "{rule_name}: wrong code {code}"
                        ),
                        other => panic!("{rule_name}: expected rejection, got {other:?}"),
                    }
                }
            }
            Shape::JoinOnCell | Shape::OuterJoin => {
                let want = expected_code(shape).unwrap();
                match pullup::pullup_through_join(&plan, &catalog) {
                    Err(CoreError::RuleNotApplicable { code, .. }) => prop_assert!(
                        code == want,
                        "pullup-join: wrong code {code}, want {want}"
                    ),
                    other => panic!("pullup-join: expected rejection, got {other:?}"),
                }
            }
            Shape::GroupByCount => {
                match pullup::pullup_through_group_by(&plan, &catalog) {
                    Err(CoreError::RuleNotApplicable { code, .. }) => prop_assert!(
                        code == DiagCode::Gp015AggNotBottomRespecting,
                        "pullup-groupby: wrong code {code}"
                    ),
                    other => panic!("pullup-groupby: expected rejection, got {other:?}"),
                }
            }
            Shape::GroupBySum => {
                // Clean verdict ⇒ Eq. 8 pullup actually applies.
                prop_assert!(
                    pullup::pullup_through_group_by(&plan, &catalog).is_ok(),
                    "clean GroupBySum must pull up"
                );
            }
            _ => {}
        }

        // 3. Registration gates on exactly the analyzer's error verdict,
        //    and safe views converge to recomputation after refresh.
        let mut vm = ViewManager::new(catalog);
        let registered = vm.register_view("v", plan.clone());
        if report.maintenance_safe() {
            let strategy = registered
                .unwrap_or_else(|e| panic!("{shape:?}: safe view refused: {e}"));
            vm.refresh(&build_deltas(&s))
                .unwrap_or_else(|e| panic!("{shape:?}/{strategy}: refresh failed: {e}"));
            prop_assert!(
                vm.verify_view("v").unwrap(),
                "{shape:?}/{strategy} diverged from recomputation\nscenario: {s:?}"
            );
        } else {
            match registered {
                Err(CoreError::PlanLint { diagnostics, .. }) => {
                    let codes: Vec<DiagCode> = diagnostics.iter().map(|d| d.code).collect();
                    prop_assert!(
                        codes.contains(&expected_code(shape).unwrap()),
                        "{shape:?}: PlanLint missing expected code: {codes:?}"
                    );
                }
                other => panic!("{shape:?}: expected PlanLint, got {other:?}"),
            }
            // Opting out of the lint surfaces the underlying algebra
            // error instead — the gate never *hides* failures.
            let opted = vm.register_view_with(
                "v2",
                plan.clone(),
                ViewOptions::new().skip_plan_lint(),
            );
            prop_assert!(
                !matches!(opted, Err(CoreError::PlanLint { .. })),
                "skip_plan_lint must bypass the lint gate"
            );
        }
    }
}

/// The paper's three evaluation views register lint-clean: no errors, no
/// warnings recorded on the installed views.
#[test]
fn tpch_views_register_lint_clean() {
    let catalog = gpivot::tpch::generate(&gpivot::tpch::TpchConfig::scale(0.01));
    let mut vm = ViewManager::new(catalog);
    for (name, plan) in [
        ("view1", gpivot::tpch::view1()),
        (
            "view2",
            gpivot::tpch::view2(gpivot::tpch::views::VIEW2_THRESHOLD),
        ),
        ("view3", gpivot::tpch::view3()),
    ] {
        let report = analyze(&plan, vm.catalog());
        assert!(report.is_clean(), "{name} not lint-clean: {report:?}");
        vm.register_view(name, plan)
            .unwrap_or_else(|e| panic!("{name}: register failed: {e}"));
        assert!(
            vm.view(name).unwrap().lint_warnings().is_empty(),
            "{name} carries lint warnings"
        );
    }
}
