//! Golden-file tests for the SQL frontend: each `tests/sql/NN_*.sql` file
//! holds one statement; the harness runs it through one shared
//! [`GpivotService`] (statements execute in filename order, so later files
//! see views created by earlier ones) and captures a data-independent
//! transcript — the parsed plan, its dialect rendering, EXPLAIN text, view
//! registrations, and parse errors with spans — which must match the
//! committed `NN_*.expected` file byte-for-byte.
//!
//! A case whose first non-whitespace character is `:` is a REPL
//! meta-command instead of SQL: `:save @TMP@` checkpoints the service and
//! `:open @TMP@` replaces it with one recovered from that checkpoint (the
//! `@TMP@` placeholder resolves to a per-run temp directory, so goldens
//! stay path-independent). The `90_save` → `91_open` → `92_*` sequence is
//! the durability round-trip: state saved, service restarted, and the
//! follow-up SELECT still answered from the restored materialized view.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! GPIVOT_UPDATE_GOLDENS=1 cargo test --test sql_golden
//! ```

use gpivot::prelude::*;
use gpivot::sql::parse_statement;
use std::fmt::Write as _;
use std::path::Path;

/// Execute a `:save` / `:open` meta-command case against the live service,
/// producing a path-independent transcript (`@TMP@` is echoed verbatim;
/// checkpoint byte sizes are data-dependent and omitted).
fn meta_transcript(svc: &mut GpivotService, seed: &Catalog, line: &str, tmp: &Path) -> String {
    let mut out = String::new();
    let line = line.trim();
    let _ = writeln!(out, "-- meta --");
    let _ = writeln!(out, "{line}");
    let _ = writeln!(out, "-- result --");
    let resolve = |arg: &str| tmp.join(arg.trim().replace("@TMP@", "state"));
    if let Some(arg) = line.strip_prefix(":save ") {
        match svc.save(resolve(arg)) {
            Ok(_) => {
                let _ = writeln!(out, "saved state to {}", arg.trim());
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
            }
        }
    } else if let Some(arg) = line.strip_prefix(":open ") {
        match GpivotService::open(resolve(arg), seed.clone(), ServeConfig::default()) {
            Ok((opened, report)) => {
                *svc = opened;
                let _ = writeln!(
                    out,
                    "opened {} — recovered: {}, views restored: {}, epoch: {}",
                    arg.trim(),
                    report.recovered,
                    report.views_recovered + report.views_recomputed,
                    report.recovered_epoch
                );
            }
            Err(e) => {
                let _ = writeln!(out, "error: {e}");
            }
        }
    } else {
        let _ = writeln!(out, "error: unknown meta-command");
    }
    out
}

fn transcript(svc: &GpivotService, sql: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- statement --");
    let _ = writeln!(out, "{}", sql.trim_end());
    match parse_statement(sql) {
        Err(e) => {
            let _ = writeln!(out, "-- error --");
            let _ = writeln!(out, "{e}");
            return out;
        }
        Ok(stmt) => {
            let plan = match &stmt {
                Statement::Select(p) => Some(p.clone()),
                Statement::CreateView { definition, .. } => Some(definition.clone()),
                Statement::Explain(_) => None,
            };
            if let Some(p) = plan {
                let _ = writeln!(out, "-- plan --");
                let _ = write!(out, "{}", p.explain());
                let _ = writeln!(out, "-- rendered --");
                let _ = writeln!(out, "{}", p.to_sql_dialect());
            }
        }
    }
    match svc.execute_sql(sql) {
        Ok(SqlOutcome::ViewCreated {
            name,
            strategy,
            lint_warnings,
        }) => {
            let _ = writeln!(out, "-- result --");
            let _ = writeln!(out, "created view {name} (strategy: {strategy})");
            for w in lint_warnings {
                let _ = writeln!(out, "lint: {w}");
            }
        }
        Ok(SqlOutcome::Rows { table, used_view }) => {
            let _ = writeln!(out, "-- result --");
            // Row *data* is scale-dependent; capture only the shape and
            // which view (if any) answered the query.
            let schema = table.schema();
            let cols: Vec<&str> = (0..schema.arity())
                .map(|i| schema.field_at(i).name.as_str())
                .collect();
            let _ = writeln!(out, "columns: [{}]", cols.join(", "));
            match used_view {
                Some(v) => {
                    let _ = writeln!(out, "used view: {v}");
                }
                None => {
                    let _ = writeln!(out, "used view: (none; base tables)");
                }
            }
        }
        Ok(SqlOutcome::Explain { text }) => {
            let _ = writeln!(out, "-- explain --");
            let _ = write!(out, "{text}");
        }
        Err(e) => {
            let _ = writeln!(out, "-- error --");
            let _ = writeln!(out, "{e}");
        }
    }
    out
}

#[test]
fn sql_goldens() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/sql");
    let update = std::env::var_os("GPIVOT_UPDATE_GOLDENS").is_some();
    let mut cases: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/sql exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no golden cases in {}", dir.display());

    let catalog = gpivot::tpch::generate(&gpivot::tpch::TpchConfig::scale(0.01));
    let seed = catalog.clone();
    let mut svc = GpivotService::new(catalog);

    // Scratch directory for the save/open round-trip cases; `@TMP@` in a
    // meta-command case resolves underneath it.
    let tmp = std::env::temp_dir().join(format!("gpivot-sql-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create golden temp dir");

    let mut failures = Vec::new();
    for case in &cases {
        let sql = std::fs::read_to_string(case).expect("golden .sql reads");
        let got = if sql.trim_start().starts_with(':') {
            meta_transcript(&mut svc, &seed, &sql, &tmp)
        } else {
            transcript(&svc, &sql)
        };
        let expected_path = case.with_extension("expected");
        if update {
            std::fs::write(&expected_path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing {} — run GPIVOT_UPDATE_GOLDENS=1 cargo test --test sql_golden",
                expected_path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "{}:\n--- expected ---\n{want}\n--- got ---\n{got}",
                case.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}",
        failures.join("\n")
    );
}
