//! Golden-file tests for the SQL frontend: each `tests/sql/NN_*.sql` file
//! holds one statement; the harness runs it through one shared
//! [`GpivotService`] (statements execute in filename order, so later files
//! see views created by earlier ones) and captures a data-independent
//! transcript — the parsed plan, its dialect rendering, EXPLAIN text, view
//! registrations, and parse errors with spans — which must match the
//! committed `NN_*.expected` file byte-for-byte.
//!
//! Regenerate after an intentional change with:
//!
//! ```sh
//! GPIVOT_UPDATE_GOLDENS=1 cargo test --test sql_golden
//! ```

use gpivot::prelude::*;
use gpivot::sql::parse_statement;
use std::fmt::Write as _;
use std::path::Path;

fn transcript(svc: &GpivotService, sql: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "-- statement --");
    let _ = writeln!(out, "{}", sql.trim_end());
    match parse_statement(sql) {
        Err(e) => {
            let _ = writeln!(out, "-- error --");
            let _ = writeln!(out, "{e}");
            return out;
        }
        Ok(stmt) => {
            let plan = match &stmt {
                Statement::Select(p) => Some(p.clone()),
                Statement::CreateView { definition, .. } => Some(definition.clone()),
                Statement::Explain(_) => None,
            };
            if let Some(p) = plan {
                let _ = writeln!(out, "-- plan --");
                let _ = write!(out, "{}", p.explain());
                let _ = writeln!(out, "-- rendered --");
                let _ = writeln!(out, "{}", p.to_sql_dialect());
            }
        }
    }
    match svc.execute_sql(sql) {
        Ok(SqlOutcome::ViewCreated {
            name,
            strategy,
            lint_warnings,
        }) => {
            let _ = writeln!(out, "-- result --");
            let _ = writeln!(out, "created view {name} (strategy: {strategy})");
            for w in lint_warnings {
                let _ = writeln!(out, "lint: {w}");
            }
        }
        Ok(SqlOutcome::Rows { table, used_view }) => {
            let _ = writeln!(out, "-- result --");
            // Row *data* is scale-dependent; capture only the shape and
            // which view (if any) answered the query.
            let schema = table.schema();
            let cols: Vec<&str> = (0..schema.arity())
                .map(|i| schema.field_at(i).name.as_str())
                .collect();
            let _ = writeln!(out, "columns: [{}]", cols.join(", "));
            match used_view {
                Some(v) => {
                    let _ = writeln!(out, "used view: {v}");
                }
                None => {
                    let _ = writeln!(out, "used view: (none; base tables)");
                }
            }
        }
        Ok(SqlOutcome::Explain { text }) => {
            let _ = writeln!(out, "-- explain --");
            let _ = write!(out, "{text}");
        }
        Err(e) => {
            let _ = writeln!(out, "-- error --");
            let _ = writeln!(out, "{e}");
        }
    }
    out
}

#[test]
fn sql_goldens() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/sql");
    let update = std::env::var_os("GPIVOT_UPDATE_GOLDENS").is_some();
    let mut cases: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/sql exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "sql"))
        .collect();
    cases.sort();
    assert!(!cases.is_empty(), "no golden cases in {}", dir.display());

    let catalog = gpivot::tpch::generate(&gpivot::tpch::TpchConfig::scale(0.01));
    let svc = GpivotService::new(catalog);

    let mut failures = Vec::new();
    for case in &cases {
        let sql = std::fs::read_to_string(case).expect("golden .sql reads");
        let got = transcript(&svc, &sql);
        let expected_path = case.with_extension("expected");
        if update {
            std::fs::write(&expected_path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&expected_path).unwrap_or_else(|_| {
            panic!(
                "missing {} — run GPIVOT_UPDATE_GOLDENS=1 cargo test --test sql_golden",
                expected_path.display()
            )
        });
        if got != want {
            failures.push(format!(
                "{}:\n--- expected ---\n{want}\n--- got ---\n{got}",
                case.file_name().unwrap_or_default().to_string_lossy()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "golden mismatches:\n{}",
        failures.join("\n")
    );
}
