//! Acquisition-graph construction, interprocedural summaries, and cycle
//! detection over the walker's per-function scans.

use crate::walker::{BoundaryKind, FnScan, LockOp};
use std::collections::{BTreeMap, BTreeSet};

/// One acquisition-order edge: `from` was held when `to` was acquired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    /// `Some(callee)` when the acquisition happens inside a callee reached
    /// from the holding function (name-resolved within the same crate);
    /// `None` for a direct acquisition in the holding function itself.
    pub via: Option<String>,
    pub file: String,
    pub line: u32,
    pub function: String,
    /// Number of distinct sites that produce this (from, to) pair.
    pub sites: u32,
}

/// Interprocedural function summary: every lock a function may acquire
/// (directly or transitively through same-crate calls) and whether it may
/// fsync. Name-based call resolution over-approximates — summaries feed
/// Warn/Info findings, never Errors.
#[derive(Clone, Debug, Default)]
pub struct FnSummary {
    pub acquires: BTreeSet<String>,
    pub fsyncs: bool,
}

/// Group scans by crate (second path segment under `crates/`, else the
/// whole file label) for call resolution.
pub fn crate_of(file: &str) -> String {
    let mut parts = file.split('/');
    if parts.next() == Some("crates") {
        if let Some(c) = parts.next() {
            return c.to_string();
        }
    }
    file.to_string()
}

/// Call-target resolution over the scanned functions.
///
/// Name-based resolution is deliberately conservative — a wrong match
/// would fabricate acquisition edges:
/// * a plain `self.method(…)` call resolves **within the defining file
///   only** (each type's methods live in one file in this workspace);
/// * any other call (free function, or a method on another receiver —
///   including lock guards, whose methods dispatch to the locked data's
///   type) resolves only when the name has a **unique defining file**
///   within the crate; ambiguous names are skipped.
pub struct Resolver {
    /// (file, fn name) → summary (same-name fns within a file merged).
    per_file: BTreeMap<(String, String), FnSummary>,
    /// (crate, fn name) → defining file, when unique within the crate.
    unique_in_crate: BTreeMap<(String, String), Option<String>>,
}

impl Resolver {
    pub fn resolve(&self, caller_file: &str, c: &crate::walker::CallSite) -> Option<&FnSummary> {
        if c.is_self_call() {
            return self
                .per_file
                .get(&(caller_file.to_string(), c.callee.clone()));
        }
        match self
            .unique_in_crate
            .get(&(crate_of(caller_file), c.callee.clone()))
        {
            Some(Some(file)) => self.per_file.get(&(file.clone(), c.callee.clone())),
            _ => None,
        }
    }
}

/// Compute per-function summaries with a bounded fixpoint over the
/// resolvable call graph.
pub fn summaries(scans: &[FnScan]) -> Resolver {
    let mut per_file: BTreeMap<(String, String), FnSummary> = BTreeMap::new();
    let mut unique_in_crate: BTreeMap<(String, String), Option<String>> = BTreeMap::new();
    for s in scans {
        let e = per_file
            .entry((s.file.clone(), s.name.clone()))
            .or_default();
        for a in &s.acquires {
            e.acquires.insert(a.lock.clone());
        }
        e.fsyncs |= s.direct_fsync;
        unique_in_crate
            .entry((crate_of(&s.file), s.name.clone()))
            .and_modify(|f| {
                if f.as_deref() != Some(s.file.as_str()) {
                    *f = None; // defined in more than one file: ambiguous
                }
            })
            .or_insert_with(|| Some(s.file.clone()));
    }
    let mut r = Resolver {
        per_file,
        unique_in_crate,
    };
    // Fixpoint: propagate callee summaries into callers. Graphs here are
    // tiny; a small bounded loop converges.
    for _ in 0..12 {
        let mut changed = false;
        for s in scans {
            let caller_key = (s.file.clone(), s.name.clone());
            let mut add_acquires = BTreeSet::new();
            let mut add_fsync = false;
            for c in &s.calls {
                if c.callee == s.name {
                    continue; // self-recursion adds nothing new
                }
                if let Some(cs) = r.resolve(&s.file, c) {
                    for l in &cs.acquires {
                        add_acquires.insert(l.clone());
                    }
                    add_fsync |= cs.fsyncs;
                }
            }
            if let Some(e) = r.per_file.get_mut(&caller_key) {
                let before = e.acquires.len();
                e.acquires.extend(add_acquires);
                if e.acquires.len() != before || (add_fsync && !e.fsyncs) {
                    changed = true;
                }
                e.fsyncs |= add_fsync;
            }
        }
        if !changed {
            break;
        }
    }
    r
}

/// Build the deduplicated acquisition-order edge list (distinct locks
/// only; same-lock reacquisition is reported separately as a finding).
pub fn build_edges(scans: &[FnScan], resolver: &Resolver) -> Vec<Edge> {
    let mut dedup: BTreeMap<(String, String, bool), Edge> = BTreeMap::new();
    let mut push = |from: &str, to: &str, via: Option<String>, file: &str, line: u32, f: &str| {
        let key = (from.to_string(), to.to_string(), via.is_some());
        dedup
            .entry(key)
            .and_modify(|e| e.sites += 1)
            .or_insert(Edge {
                from: from.to_string(),
                to: to.to_string(),
                via,
                file: file.to_string(),
                line,
                function: f.to_string(),
                sites: 1,
            });
    };
    for s in scans {
        for (held, acq) in &s.acquired_while_held {
            if held.lock != acq.lock {
                push(&held.lock, &acq.lock, None, &s.file, acq.line, &s.name);
            }
        }
        for c in &s.calls {
            if c.held.is_empty() || c.callee == s.name {
                continue;
            }
            if let Some(cs) = resolver.resolve(&s.file, c) {
                for l in &cs.acquires {
                    for h in &c.held {
                        if h.lock != *l {
                            push(&h.lock, l, Some(c.callee.clone()), &s.file, c.line, &s.name);
                        }
                    }
                }
            }
        }
    }
    dedup.into_values().collect()
}

/// Strongly connected components with more than one node (or a self-loop)
/// over the given edges. Returns each cycle as its sorted node list.
pub fn cycles(nodes: &BTreeSet<String>, edges: &[Edge]) -> Vec<Vec<String>> {
    // Tarjan's algorithm, iterative enough for these graph sizes via
    // recursion (lock graphs have < 100 nodes).
    let idx: BTreeMap<&str, usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for e in edges {
        if let (Some(&a), Some(&b)) = (idx.get(e.from.as_str()), idx.get(e.to.as_str())) {
            if a == b {
                self_loop[a] = true;
            } else {
                adj[a].push(b);
            }
        }
    }
    struct T<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        sccs: Vec<Vec<usize>>,
    }
    fn strong(t: &mut T, v: usize) {
        t.index[v] = Some(t.next);
        t.low[v] = t.next;
        t.next += 1;
        t.stack.push(v);
        t.on_stack[v] = true;
        for i in 0..t.adj[v].len() {
            let w = t.adj[v][i];
            if t.index[w].is_none() {
                strong(t, w);
                t.low[v] = t.low[v].min(t.low[w]);
            } else if t.on_stack[w] {
                t.low[v] = t.low[v].min(t.index[w].unwrap_or(usize::MAX));
            }
        }
        if Some(t.low[v]) == t.index[v] {
            let mut comp = Vec::new();
            while let Some(w) = t.stack.pop() {
                t.on_stack[w] = false;
                comp.push(w);
                if w == v {
                    break;
                }
            }
            t.sccs.push(comp);
        }
    }
    let mut t = T {
        adj: &adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        sccs: Vec::new(),
    };
    for v in 0..n {
        if t.index[v].is_none() {
            strong(&mut t, v);
        }
    }
    let names: Vec<&String> = nodes.iter().collect();
    let mut out = Vec::new();
    for comp in t.sccs {
        if comp.len() > 1 || (comp.len() == 1 && self_loop[comp[0]]) {
            let mut c: Vec<String> = comp.iter().map(|&i| names[i].clone()).collect();
            c.sort();
            out.push(c);
        }
    }
    out.sort();
    out
}

/// Kahn topological order of the lock nodes (ties broken alphabetically);
/// `None` when the graph is cyclic.
pub fn topo_order(nodes: &BTreeSet<String>, edges: &[Edge]) -> Option<Vec<String>> {
    let mut indeg: BTreeMap<&str, usize> = nodes.iter().map(|n| (n.as_str(), 0)).collect();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        if e.from != e.to
            && nodes.contains(&e.from)
            && nodes.contains(&e.to)
            && adj
                .entry(e.from.as_str())
                .or_default()
                .insert(e.to.as_str())
        {
            *indeg.entry(e.to.as_str()).or_default() += 1;
        }
    }
    let mut ready: BTreeSet<&str> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&n, _)| n)
        .collect();
    let mut out = Vec::new();
    while let Some(&n) = ready.iter().next() {
        ready.remove(n);
        out.push(n.to_string());
        if let Some(next) = adj.get(n) {
            for &m in next {
                let d = indeg.entry(m).or_default();
                *d -= 1;
                if *d == 0 {
                    ready.insert(m);
                }
            }
        }
    }
    if out.len() == nodes.len() {
        Some(out)
    } else {
        None
    }
}

/// Does this boundary's held set contain a Mutex/Write (exclusive) guard?
pub fn holds_exclusive(b: &crate::walker::Boundary) -> bool {
    b.held
        .iter()
        .any(|h| matches!(h.op, LockOp::Mutex | LockOp::Write))
}

/// Interprocedural fsync exposure: call sites holding guards whose callee
/// may fsync.
pub struct FsyncViaCall {
    pub file: String,
    pub line: u32,
    pub function: String,
    pub callee: String,
    pub held: Vec<String>,
}

pub fn fsyncs_via_calls(scans: &[FnScan], resolver: &Resolver) -> Vec<FsyncViaCall> {
    let mut out = Vec::new();
    for s in scans {
        if s.direct_fsync {
            // The direct boundary finding already covers this function.
            continue;
        }
        for c in &s.calls {
            if c.held.is_empty() || c.callee == s.name {
                continue;
            }
            if resolver
                .resolve(&s.file, c)
                .map(|x| x.fsyncs)
                .unwrap_or(false)
            {
                out.push(FsyncViaCall {
                    file: s.file.clone(),
                    line: c.line,
                    function: s.name.clone(),
                    callee: c.callee.clone(),
                    held: c.held.iter().map(|h| h.lock.clone()).collect(),
                });
            }
        }
    }
    // One finding per (function, callee) — call sites inside loops repeat.
    let mut seen = BTreeSet::new();
    out.retain(|f| seen.insert((f.function.clone(), f.callee.clone(), f.file.clone())));
    out
}

/// Same-lock reacquisition pairs, classified by guard ops.
pub struct Reacquire {
    pub file: String,
    pub line: u32,
    pub function: String,
    pub lock: String,
    pub held_op: LockOp,
    pub acq_op: LockOp,
}

pub fn reacquisitions(scans: &[FnScan]) -> Vec<Reacquire> {
    let mut out = Vec::new();
    for s in scans {
        for (held, acq) in &s.acquired_while_held {
            if held.lock == acq.lock {
                out.push(Reacquire {
                    file: s.file.clone(),
                    line: acq.line,
                    function: s.name.clone(),
                    lock: acq.lock.clone(),
                    held_op: held.op,
                    acq_op: acq.op,
                });
            }
        }
    }
    out
}

/// All boundary crossings of a given kind.
pub fn boundaries_of(
    scans: &[FnScan],
    kind: BoundaryKind,
) -> Vec<(&FnScan, &crate::walker::Boundary)> {
    let mut out = Vec::new();
    for s in scans {
        for b in &s.boundaries {
            if b.kind == kind {
                out.push((s, b));
            }
        }
    }
    out
}
