//! A small, dependency-free Rust-source walker.
//!
//! This is deliberately **not** a Rust parser. The lint needs exactly four
//! things from a source file: where functions begin and end, where lock
//! guards are acquired and released (every acquisition in the serve tier
//! goes through the `sync::lock`/`read`/`write`/`wait` helpers, plus the
//! handful of raw `.lock()`-style leaf mutexes elsewhere), which calls are
//! made while guards are held, and which hazard boundaries
//! (`catch_unwind`, fsync, pool scopes) a guard is held across. A
//! line-and-brace-level scan over comment- and string-blanked text
//! recovers all four reliably on rustfmt'd code; anything it cannot
//! attribute it drops on the floor rather than guessing.

/// How a lock is acquired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOp {
    /// `sync::lock(&m)` / `m.lock()` — exclusive mutex guard.
    Mutex,
    /// `sync::read(&l)` / `l.read()` — shared rwlock guard.
    Read,
    /// `sync::write(&l)` / `l.write()` — exclusive rwlock guard.
    Write,
}

impl LockOp {
    pub fn as_str(self) -> &'static str {
        match self {
            LockOp::Mutex => "lock",
            LockOp::Read => "read",
            LockOp::Write => "write",
        }
    }
}

/// A guard live at some program point.
#[derive(Clone, Debug)]
pub struct HeldLock {
    pub lock: String,
    pub op: LockOp,
    pub line: u32,
}

/// One lock acquisition site.
#[derive(Clone, Debug)]
pub struct Acquire {
    pub op: LockOp,
    pub lock: String,
    pub line: u32,
    /// `let g = …` bound the guard (it stays live to end of scope);
    /// unbound acquisitions are statement temporaries.
    pub bound: bool,
}

/// A call made while zero or more guards are held.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Last path segment of the callee (`self.refresh_epoch(…)` →
    /// `refresh_epoch`, `Durability::open(…)` → `open`).
    pub callee: String,
    /// The method receiver chain (`self.inner.root.drop_view(…)` →
    /// `["self", "inner", "root"]`); empty for free-function calls.
    pub receiver: Vec<String>,
    pub line: u32,
    pub held: Vec<HeldLock>,
}

impl CallSite {
    /// A plain `self.method(…)` call — resolvable within the defining
    /// file (one type's methods live in one file in this workspace).
    pub fn is_self_call(&self) -> bool {
        self.receiver.len() == 1 && self.receiver[0] == "self"
    }
}

/// Hazards a guard should not (or only deliberately) be held across.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BoundaryKind {
    /// `catch_unwind(…)` — a panic inside poisons every held lock.
    CatchUnwind,
    /// `.sync(…)` / `.sync_all(…)` / `.sync_data(…)` — an fsync turns the
    /// guard hold time into disk latency.
    Fsync,
    /// `run_on_pool(…)` / `thread::scope(…)` — worker threads run while
    /// the guard is held; any worker touching the same lock deadlocks.
    PoolScope,
}

/// A hazard boundary crossed while guards were held.
#[derive(Clone, Debug)]
pub struct Boundary {
    pub kind: BoundaryKind,
    pub token: String,
    pub line: u32,
    pub held: Vec<HeldLock>,
}

/// A condvar wait performed while holding guards other than the one the
/// wait releases.
#[derive(Clone, Debug)]
pub struct WaitSite {
    pub line: u32,
    pub held_other: Vec<HeldLock>,
}

/// Everything the walker extracted from one function body.
#[derive(Clone, Debug, Default)]
pub struct FnScan {
    pub file: String,
    pub name: String,
    pub line: u32,
    /// All acquisitions (bound and temporary).
    pub acquires: Vec<Acquire>,
    /// (held guard, new acquisition) pairs: the raw material for
    /// acquisition-order edges and same-lock reacquisition findings.
    pub acquired_while_held: Vec<(HeldLock, Acquire)>,
    pub calls: Vec<CallSite>,
    pub boundaries: Vec<Boundary>,
    pub waits: Vec<WaitSite>,
    /// The function itself performs an fsync (used for interprocedural
    /// "guard held across fsync" propagation).
    pub direct_fsync: bool,
}

// ---------------------------------------------------------------------------
// Pass 1: blank comments and literal contents, preserving line structure.
// ---------------------------------------------------------------------------

/// Replace comments and string/char-literal contents with spaces so the
/// brace/token scan never trips over `{`/`}`/`"` inside them. Newlines are
/// preserved; the result has identical line numbering.
pub fn clean_source(src: &str) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let n = b.len();
    let blank = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    while i < n {
        let c = b[i];
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 0;
            while i < n {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"…" / r#"…"#.
        if c == 'r' && i + 1 < n && (b[i + 1] == '"' || b[i + 1] == '#') {
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == '"' {
                out.push(' '); // the `r`
                for _ in 0..hashes {
                    out.push(' ');
                }
                out.push('"');
                j += 1;
                'raw: while j < n {
                    if b[j] == '"' {
                        let mut k = j + 1;
                        let mut h = 0;
                        while k < n && b[k] == '#' && h < hashes {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push(' ');
                            }
                            j = k;
                            break 'raw;
                        }
                    }
                    blank(&mut out, b[j]);
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        // String literal.
        if c == '"' {
            out.push('"');
            i += 1;
            while i < n {
                if b[i] == '\\' && i + 1 < n {
                    blank(&mut out, b[i]);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                blank(&mut out, b[i]);
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a literal; 'a (no
        // closing quote within two chars) is a lifetime.
        if c == '\'' && i + 1 < n {
            if b[i + 1] == '\\' {
                // Escaped char literal: find closing quote.
                out.push('\'');
                i += 1;
                while i < n && b[i] != '\'' {
                    blank(&mut out, b[i]);
                    i += 1;
                }
                if i < n {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if i + 2 < n && b[i + 2] == '\'' {
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Blank `#[cfg(test)]` / `#[test]`-attributed items (including whole
/// `mod tests { … }` blocks) so test-only lock usage never pollutes the
/// production acquisition graph. Operates on cleaned text.
pub fn blank_test_items(cleaned: &str) -> String {
    let mut s: Vec<char> = cleaned.chars().collect();
    let pats = ["#[cfg(test)]", "#[test]"];
    loop {
        let text: String = s.iter().collect();
        let hit = pats
            .iter()
            .filter_map(|p| text.find(p).map(|at| (at, p.len())))
            .min();
        let Some((at, plen)) = hit else { break };
        // From the end of the attribute, find the item's extent: the first
        // `{` → matching `}`, unless a `;` comes first (e.g. `mod tests;`).
        let mut j = at + plen;
        let mut end = s.len();
        while j < s.len() {
            match s[j] {
                ';' => {
                    end = j + 1;
                    break;
                }
                '{' => {
                    let mut depth = 0usize;
                    while j < s.len() {
                        match s[j] {
                            '{' => depth += 1,
                            '}' => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    end = (j + 1).min(s.len());
                    break;
                }
                _ => j += 1,
            }
        }
        for c in s[at..end].iter_mut() {
            if *c != '\n' {
                *c = ' ';
            }
        }
    }
    s.iter().collect()
}

// ---------------------------------------------------------------------------
// Pass 2: tokenize.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Tok {
    Ident(String),
    Punct(char),
}

#[derive(Clone, Debug)]
pub(crate) struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// Tokenize cleaned source: identifiers absorb `::` path segments
/// (`sync::lock` and `std::panic::catch_unwind` are single tokens);
/// everything else is single-char punctuation.
pub(crate) fn tokenize(cleaned: &str) -> Vec<Token> {
    let b: Vec<char> = cleaned.chars().collect();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start_line = line;
            let mut s = String::new();
            loop {
                while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    s.push(b[i]);
                    i += 1;
                }
                // Absorb a `::segment` continuation.
                if i + 2 < n
                    && b[i] == ':'
                    && b[i + 1] == ':'
                    && (b[i + 2].is_ascii_alphabetic() || b[i + 2] == '_')
                {
                    s.push_str("::");
                    i += 2;
                } else {
                    break;
                }
            }
            toks.push(Token {
                tok: Tok::Ident(s),
                line: start_line,
            });
            continue;
        }
        toks.push(Token {
            tok: Tok::Punct(c),
            line,
        });
        i += 1;
    }
    toks
}

// ---------------------------------------------------------------------------
// Pass 3: function extraction + event scan.
// ---------------------------------------------------------------------------

/// Scan one file into per-function event records.
pub fn scan_file(file: &str, src: &str) -> Vec<FnScan> {
    let cleaned = blank_test_items(&clean_source(src));
    let toks = tokenize(&cleaned);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].tok == Tok::Ident("fn".to_string()) {
            let Some(Token {
                tok: Tok::Ident(name),
                line,
            }) = toks.get(i + 1).cloned()
            else {
                i += 1;
                continue;
            };
            // Find the body's opening brace; a `;` first means no body
            // (trait method declaration).
            let mut j = i + 2;
            let mut body_open = None;
            while j < toks.len() {
                match &toks[j].tok {
                    Tok::Punct('{') => {
                        body_open = Some(j);
                        break;
                    }
                    Tok::Punct(';') => break,
                    _ => j += 1,
                }
            }
            let Some(open) = body_open else {
                i = j + 1;
                continue;
            };
            // Matching close.
            let mut depth = 0usize;
            let mut k = open;
            while k < toks.len() {
                match toks[k].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let close = k.min(toks.len().saturating_sub(1));
            out.push(scan_body(file, &name, line, &toks[open..=close]));
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

const SYNC_HELPERS: [(&str, LockOp); 3] = [
    ("sync::lock", LockOp::Mutex),
    ("sync::read", LockOp::Read),
    ("sync::write", LockOp::Write),
];

fn method_op(name: &str) -> Option<LockOp> {
    match name {
        "lock" | "try_lock" => Some(LockOp::Mutex),
        "read" | "try_read" => Some(LockOp::Read),
        "write" | "try_write" => Some(LockOp::Write),
        _ => None,
    }
}

/// Normalize a lock path expression (`& self . shared . queue`) into a
/// stable identity: identifier segments joined by `.`, with a leading
/// `self.` stripped. Returns `None` for expressions with no identifier
/// (nothing to name) or a bare `self`.
fn lock_id(toks: &[Token]) -> Option<String> {
    let mut parts = Vec::new();
    for t in toks {
        match &t.tok {
            Tok::Ident(s) => parts.push(s.clone()),
            Tok::Punct('.') | Tok::Punct('&') | Tok::Punct('*') => {}
            // A call or index inside the expression (`self.views[i].lock`)
            // — keep what we have; identity stays the prefix path.
            _ => break,
        }
    }
    if parts.first().map(String::as_str) == Some("self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        return None;
    }
    Some(parts.join("."))
}

struct Guard {
    depth: usize,
    binding: Option<String>,
    held: HeldLock,
}

/// Look backwards from an acquisition for `let [mut] name =` /
/// `let (name, _) =` / `name =` and return the bound guard name.
fn binding_before(toks: &[Token], at: usize) -> Option<String> {
    // The token just before the acquisition must be `=`.
    let mut j = at.checked_sub(1)?;
    if toks[j].tok != Tok::Punct('=') {
        return None;
    }
    // Scan back over the pattern (at most a few tokens) looking for `let`;
    // collect identifiers seen on the way.
    let mut idents = Vec::new();
    let mut steps = 0;
    loop {
        j = match j.checked_sub(1) {
            Some(v) => v,
            None => break,
        };
        steps += 1;
        if steps > 8 {
            break;
        }
        match &toks[j].tok {
            Tok::Ident(s) if s == "let" => {
                // First ident after skipping `mut`.
                let name = idents
                    .iter()
                    .rev()
                    .find(|s: &&String| s.as_str() != "mut" && s.as_str() != "_")
                    .cloned();
                return name;
            }
            Tok::Ident(s) => idents.push(s.clone()),
            Tok::Punct('(') | Tok::Punct(')') | Tok::Punct(',') | Tok::Punct('_') => {}
            // Statement boundary without `let`: plain reassignment.
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => {
                return idents.last().cloned();
            }
            _ => break,
        }
    }
    idents.last().cloned()
}

/// Is the expression ending at `close` (a `)` index) chained into a
/// further method call? `let p = sync::read(&r).views.get(n)` binds the
/// chain *result*, not the guard — the guard is a statement temporary.
/// `.unwrap()` / `.expect(…)` chains still yield the guard itself.
fn is_chained(toks: &[Token], close: usize) -> bool {
    let mut k = close + 1;
    loop {
        let dot = matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Punct('.')));
        if !dot {
            return false;
        }
        match toks.get(k + 1).map(|t| &t.tok) {
            Some(Tok::Ident(m)) if m == "unwrap" || m == "expect" => {
                if matches!(toks.get(k + 2).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    k = match_paren(toks, k + 2) + 1;
                    continue;
                }
                return true;
            }
            _ => return true,
        }
    }
}

/// Split the tokens of a parenthesized argument list (`toks[0]` is the
/// opening paren, last token its close) into per-argument slices on
/// top-level commas.
fn split_args(toks: &[Token]) -> Vec<&[Token]> {
    let inner = &toks[1..toks.len().saturating_sub(1)];
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (k, t) in inner.iter().enumerate() {
        match t.tok {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth = depth.saturating_sub(1),
            Tok::Punct(',') if depth == 0 => {
                out.push(&inner[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    if start < inner.len() {
        out.push(&inner[start..]);
    }
    out
}

/// Find the matching `)` for the `(` at `open` and return its index.
fn match_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < toks.len() {
        match toks[k].tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
        k += 1;
    }
    toks.len() - 1
}

fn scan_body(file: &str, name: &str, line: u32, toks: &[Token]) -> FnScan {
    let mut scan = FnScan {
        file: file.to_string(),
        name: name.to_string(),
        line,
        ..FnScan::default()
    };
    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let tline = toks[i].line;
        match &toks[i].tok {
            Tok::Punct('{') => {
                depth += 1;
                i += 1;
            }
            Tok::Punct('}') => {
                guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                i += 1;
            }
            Tok::Ident(id) => {
                let next_is_paren =
                    matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                let next_is_bang = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!')));
                if next_is_bang {
                    // Macro invocation — skip the name; its arguments are
                    // scanned as ordinary tokens.
                    i += 2;
                    continue;
                }
                if !next_is_paren {
                    i += 1;
                    continue;
                }
                // `drop(g)` releases a bound guard early.
                if id == "drop" || id.ends_with("::drop") {
                    if let Some(Token {
                        tok: Tok::Ident(g), ..
                    }) = toks.get(i + 2)
                    {
                        guards.retain(|k| k.binding.as_deref() != Some(g.as_str()));
                    }
                    i = match_paren(toks, i + 1) + 1;
                    continue;
                }
                // sync:: helper acquisitions.
                if let Some((_, op)) = SYNC_HELPERS.iter().find(|(h, _)| id.ends_with(h)) {
                    let close = match_paren(toks, i + 1);
                    if let Some(lock) = lock_id(&toks[i + 2..close]) {
                        let chained = is_chained(toks, close);
                        record_acquire(
                            &mut scan,
                            &mut guards,
                            depth,
                            toks,
                            i,
                            *op,
                            lock,
                            tline,
                            chained,
                        );
                    }
                    i += 2; // keep scanning inside the argument list
                    continue;
                }
                // sync::wait / sync::wait_timeout: releases its own guard,
                // but any *other* held guard is held across the wait.
                if id.ends_with("sync::wait") || id.ends_with("sync::wait_timeout") {
                    let close = match_paren(toks, i + 1);
                    // Signature: `wait(&cv, &mutex, guard)` /
                    // `wait_timeout(&cv, &mutex, guard, dur)`. The released
                    // guard is the third argument; the second names the
                    // mutex it belongs to. A held guard is excluded if its
                    // binding matches the guard argument's last ident, or
                    // its lock matches the mutex argument's lock path.
                    let args = split_args(&toks[i + 1..=close]);
                    let waited: Option<String> = args.get(2).and_then(|arg| {
                        arg.iter().rev().find_map(|t| match &t.tok {
                            Tok::Ident(s) => Some(s.clone()),
                            _ => None,
                        })
                    });
                    let waited_lock: Option<String> = args.get(1).and_then(|arg| lock_id(arg));
                    let held_other: Vec<HeldLock> = guards
                        .iter()
                        .filter(|g| {
                            g.binding.as_deref() != waited.as_deref()
                                && Some(g.held.lock.as_str()) != waited_lock.as_deref()
                        })
                        .map(|g| g.held.clone())
                        .collect();
                    if !held_other.is_empty() {
                        scan.waits.push(WaitSite {
                            line: tline,
                            held_other,
                        });
                    }
                    i = close + 1;
                    continue;
                }
                // Raw `.lock()` / `.read()` / `.write()` with no arguments.
                if let Some(op) = method_op(id) {
                    let prev_is_dot = i > 0 && matches!(toks[i - 1].tok, Tok::Punct('.'));
                    let empty_args =
                        matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Punct(')')));
                    if prev_is_dot && empty_args {
                        // Walk the receiver chain backwards: `. ident`*.
                        let mut j = i - 1;
                        let mut chain: Vec<Token> = Vec::new();
                        while let Some(prev) = j.checked_sub(1) {
                            if let Tok::Ident(_) = toks[prev].tok {
                                chain.push(toks[prev].clone());
                                let Some(pp) = prev.checked_sub(1) else {
                                    break;
                                };
                                if matches!(toks[pp].tok, Tok::Punct('.')) {
                                    j = pp;
                                    continue;
                                }
                            }
                            break;
                        }
                        chain.reverse();
                        if let Some(lock) = lock_id(&chain) {
                            // `binding_before` looks back from the start of
                            // the receiver chain, not the method name.
                            let expr_start = i - 1 - chain.len() * 2 + 1;
                            let chained = is_chained(toks, i + 2);
                            record_acquire(
                                &mut scan,
                                &mut guards,
                                depth,
                                toks,
                                expr_start,
                                op,
                                lock,
                                tline,
                                chained,
                            );
                        }
                        i += 3;
                        continue;
                    }
                }
                // Hazard boundaries.
                let boundary = if id.ends_with("catch_unwind") {
                    Some((BoundaryKind::CatchUnwind, id.clone()))
                } else if (id == "sync" || id == "sync_all" || id == "sync_data")
                    && i > 0
                    && matches!(toks[i - 1].tok, Tok::Punct('.'))
                {
                    scan.direct_fsync = true;
                    Some((BoundaryKind::Fsync, format!(".{id}()")))
                } else if id.ends_with("run_on_pool")
                    || id.ends_with("thread::scope")
                    || (id == "scope" && i > 0 && matches!(toks[i - 1].tok, Tok::Punct('.')))
                {
                    Some((BoundaryKind::PoolScope, id.clone()))
                } else {
                    None
                };
                if let Some((kind, token)) = boundary {
                    if !guards.is_empty() {
                        scan.boundaries.push(Boundary {
                            kind,
                            token,
                            line: tline,
                            held: guards.iter().map(|g| g.held.clone()).collect(),
                        });
                    }
                    i += 1;
                    continue;
                }
                // Ordinary call: record callee + receiver chain + held set
                // for the interprocedural pass.
                let callee = id.rsplit("::").next().unwrap_or(id).to_string();
                let mut receiver = Vec::new();
                if i > 0 && matches!(toks[i - 1].tok, Tok::Punct('.')) {
                    let mut j = i - 1;
                    while let Some(prev) = j.checked_sub(1) {
                        if let Tok::Ident(r) = &toks[prev].tok {
                            receiver.push(r.clone());
                            let Some(pp) = prev.checked_sub(1) else {
                                break;
                            };
                            if matches!(toks[pp].tok, Tok::Punct('.')) {
                                j = pp;
                                continue;
                            }
                        }
                        break;
                    }
                    receiver.reverse();
                }
                scan.calls.push(CallSite {
                    callee,
                    receiver,
                    line: tline,
                    held: guards.iter().map(|g| g.held.clone()).collect(),
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
    scan
}

#[allow(clippy::too_many_arguments)]
fn record_acquire(
    scan: &mut FnScan,
    guards: &mut Vec<Guard>,
    depth: usize,
    toks: &[Token],
    expr_start: usize,
    op: LockOp,
    lock: String,
    line: u32,
    chained: bool,
) {
    let binding = if chained {
        None
    } else {
        binding_before(toks, expr_start)
    };
    let acq = Acquire {
        op,
        lock: lock.clone(),
        line,
        bound: binding.is_some(),
    };
    for g in guards.iter() {
        scan.acquired_while_held.push((g.held.clone(), acq.clone()));
    }
    scan.acquires.push(acq);
    if let Some(b) = binding {
        // A rebinding (`q = sync::wait(...)`, or shadowing `let`) replaces
        // the previous guard of the same name.
        guards.retain(|g| g.binding.as_deref() != Some(b.as_str()));
        guards.push(Guard {
            depth,
            binding: Some(b),
            held: HeldLock { lock, op, line },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cleaning_blanks_comments_and_strings() {
        let src =
            "let a = \"{ not a brace }\"; // { nor this }\n/* { nested /* { */ } */ let b = '{';\n";
        let c = clean_source(src);
        assert_eq!(c.lines().count(), src.lines().count());
        assert!(!c.contains("not a brace"));
        assert!(!c.contains("nor this"));
        assert!(!c.contains("nested"));
        // The char literal '{' is blanked.
        assert_eq!(c.matches('{').count(), 0);
        assert_eq!(c.matches('}').count(), 0);
    }

    #[test]
    fn test_items_are_blanked() {
        let src = r#"
fn real(&self) { let _g = sync::lock(&self.shared.queue); }
#[cfg(test)]
mod tests {
    fn fake(&self) { let _g = sync::lock(&self.shared.bogus); }
}
"#;
        let scans = scan_file("x.rs", src);
        assert_eq!(scans.len(), 1);
        assert_eq!(scans[0].name, "real");
        assert_eq!(scans[0].acquires[0].lock, "shared.queue");
    }

    #[test]
    fn bound_guards_create_held_pairs_and_scopes_release() {
        let src = r#"
fn f(&self) {
    let _gate = sync::lock(&self.shared.gate);
    {
        let q = sync::lock(&self.shared.queue);
        q.push(1);
    }
    let mut m = sync::lock(&self.shared.metrics);
    m.bump();
}
"#;
        let scans = scan_file("x.rs", src);
        let s = &scans[0];
        let pairs: Vec<(String, String)> = s
            .acquired_while_held
            .iter()
            .map(|(h, a)| (h.lock.clone(), a.lock.clone()))
            .collect();
        // gate→queue and gate→metrics, but NOT queue→metrics (queue's
        // scope closed first).
        assert!(pairs.contains(&("shared.gate".into(), "shared.queue".into())));
        assert!(pairs.contains(&("shared.gate".into(), "shared.metrics".into())));
        assert!(!pairs.contains(&("shared.queue".into(), "shared.metrics".into())));
    }

    #[test]
    fn drop_releases_a_guard_early() {
        let src = r#"
fn f(&self) {
    let state = sync::read(&self.shared.state);
    drop(state);
    let mut w = sync::write(&self.shared.state);
}
"#;
        let s = &scan_file("x.rs", src)[0];
        assert!(
            s.acquired_while_held.is_empty(),
            "dropped guard must not be held: {:?}",
            s.acquired_while_held
        );
    }

    #[test]
    fn temporaries_acquire_but_do_not_hold() {
        let src = r#"
fn f(&self) {
    sync::lock(&self.shared.queue).pending_rows();
    let _m = sync::lock(&self.shared.metrics);
}
"#;
        let s = &scan_file("x.rs", src)[0];
        assert_eq!(s.acquires.len(), 2);
        assert!(!s.acquires[0].bound);
        assert!(s.acquired_while_held.is_empty());
    }

    #[test]
    fn raw_lock_calls_are_seen() {
        let src = r#"
fn f(&self) {
    let g = self.state.lock();
    let h = self.index.read();
}
"#;
        let s = &scan_file("x.rs", src)[0];
        assert_eq!(s.acquires.len(), 2);
        assert_eq!(s.acquires[0].lock, "state");
        assert_eq!(s.acquires[0].op, LockOp::Mutex);
        assert_eq!(s.acquires[1].lock, "index");
        assert_eq!(s.acquires[1].op, LockOp::Read);
        assert_eq!(s.acquired_while_held.len(), 1);
    }

    #[test]
    fn wait_records_other_held_guards_only() {
        let src = r#"
fn f(&self) {
    let mut q = sync::lock(&self.shared.queue);
    q = sync::wait(&self.shared.space, &self.shared.queue, q);
}
fn g(&self) {
    let _m = sync::lock(&self.shared.metrics);
    let mut q = sync::lock(&self.shared.queue);
    q = sync::wait(&self.shared.space, &self.shared.queue, q);
}
fn h(&self) {
    let mut guard = sync::lock(&self.shared.queue);
    let (g, _) = sync::wait_timeout(&self.shared.space, &self.shared.queue, guard, dur);
    guard = g;
}
"#;
        let scans = scan_file("x.rs", src);
        assert!(scans[0].waits.is_empty(), "{:?}", scans[0].waits);
        assert_eq!(scans[1].waits.len(), 1);
        assert_eq!(scans[1].waits[0].held_other[0].lock, "shared.metrics");
        // wait_timeout places the guard at the same index as wait.
        assert!(scans[2].waits.is_empty(), "{:?}", scans[2].waits);
    }

    #[test]
    fn boundaries_and_calls_capture_held_sets() {
        let src = r#"
fn f(&self) {
    let _gate = sync::lock(&self.shared.gate);
    let out = run_on_pool(items, n, worker);
    let r = std::panic::catch_unwind(op);
    self.helper(1);
}
"#;
        let s = &scan_file("x.rs", src)[0];
        let kinds: Vec<BoundaryKind> = s.boundaries.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BoundaryKind::PoolScope));
        assert!(kinds.contains(&BoundaryKind::CatchUnwind));
        assert!(s
            .calls
            .iter()
            .any(|c| c.callee == "helper" && c.held.len() == 1));
    }

    #[test]
    fn fsync_methods_mark_direct_fsync() {
        let src = r#"
fn sync(&self, context: &str) -> Result<(), WalError> {
    let w = sync::lock(&self.wal);
    w.file.sync_all()
}
"#;
        let s = &scan_file("x.rs", src)[0];
        assert!(s.direct_fsync);
        assert!(s
            .boundaries
            .iter()
            .any(|b| b.kind == BoundaryKind::Fsync && b.held[0].lock == "wal"));
    }
}
