//! # gpivot-concurrency — lock-order / guard-discipline lint
//!
//! PR 5 made *plans* statically checkable (`gpivot-analyze`); this crate
//! does the same for the serve tier's *concurrency machinery*. A small
//! dependency-free source walker ([`walker`]) scans workspace source,
//! recovers every lock acquisition (the `sync::lock`/`read`/`write`
//! helpers that are the only acquisition path in `gpivot-serve`, plus raw
//! `.lock()`-style leaf mutexes elsewhere), and builds the
//! lock-acquisition graph ([`graph`]): an edge A → B for every site that
//! acquires B while holding A, with one-level name-based call propagation
//! within a crate.
//!
//! Findings carry stable `GP03x` codes in the same namespace as
//! `gpivot-analyze`'s GP0xx plan diagnostics (codes are never renumbered):
//!
//! | code  | severity     | meaning |
//! |-------|--------------|---------|
//! | GP030 | Error/Warn   | cycle in the acquisition order (Error when every edge is a direct acquisition; Warn when the cycle needs a heuristic via-call edge), or a mutex reacquired while already held |
//! | GP031 | Error/Warn   | RwLock read guard upgraded to write while held (Error: guaranteed self-deadlock) / re-entrant read while held (Warn: deadlocks when a writer is waiting) |
//! | GP032 | Warn/Info    | guard held across `catch_unwind` (Warn: a panic poisons every held lock) or across an fsync (Info: deliberate WAL-ordering sites, guard hold time becomes disk latency) |
//! | GP033 | Warn/Info    | guard held across a pool `scope` boundary (`run_on_pool`, `thread::scope`) — Warn for exclusive guards, Info for shared read guards |
//! | GP034 | Warn         | condvar wait while holding guards other than the one the wait releases |
//! | GP035 | Info         | acquisition-order summary: the derived topological order of the whole graph (always emitted) |
//!
//! Deliberate violations are downgraded to Info by a
//! `concurrency-lint: allow(GPxxx)` comment on the finding's line or the
//! line above — the finding is still reported, marked `[allowed]`, so the
//! artifact records every crossing.
//!
//! The `concurrency-lint` binary in `gpivot-bench` renders a
//! [`LintReport`] to `CONCURRENCY_LINT.json` and exits non-zero on any
//! Error-severity finding (CI job `concurrency-lint`).

pub mod graph;
pub mod walker;

use gpivot_analyze::json_escape;
pub use gpivot_analyze::Severity;
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// Stable concurrency-diagnostic codes (GP03x range; the GP0xx plan-lint
/// codes from `gpivot-analyze` end at GP024).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConCode {
    /// Cycle in the lock-acquisition order, or mutex reacquired while held.
    Gp030LockOrderCycle,
    /// RwLock read→write upgrade (or re-entrant read) while the guard is held.
    Gp031ReadWriteUpgrade,
    /// Guard held across `catch_unwind` or an fsync.
    Gp032GuardAcrossUnwindOrFsync,
    /// Guard held across a pool `scope` boundary.
    Gp033GuardAcrossPoolScope,
    /// Condvar wait while holding other guards.
    Gp034WaitWhileHoldingOther,
    /// Acquisition-order summary (always Info).
    Gp035AcquisitionOrder,
}

impl ConCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ConCode::Gp030LockOrderCycle => "GP030",
            ConCode::Gp031ReadWriteUpgrade => "GP031",
            ConCode::Gp032GuardAcrossUnwindOrFsync => "GP032",
            ConCode::Gp033GuardAcrossPoolScope => "GP033",
            ConCode::Gp034WaitWhileHoldingOther => "GP034",
            ConCode::Gp035AcquisitionOrder => "GP035",
        }
    }
}

impl fmt::Display for ConCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    pub code: ConCode,
    pub severity: Severity,
    /// File label as passed to [`lint_sources`] (repo-relative in the CLI);
    /// `"(workspace)"` for whole-graph findings.
    pub file: String,
    /// 1-based; 0 for whole-graph findings.
    pub line: u32,
    pub function: String,
    pub locks: Vec<String>,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}:{} ({}): {}",
            self.code, self.severity, self.file, self.line, self.function, self.message
        )
    }
}

/// The full lint result: the acquisition graph plus findings.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    pub files_scanned: usize,
    pub functions_scanned: usize,
    pub locks: Vec<String>,
    pub edges: Vec<graph::Edge>,
    pub findings: Vec<Finding>,
}

impl LintReport {
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Render the report as the `CONCURRENCY_LINT.json` document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"generated_by\": \"gpivot-bench concurrency-lint\",\n");
        s.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        s.push_str(&format!(
            "  \"functions_scanned\": {},\n",
            self.functions_scanned
        ));
        s.push_str("  \"locks\": [");
        for (i, l) in self.locks.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("\"{}\"", json_escape(l)));
        }
        s.push_str("],\n");
        s.push_str("  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"from\": \"{}\", \"to\": \"{}\", \"via\": {}, \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \"sites\": {}}}{}\n",
                json_escape(&e.from),
                json_escape(&e.to),
                match &e.via {
                    Some(v) => format!("\"{}\"", json_escape(v)),
                    None => "null".to_string(),
                },
                json_escape(&e.file),
                e.line,
                json_escape(&e.function),
                e.sites,
                if i + 1 == self.edges.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"counts\": {{\"info\": {}, \"warn\": {}, \"error\": {}}},\n",
            self.count(Severity::Info),
            self.count(Severity::Warn),
            self.count(Severity::Error)
        ));
        s.push_str("  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            let locks: Vec<String> = f
                .locks
                .iter()
                .map(|l| format!("\"{}\"", json_escape(l)))
                .collect();
            s.push_str(&format!(
                "    {{\"code\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"function\": \"{}\", \"locks\": [{}], \"message\": \"{}\"}}{}\n",
                f.code,
                f.severity,
                json_escape(&f.file),
                f.line,
                json_escape(&f.function),
                locks.join(", "),
                json_escape(&f.message),
                if i + 1 == self.findings.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}

/// Severity ordering for sorting findings (errors first).
fn sev_rank(s: Severity) -> u8 {
    match s {
        Severity::Error => 0,
        Severity::Warn => 1,
        Severity::Info => 2,
    }
}

/// Lint a set of in-memory sources. `files` is `(label, content)`; labels
/// should be repo-relative paths (they appear in findings and drive
/// per-crate call resolution).
pub fn lint_sources(files: &[(String, String)]) -> LintReport {
    let mut scans = Vec::new();
    for (label, content) in files {
        scans.extend(walker::scan_file(label, content));
    }
    let resolver = graph::summaries(&scans);
    let edges = graph::build_edges(&scans, &resolver);
    let locks: BTreeSet<String> = scans
        .iter()
        .flat_map(|s| s.acquires.iter().map(|a| a.lock.clone()))
        .collect();

    let mut findings = Vec::new();

    // GP030/GP031: same-lock reacquisition while held.
    for r in graph::reacquisitions(&scans) {
        use walker::LockOp::*;
        let (code, sev, msg) = match (r.held_op, r.acq_op) {
            (Mutex, Mutex) => (
                ConCode::Gp030LockOrderCycle,
                Severity::Error,
                format!(
                    "mutex `{}` reacquired while its guard is still held — guaranteed self-deadlock",
                    r.lock
                ),
            ),
            (Read, Write) => (
                ConCode::Gp031ReadWriteUpgrade,
                Severity::Error,
                format!(
                    "read guard on `{}` upgraded to write while held — the writer waits for the reader on the same thread (self-deadlock); drop the read guard first",
                    r.lock
                ),
            ),
            (Read, Read) => (
                ConCode::Gp031ReadWriteUpgrade,
                Severity::Warn,
                format!(
                    "re-entrant read of `{}` while a read guard is held — deadlocks whenever a writer is queued between the two acquisitions",
                    r.lock
                ),
            ),
            (Write, _) => (
                ConCode::Gp031ReadWriteUpgrade,
                Severity::Error,
                format!(
                    "rwlock `{}` reacquired while its write guard is held — self-deadlock",
                    r.lock
                ),
            ),
            _ => (
                ConCode::Gp030LockOrderCycle,
                Severity::Warn,
                format!("lock `{}` reacquired while held (mixed primitive ops)", r.lock),
            ),
        };
        findings.push(Finding {
            code,
            severity: sev,
            file: r.file,
            line: r.line,
            function: r.function,
            locks: vec![r.lock],
            message: msg,
        });
    }

    // GP030: cycles. Direct-edge cycles are Errors; cycles that need a
    // heuristic via-call edge are Warns.
    let direct_edges: Vec<graph::Edge> =
        edges.iter().filter(|e| e.via.is_none()).cloned().collect();
    let direct_cycles = graph::cycles(&locks, &direct_edges);
    let all_cycles = graph::cycles(&locks, &edges);
    let describe = |cycle: &[String], pool: &[graph::Edge]| -> String {
        let set: BTreeSet<&str> = cycle.iter().map(String::as_str).collect();
        let mut sites = Vec::new();
        for e in pool {
            if set.contains(e.from.as_str()) && set.contains(e.to.as_str()) {
                sites.push(format!("{} -> {} at {}:{}", e.from, e.to, e.file, e.line));
            }
        }
        format!(
            "lock-order cycle among {{{}}}: {}",
            cycle.join(", "),
            sites.join("; ")
        )
    };
    for c in &direct_cycles {
        findings.push(Finding {
            code: ConCode::Gp030LockOrderCycle,
            severity: Severity::Error,
            file: "(workspace)".to_string(),
            line: 0,
            function: "(graph)".to_string(),
            locks: c.clone(),
            message: describe(c, &direct_edges),
        });
    }
    for c in &all_cycles {
        if direct_cycles.iter().any(|d| d == c) {
            continue;
        }
        findings.push(Finding {
            code: ConCode::Gp030LockOrderCycle,
            severity: Severity::Warn,
            file: "(workspace)".to_string(),
            line: 0,
            function: "(graph)".to_string(),
            locks: c.clone(),
            message: format!(
                "{} (cycle requires a name-resolved via-call edge; verify the call path)",
                describe(c, &edges)
            ),
        });
    }

    // GP032: guards across catch_unwind (Warn) and fsync (Info, incl.
    // interprocedural).
    for (s, b) in graph::boundaries_of(&scans, walker::BoundaryKind::CatchUnwind) {
        let held: Vec<String> = b.held.iter().map(|h| h.lock.clone()).collect();
        findings.push(Finding {
            code: ConCode::Gp032GuardAcrossUnwindOrFsync,
            severity: Severity::Warn,
            file: s.file.clone(),
            line: b.line,
            function: s.name.clone(),
            locks: held.clone(),
            message: format!(
                "guard(s) {{{}}} held across `{}` — a panic inside poisons every held lock",
                held.join(", "),
                b.token
            ),
        });
    }
    for (s, b) in graph::boundaries_of(&scans, walker::BoundaryKind::Fsync) {
        let held: Vec<String> = b.held.iter().map(|h| h.lock.clone()).collect();
        findings.push(Finding {
            code: ConCode::Gp032GuardAcrossUnwindOrFsync,
            severity: Severity::Info,
            file: s.file.clone(),
            line: b.line,
            function: s.name.clone(),
            locks: held.clone(),
            message: format!(
                "guard(s) {{{}}} held across fsync `{}` — hold time includes disk latency (deliberate at WAL-ordering sites)",
                held.join(", "),
                b.token
            ),
        });
    }
    for f in graph::fsyncs_via_calls(&scans, &resolver) {
        findings.push(Finding {
            code: ConCode::Gp032GuardAcrossUnwindOrFsync,
            severity: Severity::Info,
            file: f.file.clone(),
            line: f.line,
            function: f.function.clone(),
            locks: f.held.clone(),
            message: format!(
                "guard(s) {{{}}} held across call to `{}`, which may fsync — hold time includes disk latency (deliberate at WAL-ordering sites)",
                f.held.join(", "),
                f.callee
            ),
        });
    }

    // GP033: guards across pool scopes.
    for (s, b) in graph::boundaries_of(&scans, walker::BoundaryKind::PoolScope) {
        let held: Vec<String> = b.held.iter().map(|h| h.lock.clone()).collect();
        let exclusive = graph::holds_exclusive(b);
        findings.push(Finding {
            code: ConCode::Gp033GuardAcrossPoolScope,
            severity: if exclusive {
                Severity::Warn
            } else {
                Severity::Info
            },
            file: s.file.clone(),
            line: b.line,
            function: s.name.clone(),
            locks: held.clone(),
            message: format!(
                "{} guard(s) {{{}}} held across pool boundary `{}` — any worker acquiring the same lock deadlocks the pool",
                if exclusive { "exclusive" } else { "shared" },
                held.join(", "),
                b.token
            ),
        });
    }

    // GP034: condvar wait while holding other guards.
    for s in &scans {
        for w in &s.waits {
            let held: Vec<String> = w.held_other.iter().map(|h| h.lock.clone()).collect();
            findings.push(Finding {
                code: ConCode::Gp034WaitWhileHoldingOther,
                severity: Severity::Warn,
                file: s.file.clone(),
                line: w.line,
                function: s.name.clone(),
                locks: held.clone(),
                message: format!(
                    "condvar wait releases only its own mutex; guard(s) {{{}}} stay held for the whole wait",
                    held.join(", ")
                ),
            });
        }
    }

    // GP035: the acquisition-order summary — always emitted, proving the
    // lint saw the real graph.
    let order_msg = if locks.is_empty() {
        "no lock acquisitions found".to_string()
    } else {
        match graph::topo_order(&locks, &edges) {
            Some(order) => format!(
                "acquisition graph: {} locks, {} edges; derived order: {}",
                locks.len(),
                edges.len(),
                order.join(" < ")
            ),
            None => format!(
                "acquisition graph: {} locks, {} edges; graph is cyclic — see GP030",
                locks.len(),
                edges.len()
            ),
        }
    };
    findings.push(Finding {
        code: ConCode::Gp035AcquisitionOrder,
        severity: Severity::Info,
        file: "(workspace)".to_string(),
        line: 0,
        function: "(graph)".to_string(),
        locks: locks.iter().cloned().collect(),
        message: order_msg,
    });

    // `concurrency-lint: allow(GPxxx)` downgrades a deliberate crossing to
    // Info (still reported, marked [allowed]).
    for f in findings.iter_mut() {
        if f.line == 0 || f.severity == Severity::Info {
            continue;
        }
        let Some((_, content)) = files.iter().find(|(l, _)| *l == f.file) else {
            continue;
        };
        let needle = format!("concurrency-lint: allow({})", f.code);
        let line = f.line as usize;
        let allowed = content
            .lines()
            .skip(line.saturating_sub(2))
            .take(2)
            .any(|l| l.contains(&needle));
        if allowed {
            f.severity = Severity::Info;
            f.message.push_str(" [allowed]");
        }
    }

    findings.sort_by(|a, b| {
        (sev_rank(a.severity), a.code, a.file.clone(), a.line).cmp(&(
            sev_rank(b.severity),
            b.code,
            b.file.clone(),
            b.line,
        ))
    });

    LintReport {
        files_scanned: files.len(),
        functions_scanned: scans.len(),
        locks: locks.into_iter().collect(),
        edges,
        findings,
    }
}

/// Collect `crates/*/src/**/*.rs` under `root` (the workspace checkout)
/// and lint it. `crates/serve/src/sync.rs` is excluded: its helper bodies
/// acquire their *parameters*, which would register meaningless `m`/`l`
/// lock nodes.
pub fn lint_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            collect_rs(&src, &mut files)?;
        }
    }
    files.sort();
    let mut sources = Vec::new();
    for f in files {
        let label = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        if label.ends_with("serve/src/sync.rs") {
            continue;
        }
        let content = std::fs::read_to_string(&f)?;
        sources.push((label, content));
    }
    Ok(lint_sources(&sources))
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for e in std::fs::read_dir(dir)? {
        let p = e?.path();
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().map(|x| x == "rs").unwrap_or(false) {
            out.push(p);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(src: &str) -> LintReport {
        lint_sources(&[("crates/fixture/src/lib.rs".to_string(), src.to_string())])
    }

    /// The acceptance fixture: an injected AB–BA ordering must produce a
    /// GP030 Error.
    #[test]
    fn injected_cycle_is_a_gp030_error() {
        let report = lint_one(
            r#"
fn forward(&self) {
    let _a = sync::lock(&self.shared.alpha);
    let _b = sync::lock(&self.shared.beta);
}
fn backward(&self) {
    let _b = sync::lock(&self.shared.beta);
    let _a = sync::lock(&self.shared.alpha);
}
"#,
        );
        let cycle = report
            .findings
            .iter()
            .find(|f| f.code == ConCode::Gp030LockOrderCycle)
            .expect("cycle finding");
        assert_eq!(cycle.severity, Severity::Error);
        assert!(cycle.locks.contains(&"shared.alpha".to_string()));
        assert!(cycle.locks.contains(&"shared.beta".to_string()));
        assert!(report.errors() > 0);
    }

    #[test]
    fn consistent_order_is_clean_and_summarized() {
        let report = lint_one(
            r#"
fn one(&self) {
    let _g = sync::lock(&self.shared.gate);
    let _s = sync::write(&self.shared.state);
}
fn two(&self) {
    let _s = sync::read(&self.shared.state);
    let _q = sync::lock(&self.shared.queue);
}
"#,
        );
        assert_eq!(report.errors(), 0, "{:#?}", report.findings);
        let summary = report
            .findings
            .iter()
            .find(|f| f.code == ConCode::Gp035AcquisitionOrder)
            .expect("summary finding");
        assert_eq!(summary.severity, Severity::Info);
        assert!(
            summary
                .message
                .contains("shared.gate < shared.state < shared.queue"),
            "{}",
            summary.message
        );
    }

    #[test]
    fn read_write_upgrade_is_gp031_error() {
        let report = lint_one(
            r#"
fn up(&self) {
    let state = sync::read(&self.shared.state);
    let again = sync::write(&self.shared.state);
}
"#,
        );
        let f = report
            .findings
            .iter()
            .find(|f| f.code == ConCode::Gp031ReadWriteUpgrade)
            .expect("upgrade finding");
        assert_eq!(f.severity, Severity::Error);
    }

    #[test]
    fn dropped_guard_defuses_the_upgrade() {
        let report = lint_one(
            r#"
fn up(&self) {
    let state = sync::read(&self.shared.state);
    drop(state);
    let again = sync::write(&self.shared.state);
}
"#,
        );
        assert!(
            !report
                .findings
                .iter()
                .any(|f| f.code == ConCode::Gp031ReadWriteUpgrade),
            "{:#?}",
            report.findings
        );
    }

    #[test]
    fn mutex_guard_across_pool_scope_is_warn() {
        let report = lint_one(
            r#"
fn refresh(&self) {
    let _gate = sync::lock(&self.shared.gate);
    let results = run_on_pool(items, workers, op);
}
"#,
        );
        let f = report
            .findings
            .iter()
            .find(|f| f.code == ConCode::Gp033GuardAcrossPoolScope)
            .expect("scope finding");
        assert_eq!(f.severity, Severity::Warn);
    }

    #[test]
    fn allow_comment_downgrades_to_info() {
        let report = lint_one(
            r#"
fn refresh(&self) {
    let _gate = sync::lock(&self.shared.gate);
    // deliberate: epoch serialization. concurrency-lint: allow(GP033)
    let results = run_on_pool(items, workers, op);
}
"#,
        );
        let f = report
            .findings
            .iter()
            .find(|f| f.code == ConCode::Gp033GuardAcrossPoolScope)
            .expect("scope finding");
        assert_eq!(f.severity, Severity::Info);
        assert!(f.message.ends_with("[allowed]"));
    }

    #[test]
    fn via_call_edges_close_cycles_at_warn_severity() {
        let report = lint_one(
            r#"
fn outer(&self) {
    let _a = sync::lock(&self.shared.alpha);
    self.helper();
}
fn helper(&self) {
    let _b = sync::lock(&self.shared.beta);
}
fn other(&self) {
    let _b = sync::lock(&self.shared.beta);
    let _a = sync::lock(&self.shared.alpha);
}
"#,
        );
        // alpha→beta only exists via the call into helper; beta→alpha is
        // direct. The cycle must be reported, but as Warn (heuristic edge).
        let f = report
            .findings
            .iter()
            .find(|f| f.code == ConCode::Gp030LockOrderCycle)
            .expect("cycle finding");
        assert_eq!(f.severity, Severity::Warn, "{:#?}", report.findings);
        assert_eq!(report.errors(), 0);
    }

    #[test]
    fn catch_unwind_with_guard_is_warn_and_json_renders() {
        let report = lint_one(
            r#"
fn risky(&self) {
    let _m = sync::lock(&self.shared.metrics);
    let r = std::panic::catch_unwind(op);
}
"#,
        );
        let f = report
            .findings
            .iter()
            .find(|f| f.code == ConCode::Gp032GuardAcrossUnwindOrFsync)
            .expect("unwind finding");
        assert_eq!(f.severity, Severity::Warn);
        let json = report.to_json();
        assert!(json.contains("\"GP032\""));
        assert!(json.contains("\"counts\""));
        assert!(json.contains("\"edges\""));
    }

    /// The real workspace graph must be cycle-free (zero Errors) and the
    /// lint must actually see it (≥ 1 Info finding, ≥ 1 edge).
    #[test]
    fn real_workspace_is_error_free_with_info_findings() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = lint_workspace(&root).expect("workspace scan");
        let errors: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "unexpected errors: {errors:#?}");
        assert!(report.count(Severity::Info) >= 1);
        assert!(!report.edges.is_empty(), "no acquisition edges found");
        // The serve tier's documented order must be visible in the graph.
        assert!(
            report
                .edges
                .iter()
                .any(|e| e.from == "shared.gate" && e.to == "shared.state"),
            "gate -> state edge missing: {:#?}",
            report.edges
        );
    }
}
