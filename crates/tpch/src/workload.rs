//! Delta-workload generators — the three change shapes of §7.2:
//!
//! * [`delete_fraction`] — delete x% of `lineitem` (Figures 33, 37, 40);
//! * [`insert_updates_only`] — inserts that only *update* existing view
//!   rows: new lineitems with a free pivoted line number for orders already
//!   in the view (Figure 34);
//! * [`insert_new_rows`] — inserts that only *insert* new view rows: first
//!   lineitems for orders that had none (Figure 35).
//!
//! All generators are deterministic in their seed and return a
//! [`SourceDeltas`] batch ready for `ViewManager::refresh`.

use crate::views::LINE_NUMBERS;
use gpivot_core::SourceDeltas;
use gpivot_storage::{Catalog, Row, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Delete `fraction` of the rows of `table` (sampled uniformly).
pub fn delete_fraction(catalog: &Catalog, table: &str, fraction: f64, seed: u64) -> SourceDeltas {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = catalog.table(table).expect("table exists");
    let n = ((t.len() as f64) * fraction).round() as usize;
    let mut indices: Vec<usize> = (0..t.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n);
    let rows: Vec<Row> = indices.into_iter().map(|i| t.rows()[i].clone()).collect();
    let mut d = SourceDeltas::new();
    d.delete_rows(table, rows);
    d
}

/// Insert `fraction × |lineitem|` new lineitems that each *update* an
/// existing view row: the target orders already have a line number 1
/// (so they are in views (1)–(3)) and receive a new line at a free pivoted
/// line number (2 or 3).
pub fn insert_updates_only(catalog: &Catalog, fraction: f64, seed: u64) -> SourceDeltas {
    let mut rng = StdRng::seed_from_u64(seed);
    let lineitem = catalog.table("lineitem").expect("lineitem exists");
    let n_parts = catalog.table("part").expect("part exists").len().max(1) as i64;
    let target = ((lineitem.len() as f64) * fraction).round() as usize;

    // Which line numbers does each order already use?
    let mut used: HashMap<i64, HashSet<i64>> = HashMap::new();
    for r in lineitem.iter() {
        used.entry(r[0].as_i64().expect("orderkey"))
            .or_default()
            .insert(r[1].as_i64().expect("linenumber"));
    }
    let mut candidates: Vec<(i64, i64)> = Vec::new();
    for (&ok, lines) in &used {
        for &ln in &LINE_NUMBERS[1..] {
            if !lines.contains(&ln) {
                candidates.push((ok, ln));
            }
        }
    }
    candidates.sort_unstable();
    candidates.shuffle(&mut rng);
    candidates.truncate(target);

    let rows: Vec<Row> = candidates
        .into_iter()
        .map(|(ok, ln)| {
            Row::new(vec![
                Value::Int(ok),
                Value::Int(ln),
                Value::Int(rng.gen_range(1..=n_parts)),
                Value::Int(rng.gen_range(1..=50)),
                Value::Float(rng.gen_range(1_000..100_000) as f64),
                Value::Date(rng.gen_range(8_000..10_000)),
            ])
        })
        .collect();
    let mut d = SourceDeltas::new();
    d.insert_rows("lineitem", rows);
    d
}

/// Insert `fraction × |lineitem|` new lineitems that each *create* a new
/// view row: line number 1 for orders that currently have no lineitems.
pub fn insert_new_rows(catalog: &Catalog, fraction: f64, seed: u64) -> SourceDeltas {
    let mut rng = StdRng::seed_from_u64(seed);
    let lineitem = catalog.table("lineitem").expect("lineitem exists");
    let orders = catalog.table("orders").expect("orders exists");
    let n_parts = catalog.table("part").expect("part exists").len().max(1) as i64;
    let target = ((lineitem.len() as f64) * fraction).round() as usize;

    let lined: HashSet<i64> = lineitem
        .iter()
        .map(|r| r[0].as_i64().expect("orderkey"))
        .collect();
    let mut empty_orders: Vec<i64> = orders
        .iter()
        .map(|r| r[0].as_i64().expect("orderkey"))
        .filter(|ok| !lined.contains(ok))
        .collect();
    empty_orders.sort_unstable();
    empty_orders.shuffle(&mut rng);
    assert!(
        empty_orders.len() >= target,
        "not enough empty orders ({}) for an insert-only workload of {target} rows; \
         raise `TpchConfig::empty_order_fraction`",
        empty_orders.len()
    );
    empty_orders.truncate(target);

    let rows: Vec<Row> = empty_orders
        .into_iter()
        .map(|ok| {
            Row::new(vec![
                Value::Int(ok),
                Value::Int(1),
                Value::Int(rng.gen_range(1..=n_parts)),
                Value::Int(rng.gen_range(1..=50)),
                Value::Float(rng.gen_range(1_000..100_000) as f64),
                Value::Date(rng.gen_range(8_000..10_000)),
            ])
        })
        .collect();
    let mut d = SourceDeltas::new();
    d.insert_rows("lineitem", rows);
    d
}

/// A mixed batch: `fraction/2` deletes plus `fraction/2` new-row inserts on
/// `lineitem` — the general case every strategy must handle in one refresh.
pub fn mixed_batch(catalog: &Catalog, fraction: f64, seed: u64) -> SourceDeltas {
    let mut d = delete_fraction(catalog, "lineitem", fraction / 2.0, seed);
    let ins = insert_new_rows(catalog, fraction / 2.0, seed.wrapping_add(1));
    if let Some(delta) = ins.delta("lineitem") {
        d.add_delta("lineitem", delta.clone());
    }
    d
}

/// Churn on the `orders` dimension side: re-date a fraction of orders
/// (in-place updates decomposed as delete+insert). The paper notes that
/// deltas on the non-pivoted side "need not pull up the GPIVOT" — this
/// workload exercises exactly that propagation path (the `A_post ⋈ ΔB`
/// join term).
pub fn order_churn(catalog: &Catalog, fraction: f64, seed: u64) -> SourceDeltas {
    let mut rng = StdRng::seed_from_u64(seed);
    let orders = catalog.table("orders").expect("orders exists");
    let n = ((orders.len() as f64) * fraction).round() as usize;
    let mut indices: Vec<usize> = (0..orders.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n);
    let mut d = SourceDeltas::new();
    for i in indices {
        let old = orders.rows()[i].clone();
        let mut new = old.to_vec();
        // Re-price and shift the year within the pivoted range.
        new[4] = Value::Float(rng.gen_range(1_000..500_000) as f64);
        d.delete_rows("orders", vec![old]);
        d.insert_rows("orders", vec![Row::new(new)]);
    }
    d
}

/// Churn on `customer`: move a fraction of customers to a new nation — the
/// grouping column of view (3), so group-pivot maintenance must migrate
/// their crosstab rows between keys.
pub fn customer_churn(catalog: &Catalog, fraction: f64, seed: u64) -> SourceDeltas {
    let mut rng = StdRng::seed_from_u64(seed);
    let customers = catalog.table("customer").expect("customer exists");
    let n = ((customers.len() as f64) * fraction).round() as usize;
    let mut indices: Vec<usize> = (0..customers.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(n);
    let mut d = SourceDeltas::new();
    for i in indices {
        let old = customers.rows()[i].clone();
        let mut new = old.to_vec();
        let old_nation = new[2].as_i64().expect("nationkey");
        new[2] = Value::Int((old_nation + 1 + rng.gen_range(0..23i64)) % 25);
        d.delete_rows("customer", vec![old]);
        d.insert_rows("customer", vec![Row::new(new)]);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use crate::views::{price_col, view1};
    use gpivot_exec::Executor;

    fn catalog() -> Catalog {
        generate(&TpchConfig {
            empty_order_fraction: 0.25,
            ..TpchConfig::scale(0.02)
        })
    }

    #[test]
    fn delete_fraction_sizes_and_determinism() {
        let c = catalog();
        let n = c.table("lineitem").unwrap().len();
        let d = delete_fraction(&c, "lineitem", 0.01, 7);
        let expected = ((n as f64) * 0.01).round() as u64;
        assert_eq!(d.total_changes(), expected);
        let d2 = delete_fraction(&c, "lineitem", 0.01, 7);
        assert_eq!(d.delta("lineitem"), d2.delta("lineitem"));
    }

    #[test]
    fn update_only_inserts_touch_existing_view_rows() {
        let c = catalog();
        let before = Executor::new().run(&view1(), &c).unwrap();
        let d = insert_updates_only(&c, 0.01, 7);
        assert!(d.total_changes() > 0);

        let mut post = c.clone();
        post.apply_delta("lineitem", d.delta("lineitem").unwrap())
            .unwrap();
        let after = Executor::new().run(&view1(), &post).unwrap();
        // Same keys — only cells changed.
        assert_eq!(before.len(), after.len());
        assert!(!before.bag_eq(&after));
    }

    #[test]
    fn new_row_inserts_grow_the_view() {
        let c = catalog();
        let before = Executor::new().run(&view1(), &c).unwrap();
        let d = insert_new_rows(&c, 0.01, 7);
        let n = d.total_changes() as usize;
        assert!(n > 0);

        let mut post = c.clone();
        post.apply_delta("lineitem", d.delta("lineitem").unwrap())
            .unwrap();
        let after = Executor::new().run(&view1(), &post).unwrap();
        assert_eq!(after.len(), before.len() + n);
    }

    #[test]
    fn mixed_batch_carries_both_signs() {
        let c = catalog();
        let d = mixed_batch(&c, 0.02, 9);
        let delta = d.delta("lineitem").unwrap();
        assert!(delta.iter().any(|(_, &w)| w > 0));
        assert!(delta.iter().any(|(_, &w)| w < 0));
    }

    #[test]
    fn order_churn_preserves_order_count() {
        let c = catalog();
        let d = order_churn(&c, 0.05, 9);
        let mut post = c.clone();
        post.apply_delta("orders", d.delta("orders").unwrap())
            .unwrap();
        assert_eq!(
            post.table("orders").unwrap().len(),
            c.table("orders").unwrap().len()
        );
    }

    #[test]
    fn customer_churn_changes_nations_only() {
        let c = catalog();
        let d = customer_churn(&c, 0.05, 9);
        let delta = d.delta("customer").unwrap();
        assert!(!delta.is_empty());
        // Every insert has a delete twin differing only in nationkey.
        for (row, &w) in delta.iter() {
            if w > 0 {
                let mut twin_found = false;
                for (other, &w2) in delta.iter() {
                    if w2 < 0
                        && other[0] == row[0]
                        && other[1] == row[1]
                        && other[2] != row[2]
                        && other[3] == row[3]
                        && other[4] == row[4]
                    {
                        twin_found = true;
                        break;
                    }
                }
                assert!(twin_found, "insert {row:?} has no churn twin");
            }
        }
    }

    #[test]
    fn churn_workloads_maintain_view3() {
        use crate::views::view3;
        use gpivot_core::ViewManager;
        let c = catalog();
        let mut vm = ViewManager::new(c.clone());
        vm.register_view("v3", view3()).unwrap();
        vm.refresh(&order_churn(&c, 0.02, 11)).unwrap();
        assert!(vm.verify_view("v3").unwrap());
        let c2 = vm.catalog().clone();
        vm.refresh(&customer_churn(&c2, 0.02, 12)).unwrap();
        assert!(vm.verify_view("v3").unwrap());
    }

    #[test]
    fn inserted_rows_land_in_pivoted_columns() {
        let c = catalog();
        let d = insert_updates_only(&c, 0.005, 3);
        let delta = d.delta("lineitem").unwrap();
        for (r, &w) in delta.iter() {
            assert_eq!(w, 1);
            let ln = r[1].as_i64().unwrap();
            assert!(LINE_NUMBERS.contains(&ln));
            assert!(ln != 1, "update-only workload must not create line 1");
        }
        let _ = price_col(1);
    }
}
