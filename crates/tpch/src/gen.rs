//! Deterministic TPC-H-shaped data generation.
//!
//! Cardinalities per unit of scale factor mirror TPC-H's ratios:
//! 1,500 customers, 15,000 orders, and 1–7 lineitems per order (~40,000
//! expected twice over — TPC-H averages ~4 lineitems/order). A configurable
//! fraction of orders is generated *without* lineitems so that the
//! insert-only workload of §7.2.1 (source inserts that create brand-new
//! view rows) has targets to hit.

use gpivot_storage::{value::days_from_date, Catalog, DataType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    /// TPC-H-style scale factor; 1.0 ≈ 1,500 customers / 15,000 orders.
    /// The paper uses SF 1.0 of real TPC-H (150k customers); our default of
    /// 1.0 here is a laptop-scale replica with identical ratios.
    pub scale_factor: f64,
    /// PRNG seed — the same seed always yields the same database.
    pub seed: u64,
    /// Maximum line number per order (TPC-H uses 7).
    pub max_lines_per_order: u32,
    /// Fraction of orders generated with no lineitems at all.
    pub empty_order_fraction: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 1.0,
            seed: 42,
            max_lines_per_order: 7,
            empty_order_fraction: 0.1,
        }
    }
}

impl TpchConfig {
    /// Config with a given scale factor.
    pub fn scale(scale_factor: f64) -> Self {
        TpchConfig {
            scale_factor,
            ..TpchConfig::default()
        }
    }

    /// Number of customers at this scale.
    pub fn customers(&self) -> i64 {
        ((1_500.0 * self.scale_factor).round() as i64).max(1)
    }

    /// Number of orders at this scale.
    pub fn orders(&self) -> i64 {
        self.customers() * 10
    }
}

/// The `customer` schema: key `c_custkey`.
pub fn customer_schema() -> Arc<Schema> {
    Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("c_custkey", DataType::Int),
                ("c_name", DataType::Str),
                ("c_nationkey", DataType::Int),
                ("c_acctbal", DataType::Float),
                ("c_mktsegment", DataType::Str),
            ],
            &["c_custkey"],
        )
        .expect("static schema"),
    )
}

/// The `orders` schema: key `o_orderkey`, FK `o_custkey`.
pub fn orders_schema() -> Arc<Schema> {
    Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("o_orderkey", DataType::Int),
                ("o_custkey", DataType::Int),
                ("o_orderdate", DataType::Date),
                ("o_year", DataType::Int),
                ("o_totalprice", DataType::Float),
            ],
            &["o_orderkey"],
        )
        .expect("static schema"),
    )
}

/// The `lineitem` schema: key `(l_orderkey, l_linenumber)`, FK `l_orderkey`.
pub fn lineitem_schema() -> Arc<Schema> {
    Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("l_orderkey", DataType::Int),
                ("l_linenumber", DataType::Int),
                ("l_partkey", DataType::Int),
                ("l_quantity", DataType::Int),
                ("l_extendedprice", DataType::Float),
                ("l_shipdate", DataType::Date),
            ],
            &["l_orderkey", "l_linenumber"],
        )
        .expect("static schema"),
    )
}

/// The `part` schema: key `p_partkey` (used by examples).
pub fn part_schema() -> Arc<Schema> {
    Arc::new(
        Schema::from_pairs_keyed(
            &[
                ("p_partkey", DataType::Int),
                ("p_name", DataType::Str),
                ("p_brand", DataType::Str),
                ("p_retailprice", DataType::Float),
            ],
            &["p_partkey"],
        )
        .expect("static schema"),
    )
}

const SEGMENTS: [&str; 5] = [
    "BUILDING",
    "AUTOMOBILE",
    "MACHINERY",
    "HOUSEHOLD",
    "FURNITURE",
];
const BRANDS: [&str; 5] = ["Brand#11", "Brand#22", "Brand#33", "Brand#44", "Brand#55"];
/// Order years span 1992–1998 like TPC-H.
pub const YEARS: [i32; 7] = [1992, 1993, 1994, 1995, 1996, 1997, 1998];

/// Generate a catalog with `customer`, `orders`, `lineitem` and `part`.
pub fn generate(config: &TpchConfig) -> Catalog {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut catalog = Catalog::new();

    // part
    let n_parts = (200.0 * config.scale_factor).round().max(1.0) as i64;
    let mut parts = Table::new(part_schema());
    for pk in 1..=n_parts {
        let brand = BRANDS[rng.gen_range(0..BRANDS.len())];
        parts
            .insert(gpivot_storage::Row::new(vec![
                Value::Int(pk),
                Value::str(format!("part#{pk}")),
                Value::str(brand),
                Value::Float(rng.gen_range(900..2_000) as f64),
            ]))
            .expect("unique partkey");
    }
    catalog.register("part", parts).expect("fresh catalog");

    // customer
    let n_cust = config.customers();
    let mut customers = Table::new(customer_schema());
    for ck in 1..=n_cust {
        customers
            .insert(gpivot_storage::Row::new(vec![
                Value::Int(ck),
                Value::str(format!("Customer#{ck:09}")),
                Value::Int(rng.gen_range(0..25)),
                Value::Float(rng.gen_range(-999..9_999) as f64),
                Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
            ]))
            .expect("unique custkey");
    }
    catalog
        .register("customer", customers)
        .expect("fresh catalog");

    // orders + lineitem
    let n_orders = config.orders();
    let mut orders = Table::new(orders_schema());
    let mut lineitems = Table::new(lineitem_schema());
    for ok in 1..=n_orders {
        let year = YEARS[rng.gen_range(0..YEARS.len())];
        let month = rng.gen_range(1..=12u32);
        let day = rng.gen_range(1..=28u32);
        let date = days_from_date(year, month, day);
        orders
            .insert(gpivot_storage::Row::new(vec![
                Value::Int(ok),
                Value::Int(rng.gen_range(1..=n_cust)),
                Value::Date(date),
                Value::Int(year as i64),
                Value::Float(rng.gen_range(1_000..500_000) as f64),
            ]))
            .expect("unique orderkey");

        if rng.gen_bool(config.empty_order_fraction) {
            continue; // insert-only workload target: an order with no lines
        }
        let n_lines = rng.gen_range(1..=config.max_lines_per_order);
        for ln in 1..=n_lines {
            lineitems
                .insert(gpivot_storage::Row::new(vec![
                    Value::Int(ok),
                    Value::Int(ln as i64),
                    Value::Int(rng.gen_range(1..=n_parts)),
                    Value::Int(rng.gen_range(1..=50)),
                    Value::Float(rng.gen_range(1_000..100_000) as f64),
                    Value::Date(date + rng.gen_range(1..=120)),
                ]))
                .expect("unique (orderkey, linenumber)");
        }
    }
    catalog.register("orders", orders).expect("fresh catalog");
    catalog
        .register("lineitem", lineitems)
        .expect("fresh catalog");
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = TpchConfig::scale(0.02);
        let a = generate(&cfg);
        let b = generate(&cfg);
        for t in ["customer", "orders", "lineitem", "part"] {
            assert!(
                a.table(t).unwrap().bag_eq(b.table(t).unwrap()),
                "{t} differs"
            );
        }
    }

    #[test]
    fn cardinality_ratios_hold() {
        let cfg = TpchConfig::scale(0.1);
        let c = generate(&cfg);
        let n_cust = c.table("customer").unwrap().len();
        let n_orders = c.table("orders").unwrap().len();
        let n_lines = c.table("lineitem").unwrap().len();
        assert_eq!(n_cust, 150);
        assert_eq!(n_orders, 1_500);
        // ~4 lines/order with ~10% empty orders.
        assert!(
            n_lines > n_orders * 2 && n_lines < n_orders * 7,
            "lines = {n_lines}"
        );
    }

    #[test]
    fn some_orders_have_no_lineitems() {
        let cfg = TpchConfig::scale(0.05);
        let c = generate(&cfg);
        let lineitem = c.table("lineitem").unwrap();
        let with_lines: std::collections::HashSet<i64> =
            lineitem.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let n_orders = c.table("orders").unwrap().len();
        assert!(with_lines.len() < n_orders, "expected some empty orders");
    }

    #[test]
    fn keys_are_enforced() {
        let cfg = TpchConfig::scale(0.01);
        let c = generate(&cfg);
        // Key index lookups work.
        let orders = c.table("orders").unwrap();
        assert!(orders.get_by_key(&gpivot_storage::row![1]).is_some());
        let lineitem = c.table("lineitem").unwrap();
        assert!(lineitem.schema().key().is_some());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TpchConfig {
            seed: 1,
            ..TpchConfig::scale(0.01)
        });
        let b = generate(&TpchConfig {
            seed: 2,
            ..TpchConfig::scale(0.01)
        });
        assert!(!a
            .table("lineitem")
            .unwrap()
            .bag_eq(b.table("lineitem").unwrap()));
    }
}
