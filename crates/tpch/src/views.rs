//! The paper's three evaluation view families (Figures 32, 36, 39).

use gpivot_algebra::{AggSpec, Expr, PivotSpec, Plan, PlanBuilder};
use gpivot_storage::Value;

/// Line numbers pivoted by views (1) and (2). The paper pivots the first
/// few lineitem prices per order into columns.
pub const LINE_NUMBERS: [i64; 3] = [1, 2, 3];

/// Years pivoted by view (3): five years × (sum, count) + 2 key columns =
/// the "100,000 rows with 12 columns" of §7.3.
pub const VIEW_YEARS: [i64; 5] = [1994, 1995, 1996, 1997, 1998];

/// The pivot spec shared by views (1) and (2): lineitem prices by line
/// number.
pub fn line_pivot_spec() -> PivotSpec {
    PivotSpec::simple(
        "l_linenumber",
        "l_extendedprice",
        LINE_NUMBERS.iter().map(|&n| Value::Int(n)).collect(),
    )
}

/// Name of the pivoted price column for a line number.
pub fn price_col(line: i64) -> String {
    gpivot_algebra::encode_pivot_col(&[Value::Int(line)], "l_extendedprice")
}

/// **View (1)** — Figure 32: non-aggregate.
///
/// `GPIVOT(lineitem) ⋈ orders ⋈ customer`: pivot each order's first three
/// line prices into columns, then join order and customer attributes.
pub fn view1() -> Plan {
    PlanBuilder::scan("lineitem")
        .project_cols(&["l_orderkey", "l_linenumber", "l_extendedprice"])
        .gpivot(line_pivot_spec())
        .join(
            PlanBuilder::scan("orders"),
            vec![("l_orderkey", "o_orderkey")],
        )
        .join(
            PlanBuilder::scan("customer"),
            vec![("o_custkey", "c_custkey")],
        )
        .build()
}

/// **View (2)** — Figure 36: non-aggregate with a SELECT over the pivot.
///
/// Like view (1) but keeping only orders whose *first* line price exceeds
/// `threshold` (the paper uses 30,000).
pub fn view2(threshold: f64) -> Plan {
    PlanBuilder::scan("lineitem")
        .project_cols(&["l_orderkey", "l_linenumber", "l_extendedprice"])
        .gpivot(line_pivot_spec())
        .select(Expr::col(price_col(1)).gt(Expr::lit(threshold)))
        .join(
            PlanBuilder::scan("orders"),
            vec![("l_orderkey", "o_orderkey")],
        )
        .join(
            PlanBuilder::scan("customer"),
            vec![("o_custkey", "c_custkey")],
        )
        .build()
}

/// The default view (2) threshold from the paper.
pub const VIEW2_THRESHOLD: f64 = 30_000.0;

/// **View (3)** — Figure 39: aggregate crosstab.
///
/// Join the three tables, compute total price and count per (customer,
/// nation, year), then pivot the per-year aggregates into columns.
pub fn view3() -> Plan {
    PlanBuilder::scan("lineitem")
        .join(
            PlanBuilder::scan("orders"),
            vec![("l_orderkey", "o_orderkey")],
        )
        .join(
            PlanBuilder::scan("customer"),
            vec![("o_custkey", "c_custkey")],
        )
        .group_by(
            &["c_custkey", "c_nationkey", "o_year"],
            vec![
                AggSpec::sum("l_extendedprice", "sum_price"),
                AggSpec::count_star("cnt"),
            ],
        )
        .gpivot(PivotSpec::new(
            vec!["o_year"],
            vec!["sum_price", "cnt"],
            VIEW_YEARS.iter().map(|&y| vec![Value::Int(y)]).collect(),
        ))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TpchConfig};
    use gpivot_exec::Executor;

    fn catalog() -> gpivot_storage::Catalog {
        generate(&TpchConfig::scale(0.02))
    }

    #[test]
    fn view1_executes_with_one_row_per_lined_order() {
        let c = catalog();
        let out = Executor::new().run(&view1(), &c).unwrap();
        let lined_orders: std::collections::HashSet<i64> = c
            .table("lineitem")
            .unwrap()
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        assert_eq!(out.len(), lined_orders.len());
        // Key: l_orderkey.
        assert!(out.schema().key().is_some());
    }

    #[test]
    fn view2_is_a_filtered_view1() {
        let c = catalog();
        let v1 = Executor::new().run(&view1(), &c).unwrap();
        let v2 = Executor::new().run(&view2(VIEW2_THRESHOLD), &c).unwrap();
        assert!(v2.len() < v1.len());
        assert!(!v2.is_empty(), "threshold should keep some rows");
        let price1 = v2.schema().index_of(&price_col(1)).unwrap();
        for r in v2.iter() {
            assert!(r[price1].as_f64().unwrap() > VIEW2_THRESHOLD);
        }
    }

    #[test]
    fn view3_has_twelve_columns() {
        let c = catalog();
        let out = Executor::new().run(&view3(), &c).unwrap();
        assert_eq!(out.schema().arity(), 12);
        assert!(!out.is_empty());
        assert_eq!(
            out.schema().key_names().unwrap(),
            vec!["c_custkey", "c_nationkey"]
        );
    }
}
