//! # gpivot-tpch
//!
//! TPC-H-shaped synthetic data and workloads for the GPIVOT evaluation.
//!
//! The paper runs its experiments (§7) on TPC-H at scale factor 1.0 on an
//! Oracle 10g instance. We reproduce the *shape* of that evaluation with a
//! deterministic in-process generator: the same three tables the paper's
//! views touch (`customer`, `orders`, `lineitem`, plus a small `part` table
//! for examples), the same key/foreign-key structure, and the same
//! cardinality ratios (1 : 10 : ~40 per scale unit), at a configurable
//! scale factor.
//!
//! * [`gen`] — the data generator ([`TpchConfig`], [`generate`]).
//! * [`views`] — the paper's three view families (Figures 32, 36, 39) as
//!   plan builders.
//! * [`workload`] — the delta-workload generators of §7.2: fractional
//!   deletes, update-only inserts, and insert-only inserts.

pub mod gen;
pub mod views;
pub mod workload;

pub use gen::{generate, TpchConfig};
pub use views::{view1, view2, view3, LINE_NUMBERS, VIEW_YEARS};
pub use workload::{
    customer_churn, delete_fraction, insert_new_rows, insert_updates_only, mixed_batch, order_churn,
};
