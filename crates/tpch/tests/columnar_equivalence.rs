//! Row-kernel vs columnar-kernel equivalence over the paper's evaluation
//! views (§7: Figures 32, 36, 39).
//!
//! The executor's vectorized columnar kernels claim *bit-identity* with
//! the row-at-a-time reference kernels — same rows, same order, same
//! float bits — at every thread count. This suite pins that claim on the
//! three TPC-H view families, on the pristine catalog and again after a
//! mixed delta batch has mutated the base tables (exercising the chunk
//! cache invalidation path), at 1 and 4 worker threads, on both the
//! sequential and the hash-partitioned kernels.
//!
//! CI runs this suite under `GPIVOT_EXEC_THREADS=1` and `=4`; the explicit
//! `with_threads` matrix below makes the contract independent of the
//! environment as well.

use gpivot_exec::Executor;
use gpivot_storage::Catalog;
use gpivot_tpch::views::VIEW2_THRESHOLD;
use gpivot_tpch::{generate, mixed_batch, view1, view2, view3, TpchConfig};

fn views() -> Vec<(&'static str, gpivot_algebra::Plan)> {
    vec![
        ("view1", view1()),
        ("view2", view2(VIEW2_THRESHOLD)),
        ("view3", view3()),
    ]
}

/// Assert every view produces bit-identical rows (values *and* order)
/// under the row and columnar kernels, across thread counts and across
/// the sequential/partitioned kernel split.
fn assert_equivalent(catalog: &Catalog, label: &str) {
    for (name, plan) in views() {
        // `parallel_threshold = 0` forces the partitioned kernels even on
        // small inputs; `usize::MAX` forces the sequential ones.
        for (path, threshold) in [("sequential", usize::MAX), ("partitioned", 0)] {
            let reference = Executor::new()
                .with_columnar(false)
                .with_parallel_threshold(threshold)
                .run(&plan, catalog)
                .unwrap_or_else(|e| panic!("{label}/{name}/{path} row kernels: {e}"));
            for threads in [1, 4] {
                let columnar = Executor::new()
                    .with_columnar(true)
                    .with_parallel_threshold(threshold)
                    .with_threads(threads)
                    .run(&plan, catalog)
                    .unwrap_or_else(|e| panic!("{label}/{name}/{path} columnar: {e}"));
                assert_eq!(
                    columnar.rows(),
                    reference.rows(),
                    "{label}/{name}/{path}: columnar output diverged at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn three_views_bit_identical_row_vs_columnar() {
    let catalog = generate(&TpchConfig::scale(0.05));
    assert_equivalent(&catalog, "pristine");
}

#[test]
fn three_views_bit_identical_after_base_table_mutation() {
    let mut catalog = generate(&TpchConfig::scale(0.05));
    // Warm every table's chunk cache, then mutate: the columnar kernels
    // must see the post-delta state, not a stale vectorized image.
    for name in ["customer", "orders", "lineitem"] {
        let _ = catalog.table(name).unwrap().chunk();
    }
    let deltas = mixed_batch(&catalog, 0.05, 0xC0FFEE);
    for table in deltas.tables().map(str::to_string).collect::<Vec<_>>() {
        let delta = deltas.delta(&table).cloned().unwrap_or_default();
        catalog.apply_delta(&table, &delta).unwrap();
    }
    assert_equivalent(&catalog, "post-delta");
}
