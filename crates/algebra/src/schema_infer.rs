//! Output schema **and key** derivation for every plan operator.
//!
//! Key tracking is the backbone of the paper's rewrite framework: §5.1 makes
//! *key preservation* the prerequisite for pulling GPIVOT up through any
//! operator, and §2.1 requires `(K, A1..Am)` to be a key of the pivot input.
//! Each derivation below therefore decides not just column names/types but
//! whether (and which) key survives.

use crate::aggregate::{AggFunc, AggSpec};
use crate::error::{AlgebraError, Result};
use crate::expr::Expr;
use crate::plan::{JoinKind, Plan};
use gpivot_storage::{Catalog, DataType, Field, Schema, SchemaRef, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Source of base-table schemas for schema inference.
pub trait SchemaProvider {
    /// The schema of a named base table.
    fn base_schema(&self, table: &str) -> Result<SchemaRef>;
}

impl SchemaProvider for Catalog {
    fn base_schema(&self, table: &str) -> Result<SchemaRef> {
        Ok(self.schema(table)?)
    }
}

impl SchemaProvider for BTreeMap<String, SchemaRef> {
    fn base_schema(&self, table: &str) -> Result<SchemaRef> {
        self.get(table).cloned().ok_or_else(|| {
            AlgebraError::Storage(gpivot_storage::StorageError::UnknownTable(
                table.to_string(),
            ))
        })
    }
}

impl Plan {
    /// Derive the output schema (fields + key) of this plan.
    ///
    /// The whole derivation runs under one `compile.schema_infer` tracing
    /// span (the recursion over subtrees is internal, so a plan tree is
    /// one span, not one per operator).
    pub fn schema<P: SchemaProvider>(&self, provider: &P) -> Result<SchemaRef> {
        let _s = tracing::span("compile.schema_infer").enter();
        self.schema_rec(provider)
    }

    fn schema_rec<P: SchemaProvider>(&self, provider: &P) -> Result<SchemaRef> {
        match self {
            Plan::Scan { table } => provider.base_schema(table),

            Plan::Select { input, predicate } => {
                let schema = input.schema_rec(provider)?;
                // Validate the predicate binds.
                predicate
                    .bind(&schema)
                    .map_err(|e| AlgebraError::InvalidExpr(format!("select predicate: {e}")))?;
                Ok(schema)
            }

            Plan::Project { input, items } => {
                let in_schema = input.schema_rec(provider)?;
                derive_project(&in_schema, items)
            }

            Plan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => {
                let ls = left.schema_rec(provider)?;
                let rs = right.schema_rec(provider)?;
                derive_join(&ls, &rs, *kind, on, residual.as_ref())
            }

            Plan::GroupBy {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = input.schema_rec(provider)?;
                derive_group_by(&in_schema, group_by, aggs)
            }

            Plan::Union { left, right } => {
                let ls = left.schema_rec(provider)?;
                let rs = right.schema_rec(provider)?;
                check_same_shape(&ls, &rs)?;
                // Bag union may create duplicates: the key is lost.
                let mut s = (*ls).clone();
                s.clear_key();
                Ok(Arc::new(s))
            }

            Plan::Diff { left, right } => {
                let ls = left.schema_rec(provider)?;
                let rs = right.schema_rec(provider)?;
                check_same_shape(&ls, &rs)?;
                // A sub-bag of a keyed bag keeps the key.
                Ok(ls)
            }

            Plan::GPivot { input, spec } => {
                let in_schema = input.schema_rec(provider)?;
                derive_gpivot(&in_schema, spec)
            }

            Plan::GUnpivot { input, spec } => {
                let in_schema = input.schema_rec(provider)?;
                derive_gunpivot(&in_schema, spec)
            }
        }
    }
}

fn check_same_shape(l: &Schema, r: &Schema) -> Result<()> {
    let same = l.arity() == r.arity()
        && l.fields()
            .iter()
            .zip(r.fields())
            .all(|(a, b)| a.name == b.name);
    if same {
        Ok(())
    } else {
        Err(AlgebraError::SchemaMismatch {
            left: l.to_string(),
            right: r.to_string(),
        })
    }
}

fn derive_project(input: &Schema, items: &[(Expr, String)]) -> Result<SchemaRef> {
    let mut fields = Vec::with_capacity(items.len());
    let mut seen = std::collections::HashSet::new();
    for (expr, name) in items {
        expr.bind(input)
            .map_err(|e| AlgebraError::InvalidExpr(format!("project item `{name}`: {e}")))?;
        if !seen.insert(name.as_str()) {
            return Err(AlgebraError::Storage(
                gpivot_storage::StorageError::DuplicateColumn(name.clone()),
            ));
        }
        fields.push(Field::new(name.clone(), expr.data_type(input)));
    }
    let mut schema = Schema::new(fields)?;
    // Key survives iff every input key column passes through as a bare Col.
    if let Some(key) = input.key() {
        let mut new_key = Vec::with_capacity(key.len());
        let mut ok = true;
        for &ki in key {
            let key_name = &input.fields()[ki].name;
            match items
                .iter()
                .position(|(e, _)| matches!(e, Expr::Col(c) if c == key_name))
            {
                Some(pos) => new_key.push(pos),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            schema.set_key(new_key);
        }
    }
    Ok(Arc::new(schema))
}

fn derive_join(
    left: &Schema,
    right: &Schema,
    kind: JoinKind,
    on: &[(String, String)],
    residual: Option<&Expr>,
) -> Result<SchemaRef> {
    // Column names must be globally unique after the join.
    for f in right.fields() {
        if left.index_of(&f.name).is_ok() {
            return Err(AlgebraError::AmbiguousColumn(f.name.clone()));
        }
    }
    let mut left_on = Vec::with_capacity(on.len());
    let mut right_on = Vec::with_capacity(on.len());
    for (l, r) in on {
        left_on.push(left.index_of(l)?);
        right_on.push(right.index_of(r)?);
    }
    let mut fields = left.fields().to_vec();
    fields.extend(right.fields().iter().cloned());
    let mut schema = Schema::new(fields)?;
    if let Some(res) = residual {
        res.bind(&schema)
            .map_err(|e| AlgebraError::InvalidExpr(format!("join residual: {e}")))?;
    }

    let covers = |on_cols: &[usize], key: Option<&[usize]>| -> bool {
        key.is_some_and(|k| k.iter().all(|ki| on_cols.contains(ki)))
    };

    // Key derivation (§5.1.3): joining to the other side's key means each
    // row on this side appears at most once, so this side's key survives.
    let left_key = left.key();
    let right_key = right.key();
    let n_left = left.arity();
    match kind {
        JoinKind::Inner | JoinKind::LeftOuter => {
            if covers(&right_on, right_key) {
                if let Some(lk) = left_key {
                    schema.set_key(lk.to_vec());
                    return Ok(Arc::new(schema));
                }
            }
            if kind == JoinKind::Inner && covers(&left_on, left_key) {
                if let Some(rk) = right_key {
                    schema.set_key(rk.iter().map(|&i| i + n_left).collect());
                    return Ok(Arc::new(schema));
                }
            }
            if let (Some(lk), Some(rk)) = (left_key, right_key) {
                let mut key: Vec<usize> = lk.to_vec();
                key.extend(rk.iter().map(|&i| i + n_left));
                schema.set_key(key);
            }
        }
        JoinKind::FullOuter => {
            // Unmatched rows null out the other side's key columns, so only
            // the union of both keys stays unique.
            if let (Some(lk), Some(rk)) = (left_key, right_key) {
                let mut key: Vec<usize> = lk.to_vec();
                key.extend(rk.iter().map(|&i| i + n_left));
                schema.set_key(key);
            }
        }
    }
    Ok(Arc::new(schema))
}

fn derive_group_by(input: &Schema, group_by: &[String], aggs: &[AggSpec]) -> Result<SchemaRef> {
    let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
    for g in group_by {
        let f = input.field(g)?;
        fields.push(f.clone());
    }
    for a in aggs {
        let out_type = match a.func {
            AggFunc::Count | AggFunc::CountStar => DataType::Int,
            AggFunc::Avg => DataType::Float,
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let t = input.field(&a.input)?.data_type;
                if a.func == AggFunc::Sum
                    && !matches!(t, DataType::Int | DataType::Float | DataType::Any)
                {
                    return Err(AlgebraError::InvalidGroupBy(format!(
                        "sum over non-numeric column `{}`",
                        a.input
                    )));
                }
                t
            }
        };
        if a.func == AggFunc::Count
            || a.func == AggFunc::Min
            || a.func == AggFunc::Max
            || a.func == AggFunc::Avg
        {
            input.index_of(&a.input)?;
        }
        fields.push(Field::new(a.output.clone(), out_type));
    }
    let mut schema = Schema::new(fields)?;
    // The grouping columns are the key of the aggregate output.
    schema.set_key((0..group_by.len()).collect());
    Ok(Arc::new(schema))
}

fn derive_gpivot(input: &Schema, spec: &crate::plan::PivotSpec) -> Result<SchemaRef> {
    let k_cols = spec.validate(input)?;

    // Pivot applicability (§2.1): (K, A1..Am) must form a key, i.e. the
    // input key must exist and contain no measure (`on`) column.
    let key = input.key().ok_or_else(|| AlgebraError::PivotRequiresKey {
        detail: format!("input schema {input} declares no key"),
    })?;
    for &ki in key {
        let name = &input.fields()[ki].name;
        if spec.on.contains(name) {
            return Err(AlgebraError::PivotRequiresKey {
                detail: format!(
                    "key column `{name}` is a pivot measure; (K, A1..Am) cannot be a key"
                ),
            });
        }
    }

    let mut fields = Vec::with_capacity(k_cols.len() + spec.groups.len() * spec.on.len());
    for k in &k_cols {
        fields.push(input.field(k)?.clone());
    }
    for gi in 0..spec.groups.len() {
        for (bj, on_col) in spec.on.iter().enumerate() {
            let t = input.field(on_col)?.data_type;
            fields.push(Field::new(spec.col_name(gi, bj), t));
        }
    }
    let mut schema = Schema::new(fields)?;
    // Output key = K (§2.1: "the key for the pivoted output table is K").
    schema.set_key((0..k_cols.len()).collect());
    Ok(Arc::new(schema))
}

fn derive_gunpivot(input: &Schema, spec: &crate::plan::UnpivotSpec) -> Result<SchemaRef> {
    let k_cols = spec.validate(input)?;

    let mut fields =
        Vec::with_capacity(k_cols.len() + spec.name_cols.len() + spec.value_cols.len());
    for k in &k_cols {
        fields.push(input.field(k)?.clone());
    }
    // Dimension (name) columns: type inferred from the tag values.
    for (i, nc) in spec.name_cols.iter().enumerate() {
        let mut t: Option<DataType> = None;
        for g in &spec.groups {
            let vt = value_type(&g.tags[i]);
            t = Some(match t {
                None => vt,
                Some(prev) if prev == vt => prev,
                Some(_) => DataType::Any,
            });
        }
        fields.push(Field::new(nc.clone(), t.unwrap_or(DataType::Any)));
    }
    // Measure (value) columns: unify the source column types.
    for (j, vc) in spec.value_cols.iter().enumerate() {
        let mut t: Option<DataType> = None;
        for g in &spec.groups {
            let vt = input.field(&g.cols[j])?.data_type;
            t = Some(match t {
                None => vt,
                Some(prev) if prev == vt => prev,
                Some(_) => DataType::Any,
            });
        }
        fields.push(Field::new(vc.clone(), t.unwrap_or(DataType::Any)));
    }
    let mut schema = Schema::new(fields)?;
    // Output key = (input key within K) + name columns, provided the input
    // key survives into K.
    if let Some(key) = input.key() {
        let key_names: Vec<&str> = key
            .iter()
            .map(|&i| input.fields()[i].name.as_str())
            .collect();
        if key_names.iter().all(|kn| k_cols.iter().any(|c| c == kn)) {
            let mut new_key: Vec<usize> = key_names
                .iter()
                .map(|kn| k_cols.iter().position(|c| c == kn).expect("checked"))
                .collect();
            let name_start = k_cols.len();
            new_key.extend(name_start..name_start + spec.name_cols.len());
            schema.set_key(new_key);
        }
    }
    Ok(Arc::new(schema))
}

fn value_type(v: &Value) -> DataType {
    match v {
        Value::Null => DataType::Any,
        Value::Bool(_) => DataType::Bool,
        Value::Int(_) => DataType::Int,
        Value::Float(_) => DataType::Float,
        Value::Str(_) => DataType::Str,
        Value::Date(_) => DataType::Date,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PivotSpec, UnpivotGroup, UnpivotSpec};

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "iteminfo".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("AuctionID", DataType::Int),
                        ("Attribute", DataType::Str),
                        ("Value", DataType::Str),
                    ],
                    &["AuctionID", "Attribute"],
                )
                .unwrap(),
            ),
        );
        m.insert(
            "product".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[("PID", DataType::Int), ("PName", DataType::Str)],
                    &["PID"],
                )
                .unwrap(),
            ),
        );
        m.insert(
            "sales".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("Country", DataType::Str),
                        ("Manu", DataType::Str),
                        ("Type", DataType::Str),
                        ("Price", DataType::Float),
                        ("Quantity", DataType::Int),
                    ],
                    &["Country", "Manu", "Type"],
                )
                .unwrap(),
            ),
        );
        m
    }

    #[test]
    fn scan_and_select_preserve_schema() {
        let p = provider();
        let plan = Plan::scan("iteminfo").select(Expr::col("Value").eq(Expr::lit("Sony")));
        let s = plan.schema(&p).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.key_names().unwrap(), vec!["AuctionID", "Attribute"]);
    }

    #[test]
    fn project_keeps_key_when_cols_pass_through() {
        let p = provider();
        let plan = Plan::scan("iteminfo").project_cols(&["Attribute", "AuctionID"]);
        let s = plan.schema(&p).unwrap();
        // Key survives; names come back in projected field order.
        assert_eq!(s.key_names().unwrap(), vec!["Attribute", "AuctionID"]);
    }

    #[test]
    fn project_drops_key_when_key_col_removed() {
        let p = provider();
        let plan = Plan::scan("iteminfo").project_cols(&["AuctionID", "Value"]);
        let s = plan.schema(&p).unwrap();
        assert!(!s.has_key());
    }

    #[test]
    fn gpivot_schema_and_key() {
        let p = provider();
        let spec = PivotSpec::simple(
            "Attribute",
            "Value",
            vec![Value::str("Manufacturer"), Value::str("Type")],
        );
        let plan = Plan::scan("iteminfo").gpivot(spec);
        let s = plan.schema(&p).unwrap();
        assert_eq!(
            s.column_names(),
            vec!["AuctionID", "Manufacturer**Value", "Type**Value"]
        );
        assert_eq!(s.key_names().unwrap(), vec!["AuctionID"]);
    }

    #[test]
    fn gpivot_requires_key() {
        let p = {
            let mut m = BTreeMap::new();
            m.insert(
                "nokey".to_string(),
                Arc::new(
                    Schema::from_pairs(&[("a", DataType::Str), ("b", DataType::Int)]).unwrap(),
                ),
            );
            m
        };
        let plan = Plan::scan("nokey").gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]));
        assert!(matches!(
            plan.schema(&p),
            Err(AlgebraError::PivotRequiresKey { .. })
        ));
    }

    #[test]
    fn gpivot_rejects_measure_in_key() {
        let mut m = BTreeMap::new();
        m.insert(
            "t".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("k", DataType::Int),
                        ("a", DataType::Str),
                        ("b", DataType::Int),
                    ],
                    &["k", "b"],
                )
                .unwrap(),
            ),
        );
        let plan = Plan::scan("t").gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]));
        assert!(matches!(
            plan.schema(&m),
            Err(AlgebraError::PivotRequiresKey { .. })
        ));
    }

    #[test]
    fn join_fk_preserves_left_key() {
        let p = provider();
        // iteminfo.AuctionID = product.PID where PID is product's key:
        // each iteminfo row matches at most one product row.
        let plan = Plan::scan("iteminfo").join(Plan::scan("product"), vec![("AuctionID", "PID")]);
        let s = plan.schema(&p).unwrap();
        assert_eq!(s.key_names().unwrap(), vec!["AuctionID", "Attribute"]);
    }

    #[test]
    fn join_general_unions_keys() {
        let p = provider();
        // join on non-key right column → union of keys.
        let plan = Plan::scan("iteminfo").join(Plan::scan("product"), vec![("Value", "PName")]);
        let s = plan.schema(&p).unwrap();
        assert_eq!(
            s.key_names().unwrap(),
            vec!["AuctionID", "Attribute", "PID"]
        );
    }

    #[test]
    fn join_rejects_ambiguous_columns() {
        let p = provider();
        let plan = Plan::scan("iteminfo").join(Plan::scan("iteminfo"), vec![]);
        assert!(matches!(
            plan.schema(&p),
            Err(AlgebraError::AmbiguousColumn(_))
        ));
    }

    #[test]
    fn group_by_key_is_group_cols() {
        let p = provider();
        let plan = Plan::scan("sales").group_by(
            &["Manu", "Type"],
            vec![AggSpec::sum("Price", "total"), AggSpec::count_star("cnt")],
        );
        let s = plan.schema(&p).unwrap();
        assert_eq!(s.column_names(), vec!["Manu", "Type", "total", "cnt"]);
        assert_eq!(s.key_names().unwrap(), vec!["Manu", "Type"]);
        assert_eq!(s.field("cnt").unwrap().data_type, DataType::Int);
        assert_eq!(s.field("total").unwrap().data_type, DataType::Float);
    }

    #[test]
    fn group_by_rejects_sum_over_string() {
        let p = provider();
        let plan = Plan::scan("sales").group_by(&["Manu"], vec![AggSpec::sum("Type", "x")]);
        assert!(plan.schema(&p).is_err());
    }

    #[test]
    fn union_loses_key_diff_keeps_it() {
        let p = provider();
        let u = Plan::Union {
            left: Box::new(Plan::scan("sales")),
            right: Box::new(Plan::scan("sales")),
        };
        assert!(!u.schema(&p).unwrap().has_key());
        let d = Plan::Diff {
            left: Box::new(Plan::scan("sales")),
            right: Box::new(Plan::scan("sales")),
        };
        assert!(d.schema(&p).unwrap().has_key());
    }

    #[test]
    fn gunpivot_schema_and_key() {
        let p = provider();
        // Pivot sales then unpivot it back: schema should mirror.
        let spec = PivotSpec::cross(
            vec!["Manu", "Type"],
            vec!["Price", "Quantity"],
            vec![
                vec![Value::str("Sony")],
                vec![Value::str("TV"), Value::str("VCR")],
            ],
        );
        let unspec = UnpivotSpec::reversing(&spec);
        let plan = Plan::scan("sales").gpivot(spec).gunpivot(unspec);
        let s = plan.schema(&p).unwrap();
        assert_eq!(
            s.column_names(),
            vec!["Country", "Manu", "Type", "Price", "Quantity"]
        );
        assert_eq!(s.key_names().unwrap(), vec!["Country", "Manu", "Type"]);
    }

    #[test]
    fn gunpivot_standalone_key() {
        let mut m = BTreeMap::new();
        m.insert(
            "wide".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("id", DataType::Int),
                        ("p1", DataType::Float),
                        ("p2", DataType::Float),
                    ],
                    &["id"],
                )
                .unwrap(),
            ),
        );
        let spec = UnpivotSpec::new(
            vec![
                UnpivotGroup {
                    tags: vec![Value::str("p1")],
                    cols: vec!["p1".into()],
                },
                UnpivotGroup {
                    tags: vec![Value::str("p2")],
                    cols: vec!["p2".into()],
                },
            ],
            vec!["which"],
            vec!["price"],
        );
        let s = Plan::scan("wide").gunpivot(spec).schema(&m).unwrap();
        assert_eq!(s.column_names(), vec!["id", "which", "price"]);
        assert_eq!(s.key_names().unwrap(), vec!["id", "which"]);
        assert_eq!(s.field("which").unwrap().data_type, DataType::Str);
        assert_eq!(s.field("price").unwrap().data_type, DataType::Float);
    }

    #[test]
    fn union_schema_mismatch_rejected() {
        let p = provider();
        let u = Plan::Union {
            left: Box::new(Plan::scan("sales")),
            right: Box::new(Plan::scan("product")),
        };
        assert!(matches!(
            u.schema(&p),
            Err(AlgebraError::SchemaMismatch { .. })
        ));
    }
}
