//! # gpivot-algebra
//!
//! The logical relational algebra for the GPIVOT engine — the plan language
//! that the paper's rewriting rules (combination, pullup, pushdown) and
//! propagation rules are stated over.
//!
//! The crate provides:
//!
//! * [`expr`] — scalar expressions and predicates with SQL three-valued
//!   logic (the paper's *null-intolerant* predicates are the ones whose
//!   conservative analysis in [`expr::Expr::is_null_intolerant`] returns
//!   true), plus compilation ([`expr::BoundExpr`]) against a schema.
//! * [`aggregate`] — aggregate function specifications for `GROUPBY`.
//! * [`plan`] — the operator tree: `Scan`, `Select`, `Project`, `Join`
//!   (inner / left-outer / full-outer), `GroupBy`, `Union`, `Diff`, and the
//!   paper's stars: [`plan::Plan::GPivot`] and [`plan::Plan::GUnpivot`]
//!   (the simple `PIVOT`/`UNPIVOT` of Eq. 1–2 are the 1×1 special case).
//! * [`names`] — the pivoted-column naming protocol
//!   `a1**a2**…**am**Bj` (§4.1), with escaping so data values containing
//!   `*` round-trip.
//! * [`schema_infer`] — output-schema **and key** derivation for every
//!   operator; key preservation is the prerequisite for the paper's pullup
//!   rules (§5.1) and is tracked structurally here.
//! * [`combinability`] — the §4.2.3 analysis deciding whether two adjacent
//!   GPIVOTs merge into one ([`can_combine`] / [`CombineVerdict`]), shared
//!   by the rewrite engine and the static plan analyzer.
//! * [`builder`] — a fluent plan builder.
//! * [`display`] — `EXPLAIN`-style pretty printing.

pub mod aggregate;
pub mod builder;
pub mod combinability;
pub mod display;
pub mod error;
pub mod expr;
pub mod names;
pub mod plan;
pub mod schema_infer;
pub mod sql;

pub use aggregate::{AggFunc, AggSpec};
pub use builder::PlanBuilder;
pub use combinability::{can_combine, CombineVerdict};
pub use error::{AlgebraError, Result};
pub use expr::{BinOp, BoundExpr, CmpOp, Expr};
pub use names::{decode_pivot_col, encode_pivot_col};
pub use plan::{JoinKind, PivotSpec, Plan, UnpivotGroup, UnpivotSpec};
pub use schema_infer::SchemaProvider;
