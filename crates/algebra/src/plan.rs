//! The logical operator tree.
//!
//! Operators mirror the paper's algebra: `SELECT` (σ), `PROJECT` (π),
//! `JOIN` (⨝, plus left/full outer variants used by the pivot definition),
//! `GROUPBY` (𝓕), bag `UNION`/`DIFF` (⊎ / ∸), and the generalized pivots
//! [`Plan::GPivot`] / [`Plan::GUnpivot`] (Eq. 3, 4). The simple `PIVOT` /
//! `UNPIVOT` of Eq. 1–2 are constructed as the 1-dimension special case via
//! [`PivotSpec::simple`] / [`UnpivotSpec::simple`].

use crate::aggregate::AggSpec;
use crate::error::{AlgebraError, Result};
use crate::expr::Expr;
use crate::names::encode_pivot_col;
use gpivot_storage::{Schema, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Join kinds. The paper's GPIVOT definition uses full outer joins; its
/// update propagation rules use left outer joins between delta and view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKind {
    Inner,
    LeftOuter,
    FullOuter,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            JoinKind::Inner => "inner",
            JoinKind::LeftOuter => "left-outer",
            JoinKind::FullOuter => "full-outer",
        };
        f.write_str(s)
    }
}

/// Parameters of a GPIVOT (Eq. 3).
///
/// Pivots the measure columns `on = [B1..Bn]` by the dimension columns
/// `by = [A1..Am]`, producing one output column per (output group, measure)
/// pair. `groups` are the *output parameters* `[(a¹₁..a¹ₘ), …, (aᵖ₁..aᵖₘ)]`.
#[derive(Debug, Clone, PartialEq)]
pub struct PivotSpec {
    /// Dimension columns `A1..Am` whose values become column-name segments.
    pub by: Vec<String>,
    /// Measure columns `B1..Bn` whose values fill the pivoted cells.
    pub on: Vec<String>,
    /// Output dimension-value tuples, each of arity `by.len()`.
    pub groups: Vec<Vec<Value>>,
}

impl PivotSpec {
    /// Build a generalized pivot spec.
    pub fn new(
        by: Vec<impl Into<String>>,
        on: Vec<impl Into<String>>,
        groups: Vec<Vec<Value>>,
    ) -> Self {
        PivotSpec {
            by: by.into_iter().map(Into::into).collect(),
            on: on.into_iter().map(Into::into).collect(),
            groups,
        }
    }

    /// The simple PIVOT of Eq. 1: one dimension column, one measure column.
    pub fn simple(by: impl Into<String>, on: impl Into<String>, values: Vec<Value>) -> Self {
        PivotSpec {
            by: vec![by.into()],
            on: vec![on.into()],
            groups: values.into_iter().map(|v| vec![v]).collect(),
        }
    }

    /// Cross-product constructor: `{Sony, Panasonic} × {TV, VCR}` style
    /// output parameters (Figure 5 in the paper).
    pub fn cross(
        by: Vec<impl Into<String>>,
        on: Vec<impl Into<String>>,
        dim_values: Vec<Vec<Value>>,
    ) -> Self {
        let by: Vec<String> = by.into_iter().map(Into::into).collect();
        assert_eq!(by.len(), dim_values.len(), "one value list per dimension");
        let mut groups: Vec<Vec<Value>> = vec![vec![]];
        for values in &dim_values {
            let mut next = Vec::with_capacity(groups.len() * values.len());
            for g in &groups {
                for v in values {
                    let mut g2 = g.clone();
                    g2.push(v.clone());
                    next.push(g2);
                }
            }
            groups = next;
        }
        PivotSpec {
            by,
            on: on.into_iter().map(Into::into).collect(),
            groups,
        }
    }

    /// Number of dimension columns `m`.
    pub fn dims(&self) -> usize {
        self.by.len()
    }

    /// Number of measure columns `n`.
    pub fn measures(&self) -> usize {
        self.on.len()
    }

    /// Encoded output column name for output group `gi` and measure `bj`.
    pub fn col_name(&self, gi: usize, bj: usize) -> String {
        encode_pivot_col(&self.groups[gi], &self.on[bj])
    }

    /// All pivoted output column names, group-major (`g0·B0, g0·B1, …`).
    pub fn output_col_names(&self) -> Vec<String> {
        let mut out = Vec::with_capacity(self.groups.len() * self.on.len());
        for gi in 0..self.groups.len() {
            for bj in 0..self.on.len() {
                out.push(self.col_name(gi, bj));
            }
        }
        out
    }

    /// Validate the spec against an input schema; returns the `K` column
    /// names (input columns that are neither `by` nor `on`, in input order).
    pub fn validate(&self, input: &Schema) -> Result<Vec<String>> {
        if self.by.is_empty() || self.on.is_empty() {
            return Err(AlgebraError::InvalidPivotSpec(
                "pivot needs at least one `by` and one `on` column".into(),
            ));
        }
        if self.groups.is_empty() {
            return Err(AlgebraError::InvalidPivotSpec(
                "pivot needs at least one output group".into(),
            ));
        }
        let by_set: BTreeSet<&str> = self.by.iter().map(String::as_str).collect();
        let on_set: BTreeSet<&str> = self.on.iter().map(String::as_str).collect();
        if by_set.len() != self.by.len() || on_set.len() != self.on.len() {
            return Err(AlgebraError::InvalidPivotSpec(
                "duplicate column in `by` or `on`".into(),
            ));
        }
        if !by_set.is_disjoint(&on_set) {
            return Err(AlgebraError::InvalidPivotSpec(
                "`by` and `on` columns must be disjoint".into(),
            ));
        }
        for c in self.by.iter().chain(self.on.iter()) {
            input.index_of(c)?;
        }
        let mut seen = BTreeSet::new();
        for g in &self.groups {
            if g.len() != self.by.len() {
                return Err(AlgebraError::InvalidPivotSpec(format!(
                    "output group {g:?} has arity {} but there are {} `by` columns",
                    g.len(),
                    self.by.len()
                )));
            }
            if !seen.insert(g.clone()) {
                return Err(AlgebraError::InvalidPivotSpec(format!(
                    "duplicate output group {g:?}"
                )));
            }
        }
        Ok(input
            .column_names()
            .into_iter()
            .filter(|c| !by_set.contains(c) && !on_set.contains(c))
            .map(str::to_string)
            .collect())
    }

    /// Index of the output group equal to `tags`, if listed.
    pub fn group_index(&self, tags: &[Value]) -> Option<usize> {
        self.groups.iter().position(|g| g.as_slice() == tags)
    }
}

impl fmt::Display for PivotSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GPIVOT[")?;
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(")?;
            for (j, v) in g.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, ")")?;
        }
        write!(f, "] {} on {}", self.by.join(","), self.on.join(","))
    }
}

/// One unpivot group: the dimension values it decodes to, and the input
/// columns carrying its measures.
#[derive(Debug, Clone, PartialEq)]
pub struct UnpivotGroup {
    /// Dimension values `a¹..aᵐ` this group stands for.
    pub tags: Vec<Value>,
    /// Input column names (one per measure), e.g. `["Sony**TV**Price",
    /// "Sony**TV**Quantity"]`.
    pub cols: Vec<String>,
}

/// Parameters of a GUNPIVOT (Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct UnpivotSpec {
    /// The groups to fold back into rows.
    pub groups: Vec<UnpivotGroup>,
    /// Output dimension column names (`A1..Am`).
    pub name_cols: Vec<String>,
    /// Output measure column names (`B1..Bn`).
    pub value_cols: Vec<String>,
}

impl UnpivotSpec {
    /// Build a generalized unpivot spec.
    pub fn new(
        groups: Vec<UnpivotGroup>,
        name_cols: Vec<impl Into<String>>,
        value_cols: Vec<impl Into<String>>,
    ) -> Self {
        UnpivotSpec {
            groups,
            name_cols: name_cols.into_iter().map(Into::into).collect(),
            value_cols: value_cols.into_iter().map(Into::into).collect(),
        }
    }

    /// The simple UNPIVOT of Eq. 2: each listed column becomes one group
    /// tagged with its own name, producing `(name_col, value_col)` pairs.
    pub fn simple(
        cols: Vec<impl Into<String>>,
        name_col: impl Into<String>,
        value_col: impl Into<String>,
    ) -> Self {
        let groups = cols
            .into_iter()
            .map(Into::into)
            .map(|c: String| UnpivotGroup {
                tags: vec![Value::str(&c)],
                cols: vec![c],
            })
            .collect();
        UnpivotSpec {
            groups,
            name_cols: vec![name_col.into()],
            value_cols: vec![value_col.into()],
        }
    }

    /// Build the spec that exactly reverses `pivot` (used by the
    /// cancellation rules, Eq. 9 / Eq. 12).
    pub fn reversing(pivot: &PivotSpec) -> Self {
        let groups = pivot
            .groups
            .iter()
            .enumerate()
            .map(|(gi, g)| UnpivotGroup {
                tags: g.clone(),
                cols: (0..pivot.on.len())
                    .map(|bj| pivot.col_name(gi, bj))
                    .collect(),
            })
            .collect();
        UnpivotSpec {
            groups,
            name_cols: pivot.by.clone(),
            value_cols: pivot.on.clone(),
        }
    }

    /// Validate against an input schema; returns the `K` column names
    /// (input columns not consumed by any group, in input order).
    pub fn validate(&self, input: &Schema) -> Result<Vec<String>> {
        if self.groups.is_empty() {
            return Err(AlgebraError::InvalidUnpivotSpec(
                "unpivot needs at least one group".into(),
            ));
        }
        if self.name_cols.is_empty() && self.value_cols.is_empty() {
            return Err(AlgebraError::InvalidUnpivotSpec(
                "unpivot needs output columns".into(),
            ));
        }
        let mut consumed: BTreeSet<&str> = BTreeSet::new();
        for g in &self.groups {
            if g.tags.len() != self.name_cols.len() {
                return Err(AlgebraError::InvalidUnpivotSpec(format!(
                    "group tags {:?} arity != {} name columns",
                    g.tags,
                    self.name_cols.len()
                )));
            }
            if g.cols.len() != self.value_cols.len() {
                return Err(AlgebraError::InvalidUnpivotSpec(format!(
                    "group cols {:?} arity != {} value columns",
                    g.cols,
                    self.value_cols.len()
                )));
            }
            for c in &g.cols {
                input.index_of(c)?;
                if !consumed.insert(c) {
                    return Err(AlgebraError::InvalidUnpivotSpec(format!(
                        "column `{c}` used by more than one unpivot group"
                    )));
                }
            }
        }
        Ok(input
            .column_names()
            .into_iter()
            .filter(|c| !consumed.contains(c))
            .map(str::to_string)
            .collect())
    }
}

impl fmt::Display for UnpivotSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "GUNPIVOT[{} groups] → ({}; {})",
            self.groups.len(),
            self.name_cols.join(","),
            self.value_cols.join(",")
        )
    }
}

/// A projection item: an expression and its output name.
pub type ProjItem = (Expr, String);

/// A logical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a named base table.
    Scan { table: String },
    /// σ — keep rows where `predicate` is true.
    Select { input: Box<Plan>, predicate: Expr },
    /// π — compute named output expressions (generalizes both positive and
    /// negative projection; no duplicate elimination, bag semantics).
    Project {
        input: Box<Plan>,
        items: Vec<ProjItem>,
    },
    /// ⨝ — equi-join on column-name pairs with an optional residual
    /// predicate over the concatenated schema.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        on: Vec<(String, String)>,
        residual: Option<Expr>,
    },
    /// 𝓕 — grouping with aggregates.
    GroupBy {
        input: Box<Plan>,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    /// ⊎ — bag union (schemas must match).
    Union { left: Box<Plan>, right: Box<Plan> },
    /// ∸ — bag difference (schemas must match).
    Diff { left: Box<Plan>, right: Box<Plan> },
    /// GPIVOT (Eq. 3).
    GPivot { input: Box<Plan>, spec: PivotSpec },
    /// GUNPIVOT (Eq. 4).
    GUnpivot { input: Box<Plan>, spec: UnpivotSpec },
}

impl Plan {
    /// Scan constructor.
    pub fn scan(table: impl Into<String>) -> Plan {
        Plan::Scan {
            table: table.into(),
        }
    }

    /// σ constructor.
    pub fn select(self, predicate: Expr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            predicate,
        }
    }

    /// π constructor from `(expr, name)` items.
    pub fn project(self, items: Vec<ProjItem>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            items,
        }
    }

    /// Positive projection: keep exactly these columns, in this order.
    pub fn project_cols(self, cols: &[&str]) -> Plan {
        self.project(
            cols.iter()
                .map(|c| (Expr::col(*c), (*c).to_string()))
                .collect(),
        )
    }

    /// Equi-join constructor.
    pub fn join(self, right: Plan, on: Vec<(&str, &str)>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            kind: JoinKind::Inner,
            on: on
                .into_iter()
                .map(|(l, r)| (l.to_string(), r.to_string()))
                .collect(),
            residual: None,
        }
    }

    /// 𝓕 constructor.
    pub fn group_by(self, group_by: &[&str], aggs: Vec<AggSpec>) -> Plan {
        Plan::GroupBy {
            input: Box::new(self),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            aggs,
        }
    }

    /// GPIVOT constructor.
    pub fn gpivot(self, spec: PivotSpec) -> Plan {
        Plan::GPivot {
            input: Box::new(self),
            spec,
        }
    }

    /// GUNPIVOT constructor.
    pub fn gunpivot(self, spec: UnpivotSpec) -> Plan {
        Plan::GUnpivot {
            input: Box::new(self),
            spec,
        }
    }

    /// Immutable children, in order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => vec![],
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::GroupBy { input, .. }
            | Plan::GPivot { input, .. }
            | Plan::GUnpivot { input, .. } => vec![input],
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Diff { left, right } => vec![left, right],
        }
    }

    /// Names of all base tables scanned anywhere in the tree.
    pub fn base_tables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_tables(&mut out);
        out
    }

    fn collect_tables(&self, out: &mut BTreeSet<String>) {
        if let Plan::Scan { table } = self {
            out.insert(table.clone());
        }
        for c in self.children() {
            c.collect_tables(out);
        }
    }

    /// Count of operator nodes (used to compare rewritten plans).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Number of GPIVOT nodes in the tree.
    pub fn pivot_count(&self) -> usize {
        let own = usize::from(matches!(self, Plan::GPivot { .. }));
        own + self
            .children()
            .iter()
            .map(|c| c.pivot_count())
            .sum::<usize>()
    }

    /// Operator name, for display.
    pub fn op_name(&self) -> &'static str {
        match self {
            Plan::Scan { .. } => "Scan",
            Plan::Select { .. } => "Select",
            Plan::Project { .. } => "Project",
            Plan::Join { .. } => "Join",
            Plan::GroupBy { .. } => "GroupBy",
            Plan::Union { .. } => "Union",
            Plan::Diff { .. } => "Diff",
            Plan::GPivot { .. } => "GPivot",
            Plan::GUnpivot { .. } => "GUnpivot",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::DataType;

    fn iteminfo_schema() -> Schema {
        Schema::from_pairs_keyed(
            &[
                ("AuctionID", DataType::Int),
                ("Attribute", DataType::Str),
                ("Value", DataType::Str),
            ],
            &["AuctionID", "Attribute"],
        )
        .unwrap()
    }

    #[test]
    fn simple_pivot_spec_names() {
        let spec = PivotSpec::simple(
            "Attribute",
            "Value",
            vec![Value::str("Manufacturer"), Value::str("Type")],
        );
        assert_eq!(
            spec.output_col_names(),
            vec!["Manufacturer**Value", "Type**Value"]
        );
        let k = spec.validate(&iteminfo_schema()).unwrap();
        assert_eq!(k, vec!["AuctionID"]);
    }

    #[test]
    fn cross_spec_builds_product() {
        let spec = PivotSpec::cross(
            vec!["Manu", "Type"],
            vec!["Price"],
            vec![
                vec![Value::str("Sony"), Value::str("Panasonic")],
                vec![Value::str("TV"), Value::str("VCR")],
            ],
        );
        assert_eq!(spec.groups.len(), 4);
        assert_eq!(spec.groups[0], vec![Value::str("Sony"), Value::str("TV")]);
        assert_eq!(spec.col_name(3, 0), "Panasonic**VCR**Price");
    }

    #[test]
    fn pivot_spec_rejects_overlapping_columns() {
        let spec = PivotSpec::simple("Attribute", "Attribute", vec![Value::str("x")]);
        let schema = iteminfo_schema();
        assert!(matches!(
            PivotSpec {
                by: spec.by.clone(),
                on: spec.by.clone(),
                groups: spec.groups.clone()
            }
            .validate(&schema),
            Err(AlgebraError::InvalidPivotSpec(_))
        ));
    }

    #[test]
    fn pivot_spec_rejects_bad_group_arity() {
        let spec = PivotSpec::new(
            vec!["Attribute"],
            vec!["Value"],
            vec![vec![Value::str("a"), Value::str("b")]],
        );
        assert!(spec.validate(&iteminfo_schema()).is_err());
    }

    #[test]
    fn pivot_spec_rejects_duplicate_groups() {
        let spec = PivotSpec::simple("Attribute", "Value", vec![Value::str("a"), Value::str("a")]);
        assert!(spec.validate(&iteminfo_schema()).is_err());
    }

    #[test]
    fn group_index_lookup() {
        let spec = PivotSpec::simple("A", "B", vec![Value::str("x"), Value::str("y")]);
        assert_eq!(spec.group_index(&[Value::str("y")]), Some(1));
        assert_eq!(spec.group_index(&[Value::str("z")]), None);
    }

    #[test]
    fn reversing_unpivot_matches_pivot() {
        let pivot = PivotSpec::cross(
            vec!["Manu", "Type"],
            vec!["Price", "Qty"],
            vec![
                vec![Value::str("Sony")],
                vec![Value::str("TV"), Value::str("VCR")],
            ],
        );
        let un = UnpivotSpec::reversing(&pivot);
        assert_eq!(un.groups.len(), 2);
        assert_eq!(un.name_cols, vec!["Manu", "Type"]);
        assert_eq!(un.value_cols, vec!["Price", "Qty"]);
        assert_eq!(un.groups[0].cols, vec!["Sony**TV**Price", "Sony**TV**Qty"]);
    }

    #[test]
    fn unpivot_validate_rejects_column_reuse() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("c", DataType::Int)]).unwrap();
        let spec = UnpivotSpec::new(
            vec![
                UnpivotGroup {
                    tags: vec![Value::str("a")],
                    cols: vec!["c".into()],
                },
                UnpivotGroup {
                    tags: vec![Value::str("b")],
                    cols: vec!["c".into()],
                },
            ],
            vec!["name"],
            vec!["val"],
        );
        assert!(spec.validate(&schema).is_err());
    }

    #[test]
    fn unpivot_simple_tags_by_column_name() {
        let spec = UnpivotSpec::simple(vec!["p", "q"], "name", "val");
        assert_eq!(spec.groups.len(), 2);
        assert_eq!(spec.groups[0].tags, vec![Value::str("p")]);
        assert_eq!(spec.groups[1].cols, vec!["q"]);
    }

    #[test]
    fn plan_tree_navigation() {
        let p = Plan::scan("a").join(Plan::scan("b"), vec![("x", "y")]);
        assert_eq!(p.children().len(), 2);
        assert_eq!(p.node_count(), 3);
        assert_eq!(
            p.base_tables().into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn pivot_count_counts_gpivots() {
        let p = Plan::scan("t").gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]));
        assert_eq!(p.pivot_count(), 1);
        assert_eq!(Plan::scan("t").pivot_count(), 0);
    }
}
