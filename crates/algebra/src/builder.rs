//! A fluent builder over [`Plan`].
//!
//! The builder is a thin, chainable wrapper — the paper's example views read
//! almost like their algebra trees:
//!
//! ```
//! use gpivot_algebra::{PlanBuilder, PivotSpec, AggSpec, Expr};
//! use gpivot_storage::Value;
//!
//! // Figure 32: GPIVOT(lineitem) ⋈ orders ⋈ customer
//! let view = PlanBuilder::scan("lineitem")
//!     .gpivot(PivotSpec::simple(
//!         "l_linenumber",
//!         "l_extendedprice",
//!         vec![Value::Int(1), Value::Int(2), Value::Int(3)],
//!     ))
//!     .join(PlanBuilder::scan("orders"), vec![("l_orderkey", "o_orderkey")])
//!     .build();
//! assert_eq!(view.pivot_count(), 1);
//! ```

use crate::aggregate::AggSpec;
use crate::expr::Expr;
use crate::plan::{JoinKind, PivotSpec, Plan, ProjItem, UnpivotSpec};

/// Chainable plan construction.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: Plan,
}

impl PlanBuilder {
    /// Start from a base-table scan.
    pub fn scan(table: impl Into<String>) -> Self {
        PlanBuilder {
            plan: Plan::scan(table),
        }
    }

    /// Wrap an existing plan.
    pub fn from_plan(plan: Plan) -> Self {
        PlanBuilder { plan }
    }

    /// σ.
    pub fn select(self, predicate: Expr) -> Self {
        PlanBuilder {
            plan: self.plan.select(predicate),
        }
    }

    /// π from `(expr, name)` items.
    pub fn project(self, items: Vec<ProjItem>) -> Self {
        PlanBuilder {
            plan: self.plan.project(items),
        }
    }

    /// Positive projection by column names.
    pub fn project_cols(self, cols: &[&str]) -> Self {
        PlanBuilder {
            plan: self.plan.project_cols(cols),
        }
    }

    /// Inner equi-join.
    pub fn join(self, right: PlanBuilder, on: Vec<(&str, &str)>) -> Self {
        PlanBuilder {
            plan: self.plan.join(right.plan, on),
        }
    }

    /// Join with explicit kind and optional residual predicate.
    pub fn join_kind(
        self,
        right: PlanBuilder,
        kind: JoinKind,
        on: Vec<(&str, &str)>,
        residual: Option<Expr>,
    ) -> Self {
        PlanBuilder {
            plan: Plan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                kind,
                on: on
                    .into_iter()
                    .map(|(l, r)| (l.to_string(), r.to_string()))
                    .collect(),
                residual,
            },
        }
    }

    /// 𝓕.
    pub fn group_by(self, group_by: &[&str], aggs: Vec<AggSpec>) -> Self {
        PlanBuilder {
            plan: self.plan.group_by(group_by, aggs),
        }
    }

    /// Bag union.
    pub fn union(self, right: PlanBuilder) -> Self {
        PlanBuilder {
            plan: Plan::Union {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
        }
    }

    /// Bag difference.
    pub fn diff(self, right: PlanBuilder) -> Self {
        PlanBuilder {
            plan: Plan::Diff {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
            },
        }
    }

    /// GPIVOT.
    pub fn gpivot(self, spec: PivotSpec) -> Self {
        PlanBuilder {
            plan: self.plan.gpivot(spec),
        }
    }

    /// GUNPIVOT.
    pub fn gunpivot(self, spec: UnpivotSpec) -> Self {
        PlanBuilder {
            plan: self.plan.gunpivot(spec),
        }
    }

    /// Finish, returning the plan.
    pub fn build(self) -> Plan {
        self.plan
    }

    /// Peek at the plan without consuming the builder.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }
}

impl From<Plan> for PlanBuilder {
    fn from(plan: Plan) -> Self {
        PlanBuilder { plan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::Value;

    #[test]
    fn builds_nested_tree() {
        let plan = PlanBuilder::scan("a")
            .select(Expr::col("x").gt(Expr::lit(1)))
            .join(PlanBuilder::scan("b"), vec![("x", "y")])
            .group_by(&["x"], vec![AggSpec::count_star("cnt")])
            .build();
        assert_eq!(plan.node_count(), 5);
        assert_eq!(plan.op_name(), "GroupBy");
    }

    #[test]
    fn union_and_diff() {
        let p = PlanBuilder::scan("a").union(PlanBuilder::scan("a")).build();
        assert_eq!(p.op_name(), "Union");
        let p = PlanBuilder::scan("a").diff(PlanBuilder::scan("a")).build();
        assert_eq!(p.op_name(), "Diff");
    }

    #[test]
    fn gpivot_chain() {
        let p = PlanBuilder::scan("t")
            .gpivot(PivotSpec::simple("a", "b", vec![Value::str("x")]))
            .build();
        assert_eq!(p.pivot_count(), 1);
    }
}
