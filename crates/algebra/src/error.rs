//! Errors raised while building, validating, or inferring schemas for plans.

use gpivot_storage::StorageError;
use std::fmt;

/// Errors from the algebra layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// Underlying storage/schema error.
    Storage(StorageError),
    /// A pivot was applied to an input without the required key
    /// (the paper requires `(K, A1..Am)` to be a key of the input, §2.1).
    PivotRequiresKey { detail: String },
    /// The pivot parameters are malformed (wrong group arity, duplicate
    /// output groups, overlapping by/on columns, ...).
    InvalidPivotSpec(String),
    /// The unpivot parameters are malformed.
    InvalidUnpivotSpec(String),
    /// Join sides share a column name; the algebra requires disjoint names
    /// (use `Project`-renames before joining).
    AmbiguousColumn(String),
    /// An expression is invalid for its input schema.
    InvalidExpr(String),
    /// A group-by / aggregate specification is invalid.
    InvalidGroupBy(String),
    /// Union/Diff operands have incompatible schemas.
    SchemaMismatch { left: String, right: String },
    /// A rewriting rule was applied where its precondition does not hold.
    RuleNotApplicable(String),
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "storage error: {e}"),
            AlgebraError::PivotRequiresKey { detail } => {
                write!(f, "pivot requires a key on its input: {detail}")
            }
            AlgebraError::InvalidPivotSpec(s) => write!(f, "invalid pivot spec: {s}"),
            AlgebraError::InvalidUnpivotSpec(s) => write!(f, "invalid unpivot spec: {s}"),
            AlgebraError::AmbiguousColumn(c) => {
                write!(f, "column `{c}` appears on both sides of a join")
            }
            AlgebraError::InvalidExpr(s) => write!(f, "invalid expression: {s}"),
            AlgebraError::InvalidGroupBy(s) => write!(f, "invalid group-by: {s}"),
            AlgebraError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch between {left} and {right}")
            }
            AlgebraError::RuleNotApplicable(s) => write!(f, "rule not applicable: {s}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for AlgebraError {
    fn from(e: StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

/// Result alias for algebra operations.
pub type Result<T> = std::result::Result<T, AlgebraError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = AlgebraError::Storage(StorageError::UnknownTable("t".into()));
        assert!(e.to_string().contains("unknown table"));
        assert!(e.source().is_some());
        assert!(AlgebraError::AmbiguousColumn("c".into())
            .to_string()
            .contains("`c`"));
    }
}
