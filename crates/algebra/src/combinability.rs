//! Combinability analysis for adjacent GPIVOTs (§4.2.3 of the paper).
//!
//! Deciding whether two stacked GPIVOTs merge into one is a property of the
//! two [`PivotSpec`]s alone — no data, no plan context — so the analysis
//! lives here in the algebra crate where both the rewrite engine
//! (`gpivot-core`) and the static plan analyzer (`gpivot-analyze`) can
//! reach it. The Figure 7 obstruction taxonomy is preserved verbatim in
//! [`CombineVerdict`].

use crate::plan::PivotSpec;
use std::collections::BTreeSet;
use std::fmt;

/// Verdict of the §4.2.3 combinability analysis for two adjacent GPIVOTs
/// (`outer` applied to the output of `inner`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CombineVerdict {
    /// Combinable via the composition rule (Eq. 6).
    Composition,
    /// Not combinable: the outer pivot leaves some pivoted output columns of
    /// the inner pivot in its key — data values would have to act as a key
    /// (Fig. 7, cases 1–2; violates observation (1)).
    PivotedColumnsInKey { leftover: Vec<String> },
    /// Not combinable: the outer pivot *pivots on* (consumes as measures the
    /// names of) inner pivoted columns, losing their encoded data values
    /// (Fig. 7, case 3; violates observation (3)).
    PivotedColumnsAsDimensions { used_as_by: Vec<String> },
    /// Not combinable: the outer pivot's measure list mixes inner pivoted
    /// columns with other columns, so output names cannot keep the
    /// `a1**…**am**Bj` structure (Fig. 7, case 4; violates observation (2)).
    MixedMeasures { extra: Vec<String> },
}

impl CombineVerdict {
    /// True iff the pair is combinable.
    pub fn is_combinable(&self) -> bool {
        matches!(self, CombineVerdict::Composition)
    }
}

impl fmt::Display for CombineVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CombineVerdict::Composition => write!(f, "combinable (composition, Eq. 6)"),
            CombineVerdict::PivotedColumnsInKey { leftover } => write!(
                f,
                "not combinable: pivoted columns {leftover:?} would remain in the key (Fig. 7 cases 1-2)"
            ),
            CombineVerdict::PivotedColumnsAsDimensions { used_as_by } => write!(
                f,
                "not combinable: pivoted columns {used_as_by:?} used as dimensions (Fig. 7 case 3)"
            ),
            CombineVerdict::MixedMeasures { extra } => write!(
                f,
                "not combinable: measure list mixes pivoted and plain columns {extra:?} (Fig. 7 case 4)"
            ),
        }
    }
}

/// Decide whether `outer` (applied to the output of `inner`) can be combined
/// with `inner` into a single GPIVOT — the completeness analysis of §4.2.3.
pub fn can_combine(inner: &PivotSpec, outer: &PivotSpec) -> CombineVerdict {
    let inner_outputs: BTreeSet<String> = inner.output_col_names().into_iter().collect();

    // Case 3: inner pivoted output columns used as outer dimensions — their
    // encoded data values (column names) would be lost.
    let used_as_by: Vec<String> = outer
        .by
        .iter()
        .filter(|c| inner_outputs.contains(*c))
        .cloned()
        .collect();
    if !used_as_by.is_empty() {
        return CombineVerdict::PivotedColumnsAsDimensions { used_as_by };
    }

    let outer_on: BTreeSet<String> = outer.on.iter().cloned().collect();

    // Cases 1-2: some inner pivoted output column is neither consumed as an
    // outer measure nor an outer dimension — it stays in the outer output
    // key, but it is data, not a key.
    let leftover: Vec<String> = inner_outputs
        .iter()
        .filter(|c| !outer_on.contains(*c))
        .cloned()
        .collect();
    if !leftover.is_empty() {
        return CombineVerdict::PivotedColumnsInKey { leftover };
    }

    // Case 4: outer measures include extra columns beyond the inner pivoted
    // outputs — the combined output names cannot keep the required
    // structure.
    let extra: Vec<String> = outer
        .on
        .iter()
        .filter(|c| !inner_outputs.contains(*c))
        .cloned()
        .collect();
    if !extra.is_empty() {
        return CombineVerdict::MixedMeasures { extra };
    }

    CombineVerdict::Composition
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::Value;

    fn inner() -> PivotSpec {
        PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")])
    }

    #[test]
    fn composition_verdict_when_all_outputs_consumed() {
        let outer = PivotSpec::new(
            vec!["Manu"],
            vec!["TV**Price", "VCR**Price"],
            vec![vec![Value::str("Sony")]],
        );
        assert_eq!(can_combine(&inner(), &outer), CombineVerdict::Composition);
    }

    #[test]
    fn fig7_case_1_2_leftover_pivoted_columns() {
        // Outer consumes only TV**Price; VCR**Price stays in the key.
        let outer = PivotSpec::new(
            vec!["Manu"],
            vec!["TV**Price"],
            vec![vec![Value::str("Sony")]],
        );
        match can_combine(&inner(), &outer) {
            CombineVerdict::PivotedColumnsInKey { leftover } => {
                assert_eq!(leftover, vec!["VCR**Price"]);
            }
            v => panic!("unexpected verdict {v}"),
        }
    }

    #[test]
    fn fig7_case_3_pivoted_column_as_dimension() {
        let outer = PivotSpec::new(
            vec!["TV**Price"],
            vec!["VCR**Price"],
            vec![vec![Value::Int(100)]],
        );
        assert!(matches!(
            can_combine(&inner(), &outer),
            CombineVerdict::PivotedColumnsAsDimensions { .. }
        ));
    }

    #[test]
    fn fig7_case_4_mixed_measures() {
        let outer = PivotSpec::new(
            vec!["Manu"],
            vec!["TV**Price", "VCR**Price", "Country"],
            vec![vec![Value::str("Sony")]],
        );
        assert!(matches!(
            can_combine(&inner(), &outer),
            CombineVerdict::MixedMeasures { .. }
        ));
    }
}
