//! Scalar expressions and predicates with SQL three-valued logic.
//!
//! Expressions are built over column *names* and later **bound** against a
//! concrete schema into index-addressed [`BoundExpr`]s, so per-row
//! evaluation does no name lookups — the usual plan/execute split.
//!
//! Two analyses here are load-bearing for the paper's rewriting machinery:
//!
//! * [`Expr::columns`] — the set of columns a predicate references, which
//!   decides *which* pullup/pushdown case applies (condition on key columns
//!   vs. on pivoted output columns, §5.1.1 / §5.2.1);
//! * [`Expr::is_null_intolerant`] — a conservative check that a predicate is
//!   false-or-unknown whenever any referenced column is `⊥`. The combined
//!   SELECT-over-GPIVOT update rules (Fig. 29) are only sound for
//!   null-intolerant conditions, and the engine enforces that.

use crate::error::Result;
use gpivot_storage::{DataType, Row, Schema, Value};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluate against an ordering.
    fn holds(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with swapped operands (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A scalar expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by name.
    Col(String),
    /// Literal value.
    Lit(Value),
    /// Three-valued comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Arithmetic (`NULL` absorbs).
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Three-valued conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Three-valued disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Three-valued negation.
    Not(Box<Expr>),
    /// `expr IS NULL` (two-valued).
    IsNull(Box<Expr>),
    /// `expr IN (v1, ..., vk)` over literals; `NULL` input yields unknown.
    InList(Box<Expr>, Vec<Value>),
    /// Searched CASE: first branch whose condition is true wins;
    /// otherwise the `else` expression.
    Case {
        branches: Vec<(Expr, Expr)>,
        otherwise: Box<Expr>,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self IS NULL`.
    pub fn is_null(self) -> Expr {
        Expr::IsNull(Box::new(self))
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// `self IN (values...)`.
    pub fn in_list(self, values: Vec<Value>) -> Expr {
        Expr::InList(Box::new(self), values)
    }

    /// Conjunction of several predicates (`true` literal when empty).
    pub fn conjunction(preds: Vec<Expr>) -> Expr {
        preds
            .into_iter()
            .reduce(Expr::and)
            .unwrap_or(Expr::Lit(Value::Bool(true)))
    }

    /// Disjunction of several predicates (`false` literal when empty).
    pub fn disjunction(preds: Vec<Expr>) -> Expr {
        preds
            .into_iter()
            .reduce(Expr::or)
            .unwrap_or(Expr::Lit(Value::Bool(false)))
    }

    /// All column names referenced by this expression.
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Col(c) => {
                out.insert(c.clone());
            }
            Expr::Lit(_) => {}
            Expr::Cmp(_, a, b) | Expr::Bin(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(a) | Expr::IsNull(a) => a.collect_columns(out),
            Expr::InList(a, _) => a.collect_columns(out),
            Expr::Case {
                branches,
                otherwise,
            } => {
                for (c, v) in branches {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                otherwise.collect_columns(out);
            }
        }
    }

    /// Conservative null-intolerance check: returns `true` only if the
    /// predicate is guaranteed **not** to evaluate to `true` whenever any
    /// referenced column is `⊥`.
    ///
    /// Comparisons, arithmetic, `IN`, conjunction/disjunction of
    /// null-intolerant parts qualify; `IS NULL`, `NOT`, and `CASE` do not
    /// (they can turn unknown into true).
    pub fn is_null_intolerant(&self) -> bool {
        match self {
            // A bare comparison is three-valued: NULL operand → unknown.
            Expr::Cmp(..) | Expr::InList(..) => true,
            Expr::And(a, b) => a.is_null_intolerant() && b.is_null_intolerant(),
            // For OR: with every disjunct null-intolerant, a row whose
            // *every* referenced column is NULL cannot satisfy it; but a row
            // with one non-NULL referenced column might. The paper's usage
            // (condition over pivoted output columns, delete case) needs
            // exactly: "if the row failed before, nulling more columns keeps
            // it failing" — which holds for monotone combinations of
            // null-intolerant atoms. AND/OR are monotone.
            Expr::Or(a, b) => a.is_null_intolerant() && b.is_null_intolerant(),
            Expr::Lit(Value::Bool(false)) => true,
            _ => false,
        }
    }

    /// Rename every column reference using `f` (used when rules move a
    /// predicate across a pivot, e.g. `Price` ⇄ `Sony**TV**Price`).
    pub fn rename_columns<F: Fn(&str) -> String>(&self, f: &F) -> Expr {
        match self {
            Expr::Col(c) => Expr::Col(f(c)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => Expr::Cmp(
                *op,
                Box::new(a.rename_columns(f)),
                Box::new(b.rename_columns(f)),
            ),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.rename_columns(f)),
                Box::new(b.rename_columns(f)),
            ),
            Expr::And(a, b) => {
                Expr::And(Box::new(a.rename_columns(f)), Box::new(b.rename_columns(f)))
            }
            Expr::Or(a, b) => {
                Expr::Or(Box::new(a.rename_columns(f)), Box::new(b.rename_columns(f)))
            }
            Expr::Not(a) => Expr::Not(Box::new(a.rename_columns(f))),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.rename_columns(f))),
            Expr::InList(a, vs) => Expr::InList(Box::new(a.rename_columns(f)), vs.clone()),
            Expr::Case {
                branches,
                otherwise,
            } => Expr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.rename_columns(f), v.rename_columns(f)))
                    .collect(),
                otherwise: Box::new(otherwise.rename_columns(f)),
            },
        }
    }

    /// Result type under `schema` (best effort; `Any` when unknown).
    pub fn data_type(&self, schema: &Schema) -> DataType {
        match self {
            Expr::Col(c) => schema
                .field(c)
                .map(|f| f.data_type)
                .unwrap_or(DataType::Any),
            Expr::Lit(v) => match v {
                Value::Null => DataType::Any,
                Value::Bool(_) => DataType::Bool,
                Value::Int(_) => DataType::Int,
                Value::Float(_) => DataType::Float,
                Value::Str(_) => DataType::Str,
                Value::Date(_) => DataType::Date,
            },
            Expr::Cmp(..)
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(_)
            | Expr::IsNull(_)
            | Expr::InList(..) => DataType::Bool,
            Expr::Bin(_, a, b) => match (a.data_type(schema), b.data_type(schema)) {
                (DataType::Int, DataType::Int) => DataType::Int,
                (DataType::Int | DataType::Float, DataType::Int | DataType::Float) => {
                    DataType::Float
                }
                _ => DataType::Any,
            },
            Expr::Case {
                branches,
                otherwise,
            } => branches
                .first()
                .map(|(_, v)| v.data_type(schema))
                .unwrap_or_else(|| otherwise.data_type(schema)),
        }
    }

    /// Bind against a schema, resolving names to indices.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(c) => BoundExpr::Col(schema.index_of(c)?),
            Expr::Lit(v) => BoundExpr::Lit(v.clone()),
            Expr::Cmp(op, a, b) => {
                BoundExpr::Cmp(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::Bin(op, a, b) => {
                BoundExpr::Bin(*op, Box::new(a.bind(schema)?), Box::new(b.bind(schema)?))
            }
            Expr::And(a, b) => BoundExpr::And(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Or(a, b) => BoundExpr::Or(Box::new(a.bind(schema)?), Box::new(b.bind(schema)?)),
            Expr::Not(a) => BoundExpr::Not(Box::new(a.bind(schema)?)),
            Expr::IsNull(a) => BoundExpr::IsNull(Box::new(a.bind(schema)?)),
            Expr::InList(a, vs) => BoundExpr::InList(Box::new(a.bind(schema)?), vs.clone()),
            Expr::Case {
                branches,
                otherwise,
            } => BoundExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| Ok((c.bind(schema)?, v.bind(schema)?)))
                    .collect::<Result<Vec<_>>>()?,
                otherwise: Box::new(otherwise.bind(schema)?),
            },
        })
    }

    /// Evaluate directly over a row under `schema` (test/one-shot path).
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<Value> {
        Ok(self.bind(schema)?.eval(row))
    }

    /// Evaluate as a predicate: `Some(true/false)` or `None` for unknown.
    pub fn eval_predicate(&self, schema: &Schema, row: &Row) -> Result<Option<bool>> {
        Ok(self.bind(schema)?.eval_predicate(row))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::And(a, b) => write!(f, "({a} AND {b})"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(a) => write!(f, "(NOT {a})"),
            Expr::IsNull(a) => write!(f, "({a} IS NULL)"),
            Expr::InList(a, vs) => {
                write!(f, "({a} IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "))")
            }
            Expr::Case {
                branches,
                otherwise,
            } => {
                write!(f, "CASE")?;
                for (c, v) in branches {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                write!(f, " ELSE {otherwise} END")
            }
        }
    }
}

/// An expression compiled against a schema: columns are positional.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    Col(usize),
    Lit(Value),
    Cmp(CmpOp, Box<BoundExpr>, Box<BoundExpr>),
    Bin(BinOp, Box<BoundExpr>, Box<BoundExpr>),
    And(Box<BoundExpr>, Box<BoundExpr>),
    Or(Box<BoundExpr>, Box<BoundExpr>),
    Not(Box<BoundExpr>),
    IsNull(Box<BoundExpr>),
    InList(Box<BoundExpr>, Vec<Value>),
    Case {
        branches: Vec<(BoundExpr, BoundExpr)>,
        otherwise: Box<BoundExpr>,
    },
}

impl BoundExpr {
    /// Evaluate over a row. Predicate sub-results use three-valued logic and
    /// surface as `Value::Null` when unknown.
    pub fn eval(&self, row: &Row) -> Value {
        match self {
            BoundExpr::Col(i) => row[*i].clone(),
            BoundExpr::Lit(v) => v.clone(),
            BoundExpr::Cmp(op, a, b) => match a.eval(row).compare(&b.eval(row)) {
                Some(ord) => Value::Bool(op.holds(ord)),
                None => Value::Null,
            },
            BoundExpr::Bin(op, a, b) => {
                let (x, y) = (a.eval(row), b.eval(row));
                if x.is_null() || y.is_null() {
                    return Value::Null;
                }
                match op {
                    BinOp::Add => x.numeric_add(&y),
                    BinOp::Sub => x.numeric_sub(&y),
                    BinOp::Mul => match (x, y) {
                        (Value::Int(a), Value::Int(b)) => Value::Int(a * b),
                        (a, b) => match (a.as_f64(), b.as_f64()) {
                            (Some(p), Some(q)) => Value::Float(p * q),
                            _ => Value::Null,
                        },
                    },
                    BinOp::Div => match (x.as_f64(), y.as_f64()) {
                        (Some(_), Some(0.0)) => Value::Null,
                        (Some(p), Some(q)) => Value::Float(p / q),
                        _ => Value::Null,
                    },
                }
            }
            BoundExpr::And(a, b) => match (to_tvl(a.eval(row)), to_tvl(b.eval(row))) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            },
            BoundExpr::Or(a, b) => match (to_tvl(a.eval(row)), to_tvl(b.eval(row))) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            },
            BoundExpr::Not(a) => match to_tvl(a.eval(row)) {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            },
            BoundExpr::IsNull(a) => Value::Bool(a.eval(row).is_null()),
            BoundExpr::InList(a, vs) => {
                let v = a.eval(row);
                if v.is_null() {
                    Value::Null
                } else {
                    Value::Bool(vs.contains(&v))
                }
            }
            BoundExpr::Case {
                branches,
                otherwise,
            } => {
                for (c, out) in branches {
                    if to_tvl(c.eval(row)) == Some(true) {
                        return out.eval(row);
                    }
                }
                otherwise.eval(row)
            }
        }
    }

    /// Evaluate as a predicate: `Some(bool)` or `None` (unknown).
    pub fn eval_predicate(&self, row: &Row) -> Option<bool> {
        to_tvl(self.eval(row))
    }

    /// Predicate that holds: unknown counts as false (SQL WHERE semantics).
    pub fn holds(&self, row: &Row) -> bool {
        self.eval_predicate(row) == Some(true)
    }
}

fn to_tvl(v: Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(b),
        Value::Null => None,
        // Non-boolean in a predicate position: treat as unknown rather than
        // panic; planners validate types ahead of time.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::row;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("s", DataType::Str),
        ])
        .unwrap()
    }

    #[test]
    fn comparison_three_valued() {
        let s = schema();
        let p = Expr::col("a").gt(Expr::lit(5));
        assert_eq!(p.eval_predicate(&s, &row![7, 0, "x"]).unwrap(), Some(true));
        assert_eq!(p.eval_predicate(&s, &row![3, 0, "x"]).unwrap(), Some(false));
        let null_row = Row::new(vec![Value::Null, Value::Int(0), Value::str("x")]);
        assert_eq!(p.eval_predicate(&s, &null_row).unwrap(), None);
    }

    #[test]
    fn and_or_kleene() {
        let s = schema();
        let unknown = Expr::col("a").gt(Expr::lit(5)); // a is NULL below
        let row = Row::new(vec![Value::Null, Value::Int(0), Value::str("x")]);
        // unknown AND false = false
        let p = unknown.clone().and(Expr::lit(false).eq(Expr::lit(true)));
        assert_eq!(p.eval_predicate(&s, &row).unwrap(), Some(false));
        // unknown OR true = true
        let p = unknown.clone().or(Expr::lit(1).eq(Expr::lit(1)));
        assert_eq!(p.eval_predicate(&s, &row).unwrap(), Some(true));
        // unknown OR false = unknown
        let p = unknown.or(Expr::lit(1).eq(Expr::lit(2)));
        assert_eq!(p.eval_predicate(&s, &row).unwrap(), None);
    }

    #[test]
    fn null_intolerance_analysis() {
        assert!(Expr::col("x").gt(Expr::lit(5)).is_null_intolerant());
        assert!(Expr::col("x")
            .gt(Expr::lit(5))
            .and(Expr::col("y").eq(Expr::lit(1)))
            .is_null_intolerant());
        assert!(Expr::col("x")
            .gt(Expr::lit(5))
            .or(Expr::col("y").eq(Expr::lit(1)))
            .is_null_intolerant());
        assert!(!Expr::col("x").is_null().is_null_intolerant());
        assert!(!Expr::col("x").gt(Expr::lit(5)).not().is_null_intolerant());
    }

    #[test]
    fn arithmetic_null_absorbs_and_div_zero() {
        let s = schema();
        let e = Expr::col("a").add(Expr::col("b"));
        assert_eq!(e.eval(&s, &row![2, 3, "x"]).unwrap(), Value::Int(5));
        let null_row = Row::new(vec![Value::Null, Value::Int(3), Value::str("x")]);
        assert!(e.eval(&s, &null_row).unwrap().is_null());
        let div = Expr::Bin(BinOp::Div, Box::new(Expr::col("a")), Box::new(Expr::lit(0)));
        assert!(div.eval(&s, &row![2, 3, "x"]).unwrap().is_null());
    }

    #[test]
    fn case_expression() {
        let s = schema();
        let e = Expr::Case {
            branches: vec![(Expr::col("a").gt(Expr::lit(0)), Expr::lit("pos"))],
            otherwise: Box::new(Expr::lit("neg")),
        };
        assert_eq!(e.eval(&s, &row![1, 0, "x"]).unwrap(), Value::str("pos"));
        assert_eq!(e.eval(&s, &row![-1, 0, "x"]).unwrap(), Value::str("neg"));
        // unknown condition falls through to ELSE
        let null_row = Row::new(vec![Value::Null, Value::Int(0), Value::str("x")]);
        assert_eq!(e.eval(&s, &null_row).unwrap(), Value::str("neg"));
    }

    #[test]
    fn in_list() {
        let s = schema();
        let e = Expr::col("s").in_list(vec![Value::str("x"), Value::str("y")]);
        assert_eq!(e.eval_predicate(&s, &row![0, 0, "x"]).unwrap(), Some(true));
        assert_eq!(e.eval_predicate(&s, &row![0, 0, "z"]).unwrap(), Some(false));
    }

    #[test]
    fn columns_collects_all() {
        let e = Expr::col("a")
            .gt(Expr::col("b"))
            .and(Expr::col("s").eq(Expr::lit("q")));
        let cols = e.columns();
        assert_eq!(
            cols.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string(), "s".to_string()]
        );
    }

    #[test]
    fn rename_columns_rewrites() {
        let e = Expr::col("a").gt(Expr::lit(1));
        let r = e.rename_columns(&|c| format!("x_{c}"));
        assert_eq!(r.columns().into_iter().collect::<Vec<_>>(), vec!["x_a"]);
    }

    #[test]
    fn bind_unknown_column_errors() {
        let s = schema();
        assert!(Expr::col("zzz").bind(&s).is_err());
    }

    #[test]
    fn display_round() {
        let e = Expr::col("a")
            .gt(Expr::lit(5))
            .and(Expr::col("s").eq(Expr::lit("x")));
        assert_eq!(e.to_string(), "((a > 5) AND (s = 'x'))");
    }

    #[test]
    fn conjunction_and_disjunction_empty() {
        let s = schema();
        let t = Expr::conjunction(vec![]);
        assert_eq!(t.eval_predicate(&s, &row![1, 2, "x"]).unwrap(), Some(true));
        let f = Expr::disjunction(vec![]);
        assert_eq!(f.eval_predicate(&s, &row![1, 2, "x"]).unwrap(), Some(false));
    }

    #[test]
    fn data_type_inference() {
        let s = schema();
        assert_eq!(Expr::col("a").data_type(&s), DataType::Int);
        assert_eq!(
            Expr::col("a").gt(Expr::lit(1)).data_type(&s),
            DataType::Bool
        );
        assert_eq!(
            Expr::col("a").add(Expr::col("b")).data_type(&s),
            DataType::Int
        );
    }
}
