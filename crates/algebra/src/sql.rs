//! SQL rendering of plans — the paper's §7.1 *non-intrusive* realization.
//!
//! The paper implements GPIVOT on a stock RDBMS as a GROUP-BY subquery:
//!
//! ```sql
//! SELECT K,
//!        max(case((A1..Am) = (a¹..), B1, ⊥)) AS "a¹**..**B1", ...
//! FROM V
//! WHERE (A1..Am) IN {(a¹..), ...}
//! GROUP BY K
//! ```
//!
//! [`Plan::to_sql`] renders any plan tree to that dialect (GPIVOT as the
//! GROUP-BY/CASE subquery, GUNPIVOT as a `UNION ALL` of per-group selects),
//! so a plan can be inspected, ported to a real DBMS, or diffed against the
//! paper's formulation. That lowering needs base-table schemas (the pivot
//! subqueries enumerate their carried `K` columns) and is one-way.
//!
//! [`Plan::to_sql_dialect`] renders the *native* dialect instead — GPIVOT /
//! GUNPIVOT appear as first-class postfix clauses on their FROM unit — and
//! is schema-free and round-trippable: the `gpivot-sql` crate parses exactly
//! this surface syntax back into the same plan shape.

use crate::aggregate::AggFunc;
use crate::expr::{BinOp, CmpOp, Expr};
use crate::plan::{JoinKind, Plan};
use gpivot_storage::Value;
use std::fmt::Write as _;

/// Keywords of the dialect, reserved by the `gpivot-sql` lexer (matched
/// case-insensitively). [`Plan::to_sql_dialect`] quotes any identifier that
/// collides with one so rendered SQL always re-parses.
pub const RESERVED: &[&str] = &[
    "ALL",
    "AND",
    "AS",
    "BY",
    "CASE",
    "CREATE",
    "DATE",
    "ELSE",
    "END",
    "EXCEPT",
    "EXPLAIN",
    "FALSE",
    "FOR",
    "FROM",
    "FULL",
    "GPIVOT",
    "GROUP",
    "GUNPIVOT",
    "IN",
    "INNER",
    "IS",
    "JOIN",
    "LEFT",
    "MATERIALIZED",
    "NOT",
    "NULL",
    "ON",
    "OR",
    "OUTER",
    "SELECT",
    "THEN",
    "TRUE",
    "UNION",
    "VIEW",
    "WHEN",
    "WHERE",
];

/// True iff `name` lexes back as a single bare identifier: leading letter or
/// underscore, alphanumeric tail, and not a reserved keyword.
fn is_bare_ident(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !RESERVED.iter().any(|k| k.eq_ignore_ascii_case(name))
}

/// Quote an identifier when needed (pivoted column names contain `*`,
/// and names may start with a digit or collide with a keyword).
fn ident(name: &str) -> String {
    if is_bare_ident(name) {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

/// Render a literal value.
fn literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(_) => format!("DATE '{v}'"),
    }
}

/// Render an expression.
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Col(c) => ident(c),
        Expr::Lit(v) => literal(v),
        Expr::Cmp(op, a, b) => {
            let op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {op} {})", expr_to_sql(a), expr_to_sql(b))
        }
        Expr::Bin(op, a, b) => {
            let op = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
            };
            format!("({} {op} {})", expr_to_sql(a), expr_to_sql(b))
        }
        Expr::And(a, b) => format!("({} AND {})", expr_to_sql(a), expr_to_sql(b)),
        Expr::Or(a, b) => format!("({} OR {})", expr_to_sql(a), expr_to_sql(b)),
        Expr::Not(a) => format!("(NOT {})", expr_to_sql(a)),
        Expr::IsNull(a) => format!("({} IS NULL)", expr_to_sql(a)),
        Expr::InList(a, vs) => {
            let items: Vec<String> = vs.iter().map(literal).collect();
            format!("({} IN ({}))", expr_to_sql(a), items.join(", "))
        }
        Expr::Case {
            branches,
            otherwise,
        } => {
            let mut s = String::from("CASE");
            for (c, v) in branches {
                let _ = write!(s, " WHEN {} THEN {}", expr_to_sql(c), expr_to_sql(v));
            }
            let _ = write!(s, " ELSE {} END", expr_to_sql(otherwise));
            s
        }
    }
}

/// Render a set-op operand, parenthesizing nested set ops (see the
/// `Plan::Union` arm of [`Plan::to_sql_dialect`]).
fn set_op_operand(p: &Plan) -> String {
    if matches!(p, Plan::Union { .. } | Plan::Diff { .. }) {
        format!(
            "SELECT *\nFROM (\n{}\n) sub",
            indent(&p.to_sql_dialect(), 2)
        )
    } else {
        p.to_sql_dialect()
    }
}

fn indent(sql: &str, by: usize) -> String {
    let pad = " ".repeat(by);
    sql.lines()
        .map(|l| format!("{pad}{l}"))
        .collect::<Vec<_>>()
        .join("\n")
}

impl Plan {
    /// Render the plan as SQL in the paper's §7.1 dialect.
    ///
    /// The provider supplies base-table schemas, which the pivot/unpivot
    /// subqueries need to enumerate their carried (`K`) columns.
    pub fn to_sql<P: crate::schema_infer::SchemaProvider>(
        &self,
        provider: &P,
    ) -> crate::error::Result<String> {
        self.to_sql_inner(provider)
    }

    fn to_sql_inner<P: crate::schema_infer::SchemaProvider>(
        &self,
        provider: &P,
    ) -> crate::error::Result<String> {
        Ok(match self {
            Plan::Scan { table } => format!("SELECT * FROM {}", ident(table)),

            Plan::Select { input, predicate } => {
                let sub = input.to_sql_inner(provider)?;
                format!(
                    "SELECT *\nFROM (\n{}\n) sub\nWHERE {}",
                    indent(&sub, 2),
                    expr_to_sql(predicate)
                )
            }

            Plan::Project { input, items } => {
                let sub = input.to_sql_inner(provider)?;
                let cols: Vec<String> = items
                    .iter()
                    .map(|(e, n)| {
                        let rendered = expr_to_sql(e);
                        if matches!(e, Expr::Col(c) if c == n) {
                            rendered
                        } else {
                            format!("{rendered} AS {}", ident(n))
                        }
                    })
                    .collect();
                format!(
                    "SELECT {}\nFROM (\n{}\n) sub",
                    cols.join(", "),
                    indent(&sub, 2)
                )
            }

            Plan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => {
                let l = left.to_sql_inner(provider)?;
                let r = right.to_sql_inner(provider)?;
                let join_kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::LeftOuter => "LEFT OUTER JOIN",
                    JoinKind::FullOuter => "FULL OUTER JOIN",
                };
                let mut conds: Vec<String> = on
                    .iter()
                    .map(|(a, b)| format!("l.{} = r.{}", ident(a), ident(b)))
                    .collect();
                if let Some(res) = residual {
                    conds.push(expr_to_sql(res));
                }
                let cond = if conds.is_empty() {
                    "TRUE".to_string()
                } else {
                    conds.join(" AND ")
                };
                format!(
                    "SELECT *\nFROM (\n{}\n) l\n{join_kw} (\n{}\n) r\n  ON {cond}",
                    indent(&l, 2),
                    indent(&r, 2)
                )
            }

            Plan::GroupBy {
                input,
                group_by,
                aggs,
            } => {
                let sub = input.to_sql_inner(provider)?;
                let mut cols: Vec<String> = group_by.iter().map(|g| ident(g)).collect();
                for a in aggs {
                    let rendered = match a.func {
                        AggFunc::CountStar => "count(*)".to_string(),
                        f => format!("{f}({})", ident(&a.input)),
                    };
                    cols.push(format!("{rendered} AS {}", ident(&a.output)));
                }
                let group = if group_by.is_empty() {
                    String::new()
                } else {
                    format!(
                        "\nGROUP BY {}",
                        group_by
                            .iter()
                            .map(|g| ident(g))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                format!(
                    "SELECT {}\nFROM (\n{}\n) sub{group}",
                    cols.join(", "),
                    indent(&sub, 2)
                )
            }

            Plan::Union { left, right } => {
                format!(
                    "{}\nUNION ALL\n{}",
                    left.to_sql_inner(provider)?,
                    right.to_sql_inner(provider)?
                )
            }

            Plan::Diff { left, right } => {
                format!(
                    "{}\nEXCEPT ALL\n{}",
                    left.to_sql_inner(provider)?,
                    right.to_sql_inner(provider)?
                )
            }

            Plan::GPivot { input, spec } => {
                // The paper's §7.1 GROUP-BY/CASE subquery.
                let in_schema = input.schema(provider)?;
                let k_cols = spec.validate(&in_schema)?;
                let sub = input.to_sql_inner(provider)?;
                let mut cols: Vec<String> = k_cols.iter().map(|k| ident(k)).collect();
                for (gi, g) in spec.groups.iter().enumerate() {
                    let cond: Vec<String> = spec
                        .by
                        .iter()
                        .zip(g)
                        .map(|(a, v)| format!("{} = {}", ident(a), literal(v)))
                        .collect();
                    for (bj, b) in spec.on.iter().enumerate() {
                        cols.push(format!(
                            "max(CASE WHEN {} THEN {} ELSE NULL END) AS {}",
                            cond.join(" AND "),
                            ident(b),
                            ident(&spec.col_name(gi, bj))
                        ));
                    }
                }
                let in_list: Vec<String> = spec
                    .groups
                    .iter()
                    .map(|g| {
                        let vals: Vec<String> = g.iter().map(literal).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                let by_tuple: Vec<String> = spec.by.iter().map(|a| ident(a)).collect();
                format!(
                    "SELECT {}\nFROM (\n{}\n) sub\nWHERE ({}) IN ({})\nGROUP BY {}",
                    cols.join(",\n       "),
                    indent(&sub, 2),
                    by_tuple.join(", "),
                    in_list.join(", "),
                    k_cols
                        .iter()
                        .map(|k| ident(k))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }

            Plan::GUnpivot { input, spec } => {
                // UNION ALL of one select per group, skipping all-⊥ groups
                // (stock-RDBMS lowering; see `to_sql_dialect` for the native
                // clause form).
                let in_schema = input.schema(provider)?;
                let k_cols = spec.validate(&in_schema)?;
                let sub = input.to_sql_inner(provider)?;
                let mut branches = Vec::with_capacity(spec.groups.len());
                for g in &spec.groups {
                    let mut cols: Vec<String> = k_cols.iter().map(|k| ident(k)).collect();
                    for (nc, tag) in spec.name_cols.iter().zip(&g.tags) {
                        cols.push(format!("{} AS {}", literal(tag), ident(nc)));
                    }
                    for (vc, src) in spec.value_cols.iter().zip(&g.cols) {
                        cols.push(format!("{} AS {}", ident(src), ident(vc)));
                    }
                    let not_null: Vec<String> = g
                        .cols
                        .iter()
                        .map(|c| format!("{} IS NOT NULL", ident(c)))
                        .collect();
                    branches.push(format!(
                        "SELECT {}\nFROM (\n{}\n) sub\nWHERE {}",
                        cols.join(", "),
                        indent(&sub, 2),
                        not_null.join(" OR ")
                    ));
                }
                branches.join("\nUNION ALL\n")
            }
        })
    }

    /// Render the plan in the **native** GPIVOT/GUNPIVOT dialect that the
    /// `gpivot-sql` parser accepts.
    ///
    /// Unlike [`Plan::to_sql`] this needs no schema provider: pivots render
    /// as postfix clauses on their FROM unit instead of being lowered to
    /// GROUP-BY/CASE subqueries, so the carried `K` columns never have to be
    /// enumerated. The rendering is a fixed point of parse∘render — parsing
    /// the output and rendering again reproduces the same string — which the
    /// round-trip property tests in `gpivot-sql` rely on.
    ///
    /// ```sql
    /// SELECT *
    /// FROM (
    ///   SELECT * FROM iteminfo
    /// ) sub
    /// GPIVOT (val BY attr IN (('Manufacturer'), ('Type')))
    /// ```
    pub fn to_sql_dialect(&self) -> String {
        fn ident_list(names: &[String]) -> String {
            names
                .iter()
                .map(|n| ident(n))
                .collect::<Vec<_>>()
                .join(", ")
        }
        match self {
            Plan::Scan { table } => format!("SELECT * FROM {}", ident(table)),

            Plan::Select { input, predicate } => format!(
                "SELECT *\nFROM (\n{}\n) sub\nWHERE {}",
                indent(&input.to_sql_dialect(), 2),
                expr_to_sql(predicate)
            ),

            Plan::Project { input, items } => {
                let cols: Vec<String> = items
                    .iter()
                    .map(|(e, n)| {
                        let rendered = expr_to_sql(e);
                        if matches!(e, Expr::Col(c) if c == n) {
                            rendered
                        } else {
                            format!("{rendered} AS {}", ident(n))
                        }
                    })
                    .collect();
                format!(
                    "SELECT {}\nFROM (\n{}\n) sub",
                    cols.join(", "),
                    indent(&input.to_sql_dialect(), 2)
                )
            }

            Plan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => {
                let join_kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::LeftOuter => "LEFT OUTER JOIN",
                    JoinKind::FullOuter => "FULL OUTER JOIN",
                };
                let mut conds: Vec<String> = on
                    .iter()
                    .map(|(a, b)| format!("l.{} = r.{}", ident(a), ident(b)))
                    .collect();
                if let Some(res) = residual {
                    conds.push(expr_to_sql(res));
                }
                let cond = if conds.is_empty() {
                    "TRUE".to_string()
                } else {
                    conds.join(" AND ")
                };
                format!(
                    "SELECT *\nFROM (\n{}\n) l\n{join_kw} (\n{}\n) r\n  ON {cond}",
                    indent(&left.to_sql_dialect(), 2),
                    indent(&right.to_sql_dialect(), 2)
                )
            }

            Plan::GroupBy {
                input,
                group_by,
                aggs,
            } => {
                let mut cols: Vec<String> = group_by.iter().map(|g| ident(g)).collect();
                for a in aggs {
                    let rendered = match a.func {
                        AggFunc::CountStar => "count(*)".to_string(),
                        f => format!("{f}({})", ident(&a.input)),
                    };
                    cols.push(format!("{rendered} AS {}", ident(&a.output)));
                }
                let group = if group_by.is_empty() {
                    String::new()
                } else {
                    format!("\nGROUP BY {}", ident_list(group_by))
                };
                format!(
                    "SELECT {}\nFROM (\n{}\n) sub{group}",
                    cols.join(", "),
                    indent(&input.to_sql_dialect(), 2)
                )
            }

            // UNION ALL / EXCEPT ALL parse left-associative, so a set-op
            // *right* operand that is itself a set op must be wrapped in a
            // subquery (which lowers back to the same plan) to keep the
            // rendered text a parse∘render fixed point.
            Plan::Union { left, right } => format!(
                "{}\nUNION ALL\n{}",
                left.to_sql_dialect(),
                set_op_operand(right)
            ),

            Plan::Diff { left, right } => format!(
                "{}\nEXCEPT ALL\n{}",
                left.to_sql_dialect(),
                set_op_operand(right)
            ),

            Plan::GPivot { input, spec } => {
                let groups: Vec<String> = spec
                    .groups
                    .iter()
                    .map(|g| {
                        let vals: Vec<String> = g.iter().map(literal).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                format!(
                    "SELECT *\nFROM (\n{}\n) sub\nGPIVOT ({} BY {} IN ({}))",
                    indent(&input.to_sql_dialect(), 2),
                    ident_list(&spec.on),
                    ident_list(&spec.by),
                    groups.join(", ")
                )
            }

            Plan::GUnpivot { input, spec } => {
                let groups: Vec<String> = spec
                    .groups
                    .iter()
                    .map(|g| {
                        let cols: Vec<String> = g.cols.iter().map(|c| ident(c)).collect();
                        let tags: Vec<String> = g.tags.iter().map(literal).collect();
                        format!("({}) AS ({})", cols.join(", "), tags.join(", "))
                    })
                    .collect();
                format!(
                    "SELECT *\nFROM (\n{}\n) sub\nGUNPIVOT ({} FOR {} IN ({}))",
                    indent(&input.to_sql_dialect(), 2),
                    ident_list(&spec.value_cols),
                    ident_list(&spec.name_cols),
                    groups.join(", ")
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PivotSpec, UnpivotSpec};
    use gpivot_storage::{DataType, Schema};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, gpivot_storage::SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "iteminfo".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("id", DataType::Int),
                        ("attr", DataType::Str),
                        ("val", DataType::Str),
                    ],
                    &["id", "attr"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn fig1_spec() -> PivotSpec {
        PivotSpec::simple(
            "attr",
            "val",
            vec![Value::str("Manufacturer"), Value::str("Type")],
        )
    }

    #[test]
    fn gpivot_renders_the_papers_subquery() {
        let p = provider();
        let sql = Plan::scan("iteminfo")
            .gpivot(fig1_spec())
            .to_sql(&p)
            .unwrap();
        assert!(sql.contains("max(CASE WHEN attr = 'Manufacturer' THEN val ELSE NULL END)"));
        assert!(sql.contains("WHERE (attr) IN (('Manufacturer'), ('Type'))"));
        assert!(sql.contains("GROUP BY id"));
        assert!(sql.contains("\"Manufacturer**val\""));
    }

    #[test]
    fn gunpivot_renders_union_all() {
        let p = provider();
        let spec = fig1_spec();
        let sql = Plan::scan("iteminfo")
            .gpivot(spec.clone())
            .gunpivot(UnpivotSpec::reversing(&spec))
            .to_sql(&p)
            .unwrap();
        assert!(sql.contains("UNION ALL"));
        assert!(sql.contains("'Manufacturer' AS attr"));
        assert!(sql.contains("IS NOT NULL"));
    }

    #[test]
    fn select_and_literals_escape() {
        let p = provider();
        let sql = Plan::scan("iteminfo")
            .select(Expr::col("val").eq(Expr::lit("O'Hara")))
            .to_sql(&p)
            .unwrap();
        assert!(sql.contains("'O''Hara'"));
    }

    #[test]
    fn group_by_renders_aggregates() {
        let p = provider();
        let sql = Plan::scan("iteminfo")
            .group_by(
                &["attr"],
                vec![
                    crate::aggregate::AggSpec::count_star("n"),
                    crate::aggregate::AggSpec::max("val", "m"),
                ],
            )
            .to_sql(&p)
            .unwrap();
        assert!(sql.contains("count(*) AS n"));
        assert!(sql.contains("max(val) AS m"));
        assert!(sql.contains("GROUP BY attr"));
    }

    #[test]
    fn dialect_renders_native_pivot_clause() {
        let sql = Plan::scan("iteminfo").gpivot(fig1_spec()).to_sql_dialect();
        assert!(sql.contains("GPIVOT (val BY attr IN (('Manufacturer'), ('Type')))"));
        // Schema-free: no K-column enumeration, no CASE lowering.
        assert!(!sql.contains("CASE"));
    }

    #[test]
    fn dialect_renders_native_unpivot_clause() {
        let spec = fig1_spec();
        let sql = Plan::scan("iteminfo")
            .gpivot(spec.clone())
            .gunpivot(UnpivotSpec::reversing(&spec))
            .to_sql_dialect();
        assert!(sql.contains("GUNPIVOT (val FOR attr IN ("));
        assert!(sql.contains("AS ('Manufacturer')"));
    }

    #[test]
    fn idents_colliding_with_keywords_or_digits_are_quoted() {
        // Reserved words (any case) and digit-leading names must quote so
        // the rendered SQL re-lexes as identifiers, not keywords/numbers.
        assert_eq!(ident("select"), "\"select\"");
        assert_eq!(ident("Group"), "\"Group\"");
        assert_eq!(ident("1995**sum_price"), "\"1995**sum_price\"");
        assert_eq!(ident("2col"), "\"2col\"");
        assert_eq!(ident(""), "\"\"");
        assert_eq!(ident("o_year"), "o_year");
    }

    #[test]
    fn join_renders_on_clause() {
        let mut p = provider();
        p.insert(
            "other".to_string(),
            Arc::new(Schema::from_pairs_keyed(&[("oid", DataType::Int)], &["oid"]).unwrap()),
        );
        let sql = Plan::scan("iteminfo")
            .join(Plan::scan("other"), vec![("id", "oid")])
            .to_sql(&p)
            .unwrap();
        assert!(sql.contains("JOIN"));
        assert!(sql.contains("l.id = r.oid"));
    }
}
