//! The pivoted-column naming protocol.
//!
//! §4.1 of the paper: GPIVOT output columns are named
//! `a1**a2**…**am**Bj` — the dimension values joined with `**`, followed by
//! the measure column name. GUNPIVOT decodes such names back into data
//! values, so the encoding must round-trip even when a data value itself
//! contains `*`. We escape `\` as `\\` and `*` as `\*` inside segments.

use gpivot_storage::Value;

/// Separator between encoded segments.
pub const SEP: &str = "**";

/// Escape one segment.
fn escape(seg: &str) -> String {
    let mut out = String::with_capacity(seg.len());
    for c in seg.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '*' => out.push_str("\\*"),
            _ => out.push(c),
        }
    }
    out
}

/// Unescape one segment.
fn unescape(seg: &str) -> String {
    let mut out = String::with_capacity(seg.len());
    let mut chars = seg.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            if let Some(n) = chars.next() {
                out.push(n);
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Render a dimension value as a name segment.
///
/// String values are used verbatim; other values use their display form
/// (`⊥` never appears — pivot output parameters are concrete values).
pub fn value_segment(v: &Value) -> String {
    v.to_string()
}

/// Encode a pivoted output column name from dimension values `tags` and the
/// measure column `measure`: `a1**…**am**Bj`.
///
/// Tag segments are escaped (so data values containing `*` round-trip); the
/// measure name is appended **verbatim**. That makes the encoding
/// *compositional*: pivoting a column that is itself a pivoted output yields
/// `outer_tags**inner_tags**Bj`, exactly the name the combined GPIVOT of the
/// composition rule (Eq. 6) produces — so combined and sequential pivots
/// agree on output names, as the paper's completeness argument (§4.2.3)
/// requires.
pub fn encode_pivot_col(tags: &[Value], measure: &str) -> String {
    let mut parts: Vec<String> = tags.iter().map(|t| escape(&value_segment(t))).collect();
    parts.push(measure.to_string());
    parts.join(SEP)
}

/// Split an encoded name into raw (unescaped) segments.
///
/// Returns `None` if the name is not a valid encoding.
pub fn split_segments(name: &str) -> Option<Vec<String>> {
    let chars: Vec<char> = name.chars().collect();
    let mut segments = Vec::new();
    let mut cur = String::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' {
            if i + 1 >= chars.len() {
                return None; // dangling escape
            }
            cur.push('\\');
            cur.push(chars[i + 1]);
            i += 2;
        } else if c == '*' && i + 1 < chars.len() && chars[i + 1] == '*' {
            segments.push(std::mem::take(&mut cur));
            i += 2;
        } else {
            cur.push(c);
            i += 1;
        }
    }
    segments.push(cur);
    Some(segments.into_iter().map(|s| unescape(&s)).collect())
}

/// Decode a pivoted output column name given the dimension arity `m`:
/// returns `(tag_segments, measure)` or `None` if the name has too few
/// segments. Tags come back as *strings* — callers who know the original
/// dimension column types may re-parse.
///
/// Because the measure part is appended verbatim by [`encode_pivot_col`],
/// any segments beyond the first `m` belong to the measure name and are
/// re-joined (re-escaped) so that composed names decode to the exact inner
/// column name.
pub fn decode_pivot_col(name: &str, m: usize) -> Option<(Vec<String>, String)> {
    let segs = split_segments(name)?;
    if segs.len() < m + 1 {
        return None;
    }
    let measure = if segs.len() == m + 1 {
        // Plain measure name (may itself contain literal `*`).
        segs[m].clone()
    } else {
        // Composed name: the measure is itself an encoded pivot column;
        // re-escape so the exact inner column name is reconstructed.
        segs[m..]
            .iter()
            .map(|s| escape(s))
            .collect::<Vec<_>>()
            .join(SEP)
    };
    Some((segs[..m].to_vec(), measure))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_basic() {
        let name = encode_pivot_col(&[Value::str("Sony"), Value::str("TV")], "Price");
        assert_eq!(name, "Sony**TV**Price");
    }

    #[test]
    fn decode_basic() {
        let (tags, measure) = decode_pivot_col("Sony**TV**Price", 2).unwrap();
        assert_eq!(tags, vec!["Sony", "TV"]);
        assert_eq!(measure, "Price");
    }

    #[test]
    fn roundtrip_with_stars_in_values() {
        let tags = [Value::str("A*B"), Value::str("**")];
        let name = encode_pivot_col(&tags, "M*");
        let (dec_tags, measure) = decode_pivot_col(&name, 2).unwrap();
        assert_eq!(dec_tags, vec!["A*B", "**"]);
        assert_eq!(measure, "M*");
    }

    #[test]
    fn roundtrip_with_backslashes() {
        let tags = [Value::str("a\\b")];
        let name = encode_pivot_col(&tags, "m");
        let (dec, measure) = decode_pivot_col(&name, 1).unwrap();
        assert_eq!(dec, vec!["a\\b"]);
        assert_eq!(measure, "m");
    }

    #[test]
    fn numeric_tags_use_display() {
        let name = encode_pivot_col(&[Value::Int(1995)], "Sum");
        assert_eq!(name, "1995**Sum");
        let (tags, _) = decode_pivot_col(&name, 1).unwrap();
        assert_eq!(tags, vec!["1995"]);
    }

    #[test]
    fn arity_handling() {
        // Too few segments → None.
        assert!(decode_pivot_col("Price", 1).is_none());
        // Extra segments fold into the measure (compositional decode).
        let (tags, measure) = decode_pivot_col("Sony**TV**Price", 1).unwrap();
        assert_eq!(tags, vec!["Sony"]);
        assert_eq!(measure, "TV**Price");
    }

    #[test]
    fn encoding_is_compositional() {
        // Pivoting an already-pivoted column must yield the same name the
        // combined GPIVOT (Eq. 6) would produce.
        let inner = encode_pivot_col(&[Value::str("Sony"), Value::str("TV")], "Price");
        let outer = encode_pivot_col(&[Value::str("Credit")], &inner);
        let combined = encode_pivot_col(
            &[Value::str("Credit"), Value::str("Sony"), Value::str("TV")],
            "Price",
        );
        assert_eq!(outer, combined);
        // Decoding the composed name at the outer arity recovers the exact
        // inner column name.
        let (tags, measure) = decode_pivot_col(&outer, 1).unwrap();
        assert_eq!(tags, vec!["Credit"]);
        assert_eq!(measure, inner);
    }

    #[test]
    fn compositional_decode_reescapes_inner_tags() {
        let inner = encode_pivot_col(&[Value::str("x*y")], "m");
        let outer = encode_pivot_col(&[Value::str("Credit")], &inner);
        let (tags, measure) = decode_pivot_col(&outer, 1).unwrap();
        assert_eq!(tags, vec!["Credit"]);
        assert_eq!(measure, inner);
    }

    #[test]
    fn single_star_is_data() {
        let segs = split_segments("a*b**c").unwrap();
        assert_eq!(segs, vec!["a*b", "c"]);
    }
}
