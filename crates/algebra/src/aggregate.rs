//! Aggregate function specifications for `GROUPBY` nodes.
//!
//! The maintenance framework cares about *self-maintainability*: `SUM`,
//! `COUNT` and `COUNT(*)` can be maintained under both inserts and deletes
//! from deltas alone (the paper restricts Fig. 27 to exactly these, plus the
//! algebraic extension to `AVG`), while `MIN`/`MAX` may need recomputation
//! on deletes. [`AggFunc::self_maintainable`] encodes that.

use std::fmt;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `SUM(col)` — NULLs ignored; NULL (not 0) over an all-NULL/empty group.
    Sum,
    /// `COUNT(col)` — counts non-NULL inputs.
    Count,
    /// `COUNT(*)` — counts rows; ignores its input column.
    CountStar,
    /// `AVG(col)` — maintained algebraically as SUM/COUNT.
    Avg,
    /// `MIN(col)` — not self-maintainable under deletes.
    Min,
    /// `MAX(col)` — not self-maintainable under deletes.
    Max,
}

impl AggFunc {
    /// True iff this aggregate is maintainable from deltas alone under both
    /// inserts and deletes (distributive over bag union/difference, or
    /// algebraic over such functions).
    pub fn self_maintainable(&self) -> bool {
        matches!(
            self,
            AggFunc::Sum | AggFunc::Count | AggFunc::CountStar | AggFunc::Avg
        )
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::CountStar => "count(*)",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        f.write_str(s)
    }
}

/// One aggregate in a `GROUPBY`: a function, its input column (ignored for
/// `COUNT(*)`), and the output column name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggSpec {
    pub func: AggFunc,
    /// Input column name; empty for `COUNT(*)`.
    pub input: String,
    /// Output column name.
    pub output: String,
}

impl AggSpec {
    /// `SUM(input) AS output`.
    pub fn sum(input: impl Into<String>, output: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::Sum,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `COUNT(input) AS output`.
    pub fn count(input: impl Into<String>, output: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::Count,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `COUNT(*) AS output`.
    pub fn count_star(output: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::CountStar,
            input: String::new(),
            output: output.into(),
        }
    }

    /// `AVG(input) AS output`.
    pub fn avg(input: impl Into<String>, output: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::Avg,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `MIN(input) AS output`.
    pub fn min(input: impl Into<String>, output: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::Min,
            input: input.into(),
            output: output.into(),
        }
    }

    /// `MAX(input) AS output`.
    pub fn max(input: impl Into<String>, output: impl Into<String>) -> Self {
        AggSpec {
            func: AggFunc::Max,
            input: input.into(),
            output: output.into(),
        }
    }
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            AggFunc::CountStar => write!(f, "count(*) AS {}", self.output),
            func => write!(f, "{func}({}) AS {}", self.input, self.output),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_maintainability() {
        assert!(AggFunc::Sum.self_maintainable());
        assert!(AggFunc::CountStar.self_maintainable());
        assert!(AggFunc::Avg.self_maintainable());
        assert!(!AggFunc::Min.self_maintainable());
        assert!(!AggFunc::Max.self_maintainable());
    }

    #[test]
    fn display() {
        assert_eq!(
            AggSpec::sum("price", "total").to_string(),
            "sum(price) AS total"
        );
        assert_eq!(AggSpec::count_star("cnt").to_string(), "count(*) AS cnt");
    }
}
