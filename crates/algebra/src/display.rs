//! `EXPLAIN`-style pretty printing of plan trees.
//!
//! [`Plan::explain`] renders an indented operator tree; the `Display`
//! impl delegates to it. The rewrite driver logs before/after trees
//! with this, and the `rewrite_explorer` example walks rule applications.

use crate::plan::Plan;
use std::fmt;
use std::fmt::Write as _;

impl Plan {
    /// Render the plan as an indented operator tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::Scan { table } => {
                let _ = writeln!(out, "{pad}Scan {table}");
            }
            Plan::Select { input, predicate } => {
                let _ = writeln!(out, "{pad}Select σ[{predicate}]");
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, items } => {
                let rendered: Vec<String> = items
                    .iter()
                    .map(|(e, n)| match e {
                        crate::expr::Expr::Col(c) if c == n => c.clone(),
                        _ => format!("{e} AS {n}"),
                    })
                    .collect();
                let _ = writeln!(out, "{pad}Project π[{}]", rendered.join(", "));
                input.explain_into(out, depth + 1);
            }
            Plan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                let mut line = format!("{pad}Join {kind} ⋈[{}]", conds.join(" ∧ "));
                if let Some(res) = residual {
                    let _ = write!(line, " residual[{res}]");
                }
                let _ = writeln!(out, "{line}");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::GroupBy {
                input,
                group_by,
                aggs,
            } => {
                let agg_strs: Vec<String> = aggs.iter().map(|a| a.to_string()).collect();
                let _ = writeln!(
                    out,
                    "{pad}GroupBy 𝓕[{} ; {}]",
                    group_by.join(", "),
                    agg_strs.join(", ")
                );
                input.explain_into(out, depth + 1);
            }
            Plan::Union { left, right } => {
                let _ = writeln!(out, "{pad}Union ⊎");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Diff { left, right } => {
                let _ = writeln!(out, "{pad}Diff ∸");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::GPivot { input, spec } => {
                let _ = writeln!(out, "{pad}{spec}");
                input.explain_into(out, depth + 1);
            }
            Plan::GUnpivot { input, spec } => {
                let _ = writeln!(out, "{pad}{spec}");
                input.explain_into(out, depth + 1);
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::PivotSpec;
    use gpivot_storage::Value;

    #[test]
    fn explain_shows_tree() {
        let plan = Plan::scan("lineitem")
            .gpivot(PivotSpec::simple(
                "linenumber",
                "price",
                vec![Value::Int(1), Value::Int(2)],
            ))
            .select(Expr::col("1**price").gt(Expr::lit(100)));
        let s = plan.explain();
        assert!(s.contains("Select"));
        assert!(s.contains("GPIVOT"));
        assert!(s.contains("Scan lineitem"));
        // pivot is indented one level under select
        assert!(s.lines().nth(1).unwrap().starts_with("  GPIVOT"));
    }

    #[test]
    fn project_renders_aliases() {
        let plan = Plan::scan("t").project(vec![
            (Expr::col("a"), "a".into()),
            (Expr::col("b"), "bb".into()),
        ]);
        let s = plan.explain();
        assert!(s.contains("π[a, b AS bb]"));
    }
}
