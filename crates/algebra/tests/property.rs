//! Property-based tests for the algebra layer: the pivoted-column naming
//! protocol and the three-valued predicate semantics the rewrite rules
//! depend on.

use gpivot_algebra::{decode_pivot_col, encode_pivot_col, BinOp, CmpOp, Expr};
use gpivot_storage::{DataType, Row, Schema, Value};
use proptest::prelude::*;

fn arb_segment() -> impl Strategy<Value = String> {
    // Segments stressing the escaping: stars, backslashes, unicode.
    proptest::string::string_regex("[a-z*\\\\⊥]{0,6}").unwrap()
}

proptest! {
    #[test]
    fn pivot_name_roundtrip(
        tags in prop::collection::vec(arb_segment(), 1..4),
        measure in "[a-z_]{1,8}",
    ) {
        let tag_values: Vec<Value> = tags.iter().map(Value::str).collect();
        let name = encode_pivot_col(&tag_values, &measure);
        let (dec_tags, dec_measure) = decode_pivot_col(&name, tags.len())
            .expect("well-formed name decodes");
        prop_assert_eq!(dec_tags, tags);
        prop_assert_eq!(dec_measure, measure);
    }

    #[test]
    fn composed_pivot_names_are_associative(
        outer_tag in arb_segment(),
        inner_tag in arb_segment(),
        measure in "[a-z]{1,5}",
    ) {
        // encode(o, encode(i, m)) == encode([o, i], m) — the property the
        // composition rule (Eq. 6) relies on.
        let inner = encode_pivot_col(&[Value::str(&inner_tag)], &measure);
        let nested = encode_pivot_col(&[Value::str(&outer_tag)], &inner);
        let flat = encode_pivot_col(
            &[Value::str(&outer_tag), Value::str(&inner_tag)],
            &measure,
        );
        prop_assert_eq!(nested, flat);
    }
}

// ── three-valued predicate semantics ─────────────────────────────────────

/// Random null-intolerant predicate over columns c0..c2 (comparisons glued
/// with AND/OR — exactly the class `is_null_intolerant` accepts).
fn arb_null_intolerant(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = (
        0usize..3,
        -5i64..5,
        prop_oneof![
            Just(CmpOp::Eq),
            Just(CmpOp::Ne),
            Just(CmpOp::Lt),
            Just(CmpOp::Le),
            Just(CmpOp::Gt),
            Just(CmpOp::Ge)
        ],
    )
        .prop_map(|(c, lit, op)| {
            Expr::Cmp(
                op,
                Box::new(Expr::col(format!("c{c}"))),
                Box::new(Expr::lit(lit)),
            )
        })
        .boxed();
    if depth == 0 {
        return leaf;
    }
    let sub = arb_null_intolerant(depth - 1);
    prop_oneof![
        leaf,
        (sub.clone(), sub.clone()).prop_map(|(a, b)| a.and(b)),
        (sub.clone(), sub).prop_map(|(a, b)| a.or(b)),
    ]
    .boxed()
}

fn schema3() -> Schema {
    Schema::from_pairs(&[
        ("c0", DataType::Int),
        ("c1", DataType::Int),
        ("c2", DataType::Int),
    ])
    .unwrap()
}

proptest! {
    #[test]
    fn null_intolerant_predicates_never_hold_on_all_null(p in arb_null_intolerant(3)) {
        prop_assert!(p.is_null_intolerant());
        let schema = schema3();
        let all_null = Row::new(vec![Value::Null, Value::Null, Value::Null]);
        let bound = p.bind(&schema).unwrap();
        prop_assert_ne!(bound.eval_predicate(&all_null), Some(true));
    }

    /// Monotonicity under nulling (the property Fig. 29's delete rule needs):
    /// if a row fails a null-intolerant predicate, nulling more of its
    /// columns keeps it failing.
    #[test]
    fn nulling_columns_cannot_make_failing_rows_pass(
        p in arb_null_intolerant(3),
        vals in prop::collection::vec(prop_oneof![Just(None), (-5i64..5).prop_map(Some)], 3),
        mask in prop::collection::vec(any::<bool>(), 3),
    ) {
        let schema = schema3();
        let bound = p.bind(&schema).unwrap();
        let to_value = |v: &Option<i64>| v.map(Value::Int).unwrap_or(Value::Null);
        let row = Row::new(vals.iter().map(to_value).collect());
        if bound.eval_predicate(&row) != Some(true) {
            let nulled = Row::new(
                vals.iter()
                    .zip(&mask)
                    .map(|(v, &m)| if m { Value::Null } else { to_value(v) })
                    .collect(),
            );
            prop_assert_ne!(bound.eval_predicate(&nulled), Some(true));
        }
    }

    #[test]
    fn kleene_and_or_agree_with_reference(
        a in prop_oneof![Just(None), Just(Some(true)), Just(Some(false))],
        b in prop_oneof![Just(None), Just(Some(true)), Just(Some(false))],
    ) {
        let schema = Schema::from_pairs(&[("x", DataType::Bool), ("y", DataType::Bool)]).unwrap();
        let to_value = |v: Option<bool>| v.map(Value::Bool).unwrap_or(Value::Null);
        let row = Row::new(vec![to_value(a), to_value(b)]);
        let and = Expr::col("x").and(Expr::col("y")).bind(&schema).unwrap();
        let or = Expr::col("x").or(Expr::col("y")).bind(&schema).unwrap();
        // Kleene reference.
        let and_ref = match (a, b) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        };
        let or_ref = match (a, b) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        };
        prop_assert_eq!(and.eval_predicate(&row), and_ref);
        prop_assert_eq!(or.eval_predicate(&row), or_ref);
    }

    #[test]
    fn arithmetic_absorbs_null(op in prop_oneof![
        Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div)
    ], v in -10i64..10) {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let e = Expr::Bin(op, Box::new(Expr::col("x")), Box::new(Expr::lit(v)));
        let bound = e.bind(&schema).unwrap();
        prop_assert!(bound.eval(&Row::new(vec![Value::Null])).is_null());
    }
}
