//! Property-based tests for the storage substrate: the signed-multiset
//! delta algebra, value ordering/hashing laws, and keyed-table invariants.

use gpivot_storage::{Catalog, DataType, Delta, Row, Schema, Table, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(Value::Int),
        (-50i64..50).prop_map(|i| Value::Float(i as f64 / 2.0)),
        "[a-c]{0,3}".prop_map(Value::str),
        (-100i32..100).prop_map(Value::Date),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), 1..4).prop_map(Row::new)
}

fn arb_delta() -> impl Strategy<Value = Delta> {
    prop::collection::vec((arb_row(), -3i64..=3), 0..12)
        .prop_map(|entries| entries.into_iter().collect())
}

proptest! {
    #[test]
    fn value_total_order_is_antisymmetric_and_consistent(a in arb_value(), b in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        prop_assert_eq!(ab == Ordering::Equal, a == b);
    }

    #[test]
    fn value_order_is_transitive(a in arb_value(), b in arb_value(), c in arb_value()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn sql_eq_none_iff_null_operand(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.sql_eq(&b).is_none(), a.is_null() || b.is_null());
    }

    #[test]
    fn delta_merge_is_commutative(a in arb_delta(), b in arb_delta()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn delta_merge_is_associative(a in arb_delta(), b in arb_delta(), c in arb_delta()) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn delta_negation_is_inverse(a in arb_delta()) {
        let mut x = a.clone();
        x.merge(&a.negated());
        prop_assert!(x.is_empty());
    }

    #[test]
    fn delta_split_roundtrips(a in arb_delta()) {
        prop_assert_eq!(Delta::from_split(&a.split()), a);
    }

    #[test]
    fn delta_total_multiplicity_additive_under_disjoint_sign(a in arb_delta()) {
        let s = a.split();
        prop_assert_eq!(
            a.total_multiplicity() as usize,
            s.inserts.len() + s.deletes.len()
        );
    }

    #[test]
    fn map_rows_preserves_total_weight_sum(a in arb_delta()) {
        // Projection may merge rows but the signed weight sum is invariant.
        let total: i64 = a.iter().map(|(_, &w)| w).sum();
        let mapped = a.map_rows(|r| r.project(&[0]));
        let mapped_total: i64 = mapped.iter().map(|(_, &w)| w).sum();
        prop_assert_eq!(total, mapped_total);
    }
}

/// Fixed-arity rows (chunks require uniform arity, as tables enforce).
fn arb_fixed_row(arity: usize) -> impl Strategy<Value = Row> {
    prop::collection::vec(arb_value(), arity).prop_map(Row::new)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// The columnar image is lossless: chunking a table and materializing
    /// it back reproduces the rows exactly — ⊥ slots through the validity
    /// bitmap, strings through the dictionary, and numerics bit-for-bit.
    #[test]
    fn chunked_table_roundtrips_rows_exactly(
        rows in prop::collection::vec(arb_fixed_row(3), 0..40)
    ) {
        let schema = Arc::new(
            Schema::from_pairs(&[
                ("a", DataType::Any),
                ("b", DataType::Any),
                ("c", DataType::Any),
            ])
            .unwrap(),
        );
        let t = Table::bag(schema, rows.clone());
        let c = t.chunk();
        prop_assert_eq!(c.to_rows(), rows.clone());
        for (i, r) in rows.iter().enumerate() {
            prop_assert_eq!(&c.row(i), r);
            for j in 0..3 {
                prop_assert_eq!(c.value(i, j), r.values()[j].clone());
                prop_assert_eq!(c.column(j).is_null(i), r.values()[j].is_null());
            }
        }
    }

    /// Columnar key hashing feeds hashers the same bytes as row-at-a-time
    /// `Value::hash`, for arbitrary value mixes and key column subsets.
    #[test]
    fn chunked_key_hash_matches_row_hash(
        rows in prop::collection::vec(arb_fixed_row(3), 1..30),
        k1 in 0usize..3,
        k2 in 0usize..3,
    ) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let schema = Arc::new(
            Schema::from_pairs(&[
                ("a", DataType::Any),
                ("b", DataType::Any),
                ("c", DataType::Any),
            ])
            .unwrap(),
        );
        let key_idx = [k1, k2];
        let t = Table::bag(schema, rows.clone());
        let got = t.chunk().hash_rows(&key_idx, DefaultHasher::new);
        for (i, r) in rows.iter().enumerate() {
            let mut h = DefaultHasher::new();
            for &k in &key_idx {
                r.values()[k].hash(&mut h);
            }
            prop_assert_eq!(got[i], h.finish());
        }
    }
}

/// Numerics clustered around the 2⁵³ f64-representability boundary (and the
/// 2⁶³ i64 range edge), where the pre-fix `as f64` comparison collapsed
/// distinct values. Every order law must hold here exactly as it does for
/// small values.
fn arb_boundary_numeric() -> impl Strategy<Value = Value> {
    const P53: i64 = 1 << 53;
    prop_oneof![
        (-4i64..=4).prop_map(|d| Value::Int(P53 + d)),
        (-4i64..=4).prop_map(|d| Value::Int(-P53 + d)),
        (-4i64..=4).prop_map(|d| Value::Float((P53 + d) as f64)),
        (-4i64..=4).prop_map(|d| Value::Float((-P53 + d) as f64)),
        (-4i64..=4).prop_map(|d| Value::Int(i64::MAX - d.unsigned_abs() as i64)),
        (-4i64..=4).prop_map(|d| Value::Int(i64::MIN + d.unsigned_abs() as i64)),
        Just(Value::Float(9_223_372_036_854_775_808.0)),
        Just(Value::Float(-9_223_372_036_854_775_808.0)),
        Just(Value::Float(f64::INFINITY)),
        Just(Value::Float(f64::NEG_INFINITY)),
        Just(Value::Float(f64::NAN)),
        Just(Value::Float(-0.0)),
        (-4i64..=4).prop_map(|d| Value::Float(d as f64 + 0.5)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn boundary_order_is_antisymmetric(a in arb_boundary_numeric(), b in arb_boundary_numeric()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        prop_assert_eq!(a.total_cmp(&b) == Ordering::Equal, a == b);
    }

    #[test]
    fn boundary_order_is_transitive(
        a in arb_boundary_numeric(),
        b in arb_boundary_numeric(),
        c in arb_boundary_numeric(),
    ) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2] && v[0] <= v[2]);
    }

    #[test]
    fn boundary_equality_implies_hash_equality(
        a in arb_boundary_numeric(),
        b in arb_boundary_numeric(),
    ) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    #[test]
    fn boundary_distinct_ints_never_collapse_through_floats(d in 1i64..=4) {
        // The exact regression: Int(2^53 + d) must stay strictly above
        // Float(2^53) for every positive d, not equal to it.
        const P53: i64 = 1 << 53;
        prop_assert!(Value::Int(P53 + d) > Value::Float(P53 as f64));
        prop_assert!(Value::Int(-P53 - d) < Value::Float(-P53 as f64));
    }
}

// Model-based test: a keyed table behaves like a HashMap from key to row.
proptest! {
    #[test]
    fn keyed_table_matches_hashmap_model(
        ops in prop::collection::vec((0u8..4, 0i64..12, "[a-z]{1,2}"), 0..60)
    ) {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[("id", DataType::Int), ("payload", DataType::Str)],
                &["id"],
            )
            .unwrap(),
        );
        let mut table = Table::new(schema);
        let mut model: HashMap<i64, String> = HashMap::new();

        for (op, id, payload) in ops {
            let key = Row::new(vec![Value::Int(id)]);
            let row = Row::new(vec![Value::Int(id), Value::str(&payload)]);
            match op {
                0 => {
                    // insert: fails iff key present
                    let expect_err = model.contains_key(&id);
                    let result = table.insert(row);
                    prop_assert_eq!(result.is_err(), expect_err);
                    if !expect_err {
                        model.insert(id, payload);
                    }
                }
                1 => {
                    // upsert
                    table.upsert(row).unwrap();
                    model.insert(id, payload);
                }
                2 => {
                    // delete by key
                    let removed = table.delete_by_key(&key);
                    prop_assert_eq!(removed.is_some(), model.remove(&id).is_some());
                }
                _ => {
                    // lookup
                    let got = table.get_by_key(&key).map(|r| r[1].clone());
                    let want = model.get(&id).map(Value::str);
                    prop_assert_eq!(got, want);
                }
            }
        }
        prop_assert_eq!(table.len(), model.len());
        for (id, payload) in &model {
            let key = Row::new(vec![Value::Int(*id)]);
            let row = table.get_by_key(&key).unwrap();
            prop_assert_eq!(row[1].clone(), Value::str(payload));
        }
    }

    #[test]
    fn apply_delta_then_inverse_restores_table(
        base_ids in prop::collection::btree_set(0i64..15, 0..10),
        delete_picks in prop::collection::vec(any::<prop::sample::Index>(), 0..5),
        insert_ids in prop::collection::btree_set(20i64..35, 0..5),
    ) {
        let schema = Arc::new(
            Schema::from_pairs_keyed(&[("id", DataType::Int)], &["id"]).unwrap(),
        );
        let rows: Vec<Row> = base_ids.iter().map(|&i| Row::new(vec![Value::Int(i)])).collect();
        let mut table = Table::from_rows(schema, rows.clone()).unwrap();
        let original = table.clone();

        let mut delta = Delta::new();
        if !rows.is_empty() {
            for pick in &delete_picks {
                delta.add(rows[pick.index(rows.len())].clone(), -1);
            }
        }
        for &i in &insert_ids {
            delta.add(Row::new(vec![Value::Int(i)]), 1);
        }
        // Deduplicate repeated deletes of the same row (a row exists once).
        let delta: Delta = delta
            .iter()
            .map(|(r, &w)| (r.clone(), w.clamp(-1, 1)))
            .collect();

        table.apply_delta(&delta).unwrap();
        table.apply_delta(&delta.negated()).unwrap();
        prop_assert!(table.bag_eq(&original));
    }
}

#[test]
fn catalog_round_trip() {
    let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]).unwrap());
    let mut c = Catalog::new();
    c.register("t", Table::bag(schema, vec![])).unwrap();
    assert!(c.contains("t"));
    assert_eq!(c.deregister("t").unwrap().len(), 0);
}

// ---------------------------------------------------------------------------
// Delta coalescing laws — the algebra the serve-layer ingestion queue relies
// on when folding producer batches together (see gpivot-serve).
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn delta_absorb_equals_merge(a in arb_delta(), b in arb_delta()) {
        let mut merged = a.clone();
        merged.merge(&b);
        let mut absorbed = a.clone();
        absorbed.absorb(b);
        prop_assert_eq!(absorbed, merged);
    }

    #[test]
    fn insert_delete_pairs_cancel_to_empty(rows in prop::collection::vec(arb_row(), 0..12)) {
        let mut d = Delta::from_inserts(rows.clone());
        d.merge(&Delta::from_deletes(rows));
        prop_assert!(d.is_empty());
        prop_assert_eq!(d.total_multiplicity(), 0);
    }

    #[test]
    fn absorbing_the_negation_cancels(d in arb_delta()) {
        let mut sum = d.clone();
        sum.absorb(d.negated());
        prop_assert!(sum.is_empty());
    }

    #[test]
    fn delta_split_counts_are_exact(d in arb_delta()) {
        let split = d.split();
        prop_assert_eq!(Delta::from_split(&split), d.clone());
        // Insert/delete counts match the positive/negative multiplicities.
        let pos: i64 = d.iter().map(|(_, &w)| w.max(0)).sum();
        let neg: i64 = d.iter().map(|(_, &w)| (-w).max(0)).sum();
        prop_assert_eq!(split.inserts.len() as i64, pos);
        prop_assert_eq!(split.deletes.len() as i64, neg);
    }

    #[test]
    fn empty_is_the_merge_identity(d in arb_delta()) {
        let mut left = Delta::new();
        left.merge(&d);
        prop_assert_eq!(&left, &d);
        let mut right = d.clone();
        right.merge(&Delta::new());
        prop_assert_eq!(&right, &d);
        let mut absorbed = Delta::new();
        absorbed.absorb(d.clone());
        prop_assert_eq!(&absorbed, &d);
    }
}
