//! Deltas: signed multisets of rows.
//!
//! The paper presents change propagation in terms of an insert bag `ΔV` and
//! a delete bag `∇V`. For *mixed* batches under bag semantics the algebra is
//! cleanest over **signed multisets** (`Row → i64` multiplicity, negative =
//! delete): union becomes addition, difference becomes subtraction, and the
//! Griffin/Libkin join delta terms come out exactly. [`Delta`] is that
//! object; [`DeltaSplit`] is the paper-facing `(ΔV, ∇V)` view of it.

use crate::row::Row;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A signed multiset of rows: each row maps to a non-zero multiplicity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    counts: HashMap<Row, i64>,
}

impl Delta {
    /// The empty delta.
    pub fn new() -> Self {
        Delta::default()
    }

    /// Delta representing a batch of inserted rows (each multiplicity +1).
    pub fn from_inserts<I: IntoIterator<Item = Row>>(rows: I) -> Self {
        let mut d = Delta::new();
        for r in rows {
            d.add(r, 1);
        }
        d
    }

    /// Delta representing a batch of deleted rows (each multiplicity -1).
    pub fn from_deletes<I: IntoIterator<Item = Row>>(rows: I) -> Self {
        let mut d = Delta::new();
        for r in rows {
            d.add(r, -1);
        }
        d
    }

    /// Build from an explicit insert/delete split.
    pub fn from_split(split: &DeltaSplit) -> Self {
        let mut d = Delta::from_inserts(split.inserts.iter().cloned());
        for r in &split.deletes {
            d.add(r.clone(), -1);
        }
        d
    }

    /// Add a row with a (possibly negative) multiplicity. Zero-count entries
    /// are removed eagerly so emptiness checks stay exact.
    pub fn add(&mut self, row: Row, weight: i64) {
        if weight == 0 {
            return;
        }
        match self.counts.entry(row) {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let c = o.get_mut();
                *c += weight;
                if *c == 0 {
                    o.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(weight);
            }
        }
    }

    /// Merge another delta into this one (bag union of signed multisets).
    pub fn merge(&mut self, other: &Delta) {
        for (r, &w) in other.iter() {
            self.add(r.clone(), w);
        }
    }

    /// Merge by consuming `other` — same result as [`Delta::merge`] but
    /// moves the rows instead of cloning them. When `self` is empty the
    /// whole map is taken over wholesale, so coalescing a stream of
    /// batches into an accumulator is allocation-free on the first batch.
    pub fn absorb(&mut self, other: Delta) {
        if self.counts.is_empty() {
            self.counts = other.counts;
            return;
        }
        for (r, w) in other.counts {
            self.add(r, w);
        }
    }

    /// The additive inverse: every multiplicity negated.
    pub fn negated(&self) -> Delta {
        Delta {
            counts: self.counts.iter().map(|(r, &w)| (r.clone(), -w)).collect(),
        }
    }

    /// Number of distinct rows carried.
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total absolute multiplicity (number of row *changes*).
    pub fn total_multiplicity(&self) -> u64 {
        self.counts.values().map(|w| w.unsigned_abs()).sum()
    }

    /// True iff the delta carries no change.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Rough in-memory footprint estimate in bytes (hash-map entry plus
    /// per-row value payload) — the service layer's ingestion watermark
    /// accounting. An estimate, not an exact measurement.
    pub fn estimate_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(Row, i64)>() + std::mem::size_of::<u64>();
        let values: usize = self
            .counts
            .keys()
            .map(|r| r.arity() * std::mem::size_of::<Value>())
            .sum();
        self.counts.len() * entry + values
    }

    /// Iterate over `(row, signed multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Row, &i64)> {
        self.counts.iter()
    }

    /// Consume into owned `(row, signed multiplicity)` pairs.
    pub fn into_counts(self) -> impl Iterator<Item = (Row, i64)> {
        self.counts.into_iter()
    }

    /// Multiplicity of a specific row (0 if absent).
    pub fn multiplicity(&self, row: &Row) -> i64 {
        self.counts.get(row).copied().unwrap_or(0)
    }

    /// Split into the paper-facing insert/delete bags.
    pub fn split(&self) -> DeltaSplit {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for (r, &w) in &self.counts {
            if w > 0 {
                for _ in 0..w {
                    inserts.push(r.clone());
                }
            } else {
                for _ in 0..(-w) {
                    deletes.push(r.clone());
                }
            }
        }
        DeltaSplit { inserts, deletes }
    }

    /// Map every row through `f`, keeping multiplicities (projection).
    pub fn map_rows<F: Fn(&Row) -> Row>(&self, f: F) -> Delta {
        let mut d = Delta::new();
        for (r, &w) in &self.counts {
            d.add(f(r), w);
        }
        d
    }

    /// Keep only rows where `pred` holds, keeping multiplicities (selection).
    pub fn filter_rows<F: Fn(&Row) -> bool>(&self, pred: F) -> Delta {
        let mut d = Delta::new();
        for (r, &w) in &self.counts {
            if pred(r) {
                d.add(r.clone(), w);
            }
        }
        d
    }

    /// Collect the distinct values of `row[idx]` across all carried rows
    /// (used e.g. to collect affected keys / group values).
    pub fn distinct_values_at(&self, indices: &[usize]) -> Vec<Row> {
        let mut set = std::collections::HashSet::new();
        for r in self.counts.keys() {
            set.insert(r.project(indices));
        }
        set.into_iter().collect()
    }

    /// Split this delta into `shards + 1` disjoint deltas by hashing the
    /// key column at `col_idx`: bucket `i < shards` receives the rows
    /// whose key hashes to shard `i` ([`shard_of`]), and the final bucket
    /// receives the rows whose key `is_heavy` reports hot (heavy keys are
    /// routed to a dedicated shard regardless of their hash). Every
    /// carried row lands in exactly one bucket with its multiplicity
    /// intact, so merging the buckets reproduces `self` exactly.
    pub fn partition_by_key<F>(&self, col_idx: usize, shards: usize, is_heavy: F) -> Vec<Delta>
    where
        F: Fn(&Value) -> bool,
    {
        let mut out = vec![Delta::new(); shards + 1];
        for (r, &w) in &self.counts {
            let key = &r[col_idx];
            let bucket = if is_heavy(key) {
                shards
            } else {
                shard_of(key, shards)
            };
            out[bucket].add(r.clone(), w);
        }
        out
    }
}

/// The shard a key value routes to: a deterministic hash of the value,
/// reduced modulo `shards`. Uses the standard library's `DefaultHasher`
/// with its fixed default keys, so the assignment is stable for the life
/// of a process — every component of one service (delta router, table
/// partitioner, heavy-key tracker) agrees on the placement of a value.
pub fn shard_of(value: &Value, shards: usize) -> usize {
    use std::hash::{Hash, Hasher};
    debug_assert!(shards > 0, "shard_of needs at least one shard");
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    (h.finish() % shards.max(1) as u64) as usize
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Delta({} distinct rows):", self.counts.len())?;
        let mut entries: Vec<_> = self.counts.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        for (r, w) in entries {
            writeln!(f, "  {w:+} × {r:?}")?;
        }
        Ok(())
    }
}

impl FromIterator<(Row, i64)> for Delta {
    fn from_iter<T: IntoIterator<Item = (Row, i64)>>(iter: T) -> Self {
        let mut d = Delta::new();
        for (r, w) in iter {
            d.add(r, w);
        }
        d
    }
}

/// The paper-facing `(ΔV, ∇V)` split of a delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSplit {
    /// Inserted rows (`ΔV`).
    pub inserts: Vec<Row>,
    /// Deleted rows (`∇V`).
    pub deletes: Vec<Row>,
}

impl DeltaSplit {
    /// An insert-only split.
    pub fn inserts_only(rows: Vec<Row>) -> Self {
        DeltaSplit {
            inserts: rows,
            deletes: Vec::new(),
        }
    }

    /// A delete-only split.
    pub fn deletes_only(rows: Vec<Row>) -> Self {
        DeltaSplit {
            inserts: Vec::new(),
            deletes: rows,
        }
    }

    /// True iff no change is carried.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Helper used across the maintenance engine: a row of all-NULLs.
pub fn null_row(arity: usize) -> Row {
    Row::new(vec![Value::Null; arity])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn partition_by_key_conserves_multiplicities() {
        let mut d = Delta::new();
        for i in 0..100i64 {
            d.add(row![i % 7, i], if i % 3 == 0 { -2 } else { 1 });
        }
        let parts = d.partition_by_key(0, 4, |v| *v == Value::Int(3));
        assert_eq!(parts.len(), 5);
        // Heavy bucket holds exactly the key-3 rows.
        for (r, _) in parts[4].iter() {
            assert_eq!(r[0], Value::Int(3));
        }
        // Hash buckets are disjoint from the heavy key and each other,
        // and merging all buckets reproduces the original delta.
        let mut merged = Delta::new();
        for (i, p) in parts.iter().enumerate() {
            for (r, &w) in p.iter() {
                if i < 4 {
                    assert_ne!(r[0], Value::Int(3), "heavy key leaked to bucket {i}");
                    assert_eq!(shard_of(&r[0], 4), i);
                }
                merged.add(r.clone(), w);
            }
        }
        assert_eq!(merged, d);
    }

    #[test]
    fn shard_of_is_deterministic_and_in_range() {
        for i in 0..1000i64 {
            let v = Value::Int(i);
            let s = shard_of(&v, 5);
            assert!(s < 5);
            assert_eq!(s, shard_of(&v, 5));
        }
        // All shards get some keys (sanity against a degenerate hash).
        let hit: std::collections::HashSet<usize> =
            (0..1000).map(|i| shard_of(&Value::Int(i), 5)).collect();
        assert_eq!(hit.len(), 5);
    }

    #[test]
    fn add_cancels_to_empty() {
        let mut d = Delta::new();
        d.add(row![1, "a"], 1);
        d.add(row![1, "a"], -1);
        assert!(d.is_empty());
    }

    #[test]
    fn merge_accumulates() {
        let a = Delta::from_inserts(vec![row![1], row![1], row![2]]);
        let mut b = Delta::from_deletes(vec![row![1]]);
        b.merge(&a);
        assert_eq!(b.multiplicity(&row![1]), 1);
        assert_eq!(b.multiplicity(&row![2]), 1);
    }

    #[test]
    fn split_roundtrip() {
        let mut d = Delta::new();
        d.add(row![1], 2);
        d.add(row![2], -1);
        let s = d.split();
        assert_eq!(s.inserts.len(), 2);
        assert_eq!(s.deletes, vec![row![2]]);
        assert_eq!(Delta::from_split(&s), d);
    }

    #[test]
    fn negated_inverts() {
        let d = Delta::from_inserts(vec![row![1]]);
        let mut n = d.negated();
        n.merge(&d);
        assert!(n.is_empty());
    }

    #[test]
    fn map_rows_merges_collisions() {
        let d = Delta::from_inserts(vec![row![1, "a"], row![1, "b"]]);
        let projected = d.map_rows(|r| r.project(&[0]));
        assert_eq!(projected.multiplicity(&row![1]), 2);
        assert_eq!(projected.distinct_len(), 1);
    }

    #[test]
    fn filter_rows_keeps_weights() {
        let mut d = Delta::new();
        d.add(row![1], -3);
        d.add(row![2], 1);
        let f = d.filter_rows(|r| r[0] == Value::Int(1));
        assert_eq!(f.multiplicity(&row![1]), -3);
        assert_eq!(f.distinct_len(), 1);
    }

    #[test]
    fn distinct_values_at_projects() {
        let d = Delta::from_inserts(vec![row![1, "a"], row![1, "b"], row![2, "c"]]);
        let mut keys = d.distinct_values_at(&[0]);
        keys.sort();
        assert_eq!(keys, vec![row![1], row![2]]);
    }

    #[test]
    fn total_multiplicity_counts_changes() {
        let mut d = Delta::new();
        d.add(row![1], 2);
        d.add(row![2], -3);
        assert_eq!(d.total_multiplicity(), 5);
        assert_eq!(d.distinct_len(), 2);
    }

    #[test]
    fn from_iterator_cancels() {
        let d: Delta = vec![(row![1], 1), (row![1], -1), (row![2], 1)]
            .into_iter()
            .collect();
        assert_eq!(d.distinct_len(), 1);
    }
}
