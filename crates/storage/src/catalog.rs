//! The catalog: a named collection of base tables.
//!
//! The executor resolves `Scan` nodes against a catalog; the maintenance
//! engine reads *pre-update* base-table states from it while propagating
//! deltas, then commits the deltas at the end of a maintenance cycle.

use crate::delta::Delta;
use crate::error::{Result, StorageError};
use crate::schema::SchemaRef;
use crate::table::Table;
use std::collections::BTreeMap;

/// A named collection of tables.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under a name.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Replace a table (or insert it if absent).
    pub fn replace(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Remove a table, returning it.
    pub fn deregister(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Schema of a table.
    pub fn schema(&self, name: &str) -> Result<SchemaRef> {
        Ok(self.table(name)?.schema().clone())
    }

    /// Apply a signed delta to a base table (commit step of maintenance).
    pub fn apply_delta(&mut self, name: &str, delta: &Delta) -> Result<()> {
        self.table_mut(name)?.apply_delta(delta)
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// True iff a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{DataType, Schema};
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Arc::new(Schema::from_pairs_keyed(&[("id", DataType::Int)], &["id"]).unwrap());
        Table::from_rows(schema, vec![row![1], row![2]]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert_eq!(c.table("t").unwrap().len(), 2);
        assert!(c.contains("t"));
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert!(matches!(
            c.register("t", table()),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn unknown_table_fails() {
        let c = Catalog::new();
        assert!(matches!(c.table("x"), Err(StorageError::UnknownTable(_))));
    }

    #[test]
    fn apply_delta_commits() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        let d = Delta::from_deletes(vec![row![1]]);
        c.apply_delta("t", &d).unwrap();
        assert_eq!(c.table("t").unwrap().len(), 1);
    }

    #[test]
    fn deregister_returns_table() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        let t = c.deregister("t").unwrap();
        assert_eq!(t.len(), 2);
        assert!(!c.contains("t"));
    }
}
