//! The catalog: a named collection of base tables.
//!
//! The executor resolves `Scan` nodes against a catalog; the maintenance
//! engine reads *pre-update* base-table states from it while propagating
//! deltas, then commits the deltas at the end of a maintenance cycle.

use crate::delta::Delta;
use crate::error::{Result, StorageError};
use crate::fault::{FaultInjector, FaultSite};
use crate::schema::SchemaRef;
use crate::table::Table;
use std::collections::BTreeMap;

/// A named collection of tables.
///
/// The catalog also carries the [`FaultInjector`] handle for the whole
/// engine instance: the exec providers and the maintenance layer consult
/// `catalog.fault_injector()` at their injection sites, so attaching one
/// injector to the catalog arms every layer at once. The default injector
/// is disabled and free.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    fault: FaultInjector,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Register a table under a name.
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> Result<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(StorageError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Replace a table (or insert it if absent).
    pub fn replace(&mut self, name: impl Into<String>, table: Table) {
        self.tables.insert(name.into(), table);
    }

    /// Remove a table, returning it.
    pub fn deregister(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StorageError::UnknownTable(name.to_string()))
    }

    /// Schema of a table.
    pub fn schema(&self, name: &str) -> Result<SchemaRef> {
        Ok(self.table(name)?.schema().clone())
    }

    /// Apply a signed delta to a base table (commit step of maintenance).
    pub fn apply_delta(&mut self, name: &str, delta: &Delta) -> Result<()> {
        self.fault.check(FaultSite::Commit, name)?;
        self.table_mut(name)?.apply_delta(delta)
    }

    /// Compute the post-delta state of a base table **without mutating the
    /// catalog**: clone the table, apply the delta to the clone, return it.
    ///
    /// This is the staging half of an atomic commit protocol — a caller can
    /// stage every table of a batch first (each staging step is fallible:
    /// key violations, injected faults) and only then swap the staged
    /// tables in with the infallible [`Catalog::replace`], so a mid-batch
    /// failure leaves the catalog untouched.
    pub fn stage_delta(&self, name: &str, delta: &Delta) -> Result<Table> {
        self.fault.check(FaultSite::Commit, name)?;
        let mut staged = self.table(name)?.clone();
        staged.apply_delta(delta)?;
        Ok(staged)
    }

    /// Attach a fault-injection schedule (chaos testing). Clones of the
    /// catalog made *after* this call share the injector.
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.fault = injector;
    }

    /// The fault-injection handle (disabled by default).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// True iff a table with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{DataType, Schema};
    use std::sync::Arc;

    fn table() -> Table {
        let schema = Arc::new(Schema::from_pairs_keyed(&[("id", DataType::Int)], &["id"]).unwrap());
        Table::from_rows(schema, vec![row![1], row![2]]).unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert_eq!(c.table("t").unwrap().len(), 2);
        assert!(c.contains("t"));
        assert_eq!(c.table_names(), vec!["t"]);
    }

    #[test]
    fn duplicate_registration_fails() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        assert!(matches!(
            c.register("t", table()),
            Err(StorageError::DuplicateTable(_))
        ));
    }

    #[test]
    fn unknown_table_fails() {
        let c = Catalog::new();
        assert!(matches!(c.table("x"), Err(StorageError::UnknownTable(_))));
    }

    #[test]
    fn apply_delta_commits() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        let d = Delta::from_deletes(vec![row![1]]);
        c.apply_delta("t", &d).unwrap();
        assert_eq!(c.table("t").unwrap().len(), 1);
    }

    #[test]
    fn stage_delta_leaves_catalog_untouched() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        let staged = c
            .stage_delta("t", &Delta::from_inserts(vec![row![3]]))
            .unwrap();
        assert_eq!(staged.len(), 3);
        assert_eq!(c.table("t").unwrap().len(), 2, "staging must not mutate");
        c.replace("t", staged);
        assert_eq!(c.table("t").unwrap().len(), 3);
    }

    #[test]
    fn stage_delta_surfaces_key_violations_without_mutation() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        // Inserting an existing key twice violates the declared key.
        let bad = Delta::from_inserts(vec![row![1]]);
        assert!(c.stage_delta("t", &bad).is_err());
        assert_eq!(c.table("t").unwrap().len(), 2);
    }

    #[test]
    fn injected_commit_fault_surfaces_as_error() {
        use crate::fault::{FaultInjector, FaultSite};
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        c.set_fault_injector(
            FaultInjector::seeded(3)
                .with_site(FaultSite::Commit, 1.0, 0.0)
                .with_budget(1),
        );
        let d = Delta::from_inserts(vec![row![9]]);
        let err = c.stage_delta("t", &d).unwrap_err();
        assert!(err.is_transient());
        // Budget spent: the retry goes through.
        assert!(c.stage_delta("t", &d).is_ok());
    }

    #[test]
    fn deregister_returns_table() {
        let mut c = Catalog::new();
        c.register("t", table()).unwrap();
        let t = c.deregister("t").unwrap();
        assert_eq!(t.len(), 2);
        assert!(!c.contains("t"));
    }
}
