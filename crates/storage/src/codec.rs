//! A tiny hand-rolled binary codec for the storage types the durability
//! layer persists ([`Value`], [`Row`], [`Delta`], [`Schema`], [`Table`]).
//!
//! The container has no serde, so the WAL and checkpoint formats are built
//! on these primitives: little-endian fixed-width integers, length-prefixed
//! byte strings, and one tag byte per `Value` variant. Decoding is fully
//! bounds-checked and never panics — every malformed input surfaces as
//! [`StorageError::Corrupt`], which the recovery code maps to
//! truncate-at-last-valid-record (WAL tails) or skip-this-file
//! (checkpoints).

use crate::error::{Result, StorageError};
use crate::{DataType, Delta, Field, Row, Schema, SchemaRef, Table, Value};
use std::sync::Arc;

/// Hard cap on any single length prefix (strings, row counts, payloads).
/// Corrupt length bytes must never drive a multi-gigabyte allocation.
const MAX_LEN: u64 = 1 << 32;

fn corrupt(what: impl Into<String>) -> StorageError {
    StorageError::Corrupt { what: what.into() }
}

// ---------------------------------------------------------------- writers

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Bool(b) => {
            put_u8(out, 1);
            put_u8(out, u8::from(*b));
        }
        Value::Int(i) => {
            put_u8(out, 2);
            put_i64(out, *i);
        }
        Value::Float(f) => {
            put_u8(out, 3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            put_u8(out, 4);
            put_str(out, s);
        }
        Value::Date(d) => {
            put_u8(out, 5);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

pub(crate) fn put_row(out: &mut Vec<u8>, row: &Row) {
    put_u64(out, row.arity() as u64);
    for v in row.values() {
        put_value(out, v);
    }
}

pub(crate) fn put_delta(out: &mut Vec<u8>, delta: &Delta) {
    put_u64(out, delta.distinct_len() as u64);
    for (row, &w) in delta.iter() {
        put_row(out, row);
        put_i64(out, w);
    }
}

pub(crate) fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_u64(out, schema.arity() as u64);
    for f in schema.fields() {
        put_str(out, &f.name);
        put_u8(
            out,
            match f.data_type {
                DataType::Bool => 0,
                DataType::Int => 1,
                DataType::Float => 2,
                DataType::Str => 3,
                DataType::Date => 4,
                DataType::Any => 5,
            },
        );
    }
    match schema.key() {
        None => put_u8(out, 0),
        Some(key) => {
            put_u8(out, 1);
            put_u64(out, key.len() as u64);
            for &i in key {
                put_u64(out, i as u64);
            }
        }
    }
}

pub(crate) fn put_table(out: &mut Vec<u8>, table: &Table) {
    put_schema(out, table.schema());
    put_u64(out, table.len() as u64);
    for row in table.iter() {
        put_row(out, row);
    }
}

// ---------------------------------------------------------------- reader

/// A bounds-checked cursor over encoded bytes.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("unexpected end of payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// A length prefix, validated against [`MAX_LEN`] *and* the bytes that
    /// actually remain (for unit-sized elements this rejects corrupt
    /// lengths before any allocation).
    fn len(&mut self, unit: usize) -> Result<usize> {
        let n = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if n > MAX_LEN || n.saturating_mul(unit as u64) > remaining {
            return Err(corrupt(format!("implausible length prefix {n}")));
        }
        Ok(n as usize)
    }

    pub fn str(&mut self) -> Result<String> {
        let n = self.len(1)?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| corrupt("invalid utf-8 in string"))
    }

    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.u8()? != 0),
            2 => Value::Int(self.i64()?),
            3 => Value::Float(f64::from_bits(self.u64()?)),
            4 => Value::Str(Arc::from(self.str()?.as_str())),
            5 => Value::Date(self.u32()? as i32),
            t => return Err(corrupt(format!("unknown value tag {t}"))),
        })
    }

    pub fn row(&mut self) -> Result<Row> {
        let arity = self.len(1)?;
        let mut vals = Vec::with_capacity(arity);
        for _ in 0..arity {
            vals.push(self.value()?);
        }
        Ok(Row::new(vals))
    }

    pub fn delta(&mut self) -> Result<Delta> {
        let n = self.len(1)?;
        let mut d = Delta::new();
        for _ in 0..n {
            let row = self.row()?;
            let w = self.i64()?;
            d.add(row, w);
        }
        Ok(d)
    }

    pub fn schema(&mut self) -> Result<SchemaRef> {
        let arity = self.len(1)?;
        let mut fields = Vec::with_capacity(arity);
        for _ in 0..arity {
            let name = self.str()?;
            let dt = match self.u8()? {
                0 => DataType::Bool,
                1 => DataType::Int,
                2 => DataType::Float,
                3 => DataType::Str,
                4 => DataType::Date,
                5 => DataType::Any,
                t => return Err(corrupt(format!("unknown data-type tag {t}"))),
            };
            fields.push(Field::new(name, dt));
        }
        let mut schema = Schema::new(fields).map_err(|e| corrupt(e.to_string()))?;
        if self.u8()? == 1 {
            let klen = self.len(8)?;
            let mut key = Vec::with_capacity(klen);
            for _ in 0..klen {
                // Bound-check the raw u64 *before* the usize cast: on 32-bit
                // targets `as usize` truncates, so a corrupt 2^32+k index
                // would otherwise slip past the range check as k.
                let raw = self.u64()?;
                if raw >= arity as u64 {
                    return Err(corrupt(format!("key index {raw} out of range")));
                }
                key.push(raw as usize);
            }
            schema.set_key(key);
        }
        Ok(Arc::new(schema))
    }

    pub fn table(&mut self) -> Result<Table> {
        let schema = self.schema()?;
        let n = self.len(1)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push(self.row()?);
        }
        if schema.has_key() {
            Table::bag(schema.clone(), rows)
                .into_keyed(schema)
                .map_err(|e| corrupt(format!("keyed table failed to rebuild: {e}")))
        } else {
            Ok(Table::bag(schema, rows))
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected) over `bytes`. Bitwise — no table; the
/// frames it guards are small relative to the I/O around them.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn value_row_roundtrip_all_variants() {
        let r = Row::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(3.5),
            Value::str("héllo"),
            Value::Date(9580),
            Value::Float(f64::NAN),
        ]);
        let mut buf = Vec::new();
        put_row(&mut buf, &r);
        let back = Reader::new(&buf).row().unwrap();
        assert_eq!(back, r, "total Eq covers NaN normalization");
    }

    #[test]
    fn delta_roundtrip_preserves_signed_multiplicities() {
        let mut d = Delta::new();
        d.add(row![1, "a"], 3);
        d.add(row![2, "b"], -2);
        let mut buf = Vec::new();
        put_delta(&mut buf, &d);
        let back = Reader::new(&buf).delta().unwrap();
        assert_eq!(back.multiplicity(&row![1, "a"]), 3);
        assert_eq!(back.multiplicity(&row![2, "b"]), -2);
        assert_eq!(back.distinct_len(), 2);
    }

    #[test]
    fn keyed_table_roundtrip_rebuilds_index() {
        let schema = Arc::new(
            Schema::from_pairs_keyed(&[("id", DataType::Int), ("v", DataType::Str)], &["id"])
                .unwrap(),
        );
        let t = Table::from_rows(schema, vec![row![1, "x"], row![2, "y"]]).unwrap();
        let mut buf = Vec::new();
        put_table(&mut buf, &t);
        let back = Reader::new(&buf).table().unwrap();
        assert!(back.bag_eq(&t));
        assert_eq!(back.schema().key(), t.schema().key());
        assert!(back.get_by_key(&row![2]).is_some(), "key index rebuilt");
    }

    #[test]
    fn truncated_and_corrupt_inputs_error_not_panic() {
        let mut buf = Vec::new();
        put_row(&mut buf, &row![1, "abc", 2.5]);
        for cut in 0..buf.len() {
            assert!(Reader::new(&buf[..cut]).row().is_err());
        }
        // Implausible length prefix must not allocate or panic.
        let mut bad = Vec::new();
        put_u64(&mut bad, u64::MAX);
        assert!(Reader::new(&bad).row().is_err());
        assert!(Reader::new(&bad).str().is_err());
    }

    #[test]
    fn out_of_range_key_index_is_corrupt_even_past_u32() {
        // Encode a 1-column keyed schema, then rewrite the key index to
        // 2^32 (which truncates to 0 — in range — under a careless
        // `as usize` on 32-bit targets). Decoding must report corruption.
        let schema = Arc::new(Schema::from_pairs_keyed(&[("id", DataType::Int)], &["id"]).unwrap());
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let idx_at = buf.len() - 8;
        assert_eq!(&buf[idx_at..], &0u64.to_le_bytes(), "layout sanity");
        buf[idx_at..].copy_from_slice(&(1u64 << 32).to_le_bytes());
        let err = Reader::new(&buf).schema().unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "got {err:?}");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
