//! Checkpoint snapshots: the compaction point for the write-ahead log.
//!
//! A checkpoint serializes the full durable state at one epoch — base
//! tables, materialized view snapshots, and the ingest-queue contents and
//! watermarks — into a single file, allowing every log generation behind it
//! to be pruned. The protocol is generation-based so there is **no window
//! in which a crash loses state**:
//!
//! 1. Under the epoch gate, snapshot the queue and rotate the log to
//!    generation `g+1` (new file, first record `Checkpoint{epoch, g+1}`).
//! 2. Write `checkpoint-{g+1}.ckpt` via temp-file + fsync + atomic rename.
//! 3. Only after the rename succeeds, prune generations `< g+1`.
//!
//! A crash before (2) completes recovers from the *previous* checkpoint plus
//! log generations `≥` its `wal_gen` — which still exist, because pruning
//! happens last. [`load_latest`] skips unreadable or torn checkpoint files
//! (counting them) and falls back to the newest valid one.
//!
//! File layout: `b"GPCK"` magic, a CRC-32 over the body, then the body
//! (format version byte + payload). One frame per file.

use crate::codec::{self, Reader};
use crate::error::{Result, StorageError};
use crate::fault::{FaultInjector, FaultSite};
use crate::{Delta, Table};
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Checkpoint file format version.
pub const CHECKPOINT_VERSION: u8 = 1;

const MAGIC: &[u8; 4] = b"GPCK";

/// One materialized view's persisted state.
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    pub name: String,
    /// The defining plan, persisted as dialect SQL text.
    pub definition_sql: String,
    /// Maintenance strategy id (`Strategy::id`).
    pub strategy: String,
    /// True iff the snapshot *table* lags the base tables (the view was
    /// quarantined when the checkpoint was cut). Recovery recomputes stale
    /// views instead of trusting the stored table.
    pub stale: bool,
    pub table: Table,
}

/// Everything a checkpoint persists. Equality is *semantic*: tables compare
/// as bags ([`Table::bag_eq`]) plus schema, not by physical row order.
#[derive(Debug, Clone)]
pub struct CheckpointData {
    /// The committed epoch this snapshot reflects.
    pub epoch: u64,
    /// The log generation that continues *after* this checkpoint. Recovery
    /// replays generations `>= wal_gen` on top of the snapshot.
    pub wal_gen: u64,
    /// Base tables, in registration order.
    pub tables: Vec<(String, Table)>,
    /// Materialized views.
    pub views: Vec<ViewSnapshot>,
    /// Ingest-queue contents not yet drained into any epoch.
    pub pending: Vec<(String, Delta)>,
    /// Queue lifetime watermark: raw rows ever ingested.
    pub queue_raw_rows: u64,
    /// Queue lifetime watermark: batches ever ingested.
    pub queue_batches: u64,
}

fn table_eq(a: &Table, b: &Table) -> bool {
    a.schema() == b.schema() && a.bag_eq(b)
}

impl PartialEq for ViewSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.definition_sql == other.definition_sql
            && self.strategy == other.strategy
            && self.stale == other.stale
            && table_eq(&self.table, &other.table)
    }
}

impl PartialEq for CheckpointData {
    fn eq(&self, other: &Self) -> bool {
        self.epoch == other.epoch
            && self.wal_gen == other.wal_gen
            && self.tables.len() == other.tables.len()
            && self
                .tables
                .iter()
                .zip(&other.tables)
                .all(|((an, at), (bn, bt))| an == bn && table_eq(at, bt))
            && self.views == other.views
            && self.pending == other.pending
            && self.queue_raw_rows == other.queue_raw_rows
            && self.queue_batches == other.queue_batches
    }
}

/// `dir/checkpoint-{gen:010}.ckpt`
pub fn checkpoint_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("checkpoint-{gen:010}.ckpt"))
}

/// `dir/wal-{gen:010}.log`
pub fn wal_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("wal-{gen:010}.log"))
}

fn io_err(op: &str, e: std::io::Error) -> StorageError {
    StorageError::Io {
        op: op.to_string(),
        message: e.to_string(),
    }
}

fn encode(data: &CheckpointData) -> Vec<u8> {
    let mut body = Vec::with_capacity(4096);
    codec::put_u8(&mut body, CHECKPOINT_VERSION);
    codec::put_u64(&mut body, data.epoch);
    codec::put_u64(&mut body, data.wal_gen);
    codec::put_u64(&mut body, data.tables.len() as u64);
    for (name, table) in &data.tables {
        codec::put_str(&mut body, name);
        codec::put_table(&mut body, table);
    }
    codec::put_u64(&mut body, data.views.len() as u64);
    for v in &data.views {
        codec::put_str(&mut body, &v.name);
        codec::put_str(&mut body, &v.definition_sql);
        codec::put_str(&mut body, &v.strategy);
        codec::put_u8(&mut body, u8::from(v.stale));
        codec::put_table(&mut body, &v.table);
    }
    codec::put_u64(&mut body, data.pending.len() as u64);
    for (name, delta) in &data.pending {
        codec::put_str(&mut body, name);
        codec::put_delta(&mut body, delta);
    }
    codec::put_u64(&mut body, data.queue_raw_rows);
    codec::put_u64(&mut body, data.queue_batches);

    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(MAGIC);
    codec::put_u32(&mut out, codec::crc32(&body));
    out.extend_from_slice(&body);
    out
}

fn decode(bytes: &[u8]) -> Result<CheckpointData> {
    let corrupt = |what: &str| StorageError::Corrupt {
        what: format!("checkpoint: {what}"),
    };
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let body = &bytes[8..];
    if codec::crc32(body) != crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(body);
    if r.u8()? != CHECKPOINT_VERSION {
        return Err(corrupt("unknown format version"));
    }
    let epoch = r.u64()?;
    let wal_gen = r.u64()?;
    let ntables = r.u64()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        tables.push((r.str()?, r.table()?));
    }
    let nviews = r.u64()? as usize;
    let mut views = Vec::with_capacity(nviews.min(1024));
    for _ in 0..nviews {
        views.push(ViewSnapshot {
            name: r.str()?,
            definition_sql: r.str()?,
            strategy: r.str()?,
            stale: r.u8()? != 0,
            table: r.table()?,
        });
    }
    let npending = r.u64()? as usize;
    let mut pending = Vec::with_capacity(npending.min(1024));
    for _ in 0..npending {
        pending.push((r.str()?, r.delta()?));
    }
    let queue_raw_rows = r.u64()?;
    let queue_batches = r.u64()?;
    if !r.is_empty() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(CheckpointData {
        epoch,
        wal_gen,
        tables,
        views,
        pending,
        queue_raw_rows,
        queue_batches,
    })
}

/// Write `data` to `checkpoint-{data.wal_gen}.ckpt` in `dir` via temp file +
/// fsync + atomic rename. Consults [`FaultSite::CheckpointWrite`]; a seeded
/// kill point leaves a torn `.tmp` file (which [`load_latest`] ignores) and
/// the final path untouched. Returns the file size in bytes.
pub fn write_checkpoint(
    dir: &Path,
    data: &CheckpointData,
    injector: &FaultInjector,
) -> Result<u64> {
    let final_path = checkpoint_path(dir, data.wal_gen);
    let tmp_path = final_path.with_extension("ckpt.tmp");
    let bytes = encode(data);
    let stem = format!("checkpoint-{:010}", data.wal_gen);
    if let Err(e) = injector.check(FaultSite::CheckpointWrite, &stem) {
        if matches!(e, StorageError::KillPoint { .. }) && !bytes.is_empty() {
            // Simulated death mid-checkpoint: a torn temp file, no rename.
            let cut = ((injector.roll_unit() * bytes.len() as f64) as usize).min(bytes.len() - 1);
            let mut f = File::create(&tmp_path).map_err(|err| io_err("checkpoint tmp", err))?;
            f.write_all(&bytes[..cut])
                .map_err(|err| io_err("checkpoint tmp", err))?;
        }
        return Err(e);
    }
    let mut f = File::create(&tmp_path).map_err(|e| io_err("checkpoint tmp", e))?;
    f.write_all(&bytes)
        .map_err(|e| io_err("checkpoint write", e))?;
    f.sync_all().map_err(|e| io_err("checkpoint fsync", e))?;
    drop(f);
    std::fs::rename(&tmp_path, &final_path).map_err(|e| io_err("checkpoint rename", e))?;
    // Make the rename itself durable (best effort if the platform refuses
    // directory fsync).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes.len() as u64)
}

/// A checkpoint successfully loaded from disk.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    pub data: CheckpointData,
    /// Checkpoint files that existed but failed validation and were skipped
    /// (surfaced as a recovery warning metric).
    pub skipped_corrupt: u64,
}

/// Load the newest valid checkpoint in `dir`, skipping (and counting)
/// corrupt or torn ones. `Ok(None)` means no valid checkpoint exists.
pub fn load_latest(dir: &Path) -> Result<Option<LoadedCheckpoint>> {
    let mut gens = list_gens(dir, "checkpoint-", ".ckpt")?;
    gens.sort_unstable_by(|a, b| b.cmp(a)); // newest first
    let mut skipped = 0u64;
    for gen in gens {
        let path = checkpoint_path(dir, gen);
        let loaded = std::fs::read(&path)
            .map_err(|e| io_err("checkpoint read", e))
            .and_then(|bytes| decode(&bytes));
        match loaded {
            Ok(data) => {
                return Ok(Some(LoadedCheckpoint {
                    data,
                    skipped_corrupt: skipped,
                }))
            }
            Err(_) => skipped += 1,
        }
    }
    Ok(None)
}

/// All WAL generation numbers present in `dir`, ascending.
pub fn list_wal_gens(dir: &Path) -> Result<Vec<u64>> {
    let mut gens = list_gens(dir, "wal-", ".log")?;
    gens.sort_unstable();
    Ok(gens)
}

fn list_gens(dir: &Path, prefix: &str, suffix: &str) -> Result<Vec<u64>> {
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err("durability dir scan", e)),
    };
    let mut gens = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| io_err("durability dir scan", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(g) = name
            .strip_prefix(prefix)
            .and_then(|s| s.strip_suffix(suffix))
            .and_then(|s| s.parse::<u64>().ok())
        {
            gens.push(g);
        }
    }
    Ok(gens)
}

/// Remove log generations and checkpoints older than `keep_gen`, plus any
/// leftover `.tmp` files. Best-effort: a file that refuses to delete is
/// skipped (it will be retried at the next checkpoint). Returns the number
/// of files removed.
pub fn prune(dir: &Path, keep_gen: u64) -> u64 {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0u64;
    for entry in rd.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale_gen = |prefix: &str, suffix: &str| {
            name.strip_prefix(prefix)
                .and_then(|s| s.strip_suffix(suffix))
                .and_then(|s| s.parse::<u64>().ok())
                .is_some_and(|g| g < keep_gen)
        };
        let doomed = name.ends_with(".ckpt.tmp")
            || stale_gen("wal-", ".log")
            || stale_gen("checkpoint-", ".ckpt");
        if doomed && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{row, DataType, Schema};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn tmp_dir(stem: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("gpivot-ckpt-{}-{stem}-{n}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample(epoch: u64, wal_gen: u64) -> CheckpointData {
        let schema = Arc::new(
            Schema::from_pairs_keyed(&[("id", DataType::Int), ("v", DataType::Str)], &["id"])
                .unwrap(),
        );
        let table = Table::from_rows(schema, vec![row![1, "x"], row![2, "y"]]).unwrap();
        let vschema = Arc::new(Schema::from_pairs(&[("s", DataType::Float)]).unwrap());
        let vtable = Table::bag(vschema, vec![row![1.5]]);
        let mut delta = Delta::new();
        delta.add(row![3, "z"], 1);
        CheckpointData {
            epoch,
            wal_gen,
            tables: vec![("t".into(), table)],
            views: vec![ViewSnapshot {
                name: "v".into(),
                definition_sql: "SELECT s FROM t".into(),
                strategy: "pivot-update".into(),
                stale: false,
                table: vtable,
            }],
            pending: vec![("t".into(), delta)],
            queue_raw_rows: 7,
            queue_batches: 3,
        }
    }

    #[test]
    fn write_then_load_roundtrips() {
        let dir = tmp_dir("roundtrip");
        let data = sample(5, 2);
        let bytes = write_checkpoint(&dir, &data, &FaultInjector::disabled()).unwrap();
        assert!(bytes > 0);
        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.data, data);
        assert_eq!(loaded.skipped_corrupt, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_valid() {
        let dir = tmp_dir("fallback");
        let inj = FaultInjector::disabled();
        write_checkpoint(&dir, &sample(3, 1), &inj).unwrap();
        write_checkpoint(&dir, &sample(9, 2), &inj).unwrap();
        // Corrupt the newest file's body.
        let newest = checkpoint_path(&dir, 2);
        let mut bytes = std::fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let loaded = load_latest(&dir).unwrap().unwrap();
        assert_eq!(loaded.data.epoch, 3, "fell back to the previous gen");
        assert_eq!(loaded.skipped_corrupt, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_point_leaves_only_a_torn_tmp_file() {
        let dir = tmp_dir("kill");
        let inj = FaultInjector::seeded(21).with_kill_point(FaultSite::CheckpointWrite, 1);
        let err = write_checkpoint(&dir, &sample(4, 1), &inj).unwrap_err();
        assert!(matches!(err, StorageError::KillPoint { .. }));
        assert!(!checkpoint_path(&dir, 1).exists(), "no final file");
        assert!(load_latest(&dir).unwrap().is_none(), "tmp file is ignored");
        assert!(
            checkpoint_path(&dir, 1).with_extension("ckpt.tmp").exists(),
            "the kill left a torn temp file behind"
        );
        // A later checkpoint generation succeeds and prune sweeps the tmp.
        write_checkpoint(&dir, &sample(4, 2), &FaultInjector::disabled()).unwrap();
        assert_eq!(prune(&dir, 2), 1, "the torn tmp file is swept");
        assert!(load_latest(&dir).unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_removes_strictly_older_generations() {
        let dir = tmp_dir("prune");
        let inj = FaultInjector::disabled();
        for gen in 1..=3 {
            write_checkpoint(&dir, &sample(gen, gen), &inj).unwrap();
            std::fs::write(wal_path(&dir, gen), b"").unwrap();
        }
        let removed = prune(&dir, 3);
        assert_eq!(removed, 4, "two checkpoints + two logs removed");
        assert_eq!(list_wal_gens(&dir).unwrap(), vec![3]);
        assert_eq!(load_latest(&dir).unwrap().unwrap().data.wal_gen, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_scans_empty() {
        let dir = std::env::temp_dir().join("gpivot-ckpt-definitely-missing");
        assert!(load_latest(&dir).unwrap().is_none());
        assert!(list_wal_gens(&dir).unwrap().is_empty());
    }
}
