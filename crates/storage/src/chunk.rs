//! Columnar chunks: the execution-time image of a [`Table`]'s rows.
//!
//! A [`Chunk`] holds one typed vector per column — `Int64`/`Float64`/
//! `Bool`/`Date` primitives, dictionary-encoded strings for pivot and
//! dimension columns, and a `Mixed` fallback of boxed [`Value`]s for
//! heterogeneous columns — plus a validity bitmap per column marking the
//! paper's `⊥` cells. The row representation stays the system of record
//! (deltas, the WAL, and the keyed mutators all speak rows); a chunk is
//! built lazily from the rows on first use and cached on the table, so
//! scan-heavy paths (join build/probe, group-by keys, GPIVOT dispatch) pay
//! enum dispatch and per-row hashing once at conversion instead of once
//! per probe.
//!
//! Two invariants make the vectorized kernels in `gpivot-exec` safe to
//! substitute for the row kernels:
//!
//! 1. **Hash fidelity** — [`Column::hash_into`] feeds a [`Hasher`] the
//!    byte-identical write sequence of [`Value::hash`], so partition
//!    assignment (and therefore parallel output order) cannot change when
//!    the columnar path computes the hashes.
//! 2. **Equality fidelity** — [`Column::value_eq`] agrees exactly with
//!    `Value::eq` (the total order), including exact Int↔Float comparison
//!    beyond 2⁵³, NaN normalization, and `-0.0 == 0.0`.
//!
//! [`Table`]: crate::Table

use crate::row::Row;
use crate::value::{cmp_i64_f64, norm_f64, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::Arc;

/// The typed storage behind one column of a [`Chunk`].
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All non-null values are `Value::Int`.
    Int64(Vec<i64>),
    /// All non-null values are `Value::Float`.
    Float64(Vec<f64>),
    /// All non-null values are `Value::Bool`.
    Bool(Vec<bool>),
    /// All non-null values are `Value::Date`.
    Date(Vec<i32>),
    /// All non-null values are `Value::Str`: dictionary-encoded, with
    /// codes assigned in first-seen order. Pivot tag columns and TPC-H
    /// dimension columns land here, which is what lets GPIVOT dispatch on
    /// a code instead of hashing a `Value`.
    Dict {
        /// Per-row dictionary code; `0` (never read) for null slots.
        codes: Vec<u32>,
        /// Distinct strings in first-seen order.
        dict: Vec<Arc<str>>,
    },
    /// Heterogeneous column (e.g. Int and Float mixed, as UNPIVOT output
    /// can produce): stored as the values themselves so no precision or
    /// type information is lost. Null slots store `Value::Null`.
    Mixed(Vec<Value>),
}

/// One column: typed data plus an optional validity bitmap.
///
/// `validity == None` means every slot is valid (non-null). Otherwise bit
/// `i` (word `i / 64`, bit `i % 64`) is **set** iff slot `i` is valid.
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Vec<u64>>,
}

/// A columnar image of a bag of rows.
#[derive(Debug, Clone)]
pub struct Chunk {
    len: usize,
    columns: Vec<Column>,
}

fn bit_set(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

impl Column {
    /// Build one column from slot `col` of `rows`.
    fn from_rows(rows: &[Row], col: usize) -> Column {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Int,
            Float,
            Bool,
            Date,
            Str,
            Mixed,
        }
        let mut kind: Option<Kind> = None;
        let mut has_null = false;
        for r in rows {
            let k = match &r.values()[col] {
                Value::Null => {
                    has_null = true;
                    continue;
                }
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Bool(_) => Kind::Bool,
                Value::Date(_) => Kind::Date,
                Value::Str(_) => Kind::Str,
            };
            match kind {
                None => kind = Some(k),
                Some(prev) if prev == k => {}
                Some(_) => {
                    kind = Some(Kind::Mixed);
                    break;
                }
            }
        }
        let n = rows.len();
        let mut validity = if has_null {
            Some(vec![0u64; n.div_ceil(64)])
        } else {
            None
        };
        let mark_valid = |v: &mut Option<Vec<u64>>, i: usize| {
            if let Some(words) = v {
                words[i >> 6] |= 1u64 << (i & 63);
            }
        };
        let data = match kind {
            // All-null (or empty) columns carry no type information.
            None => ColumnData::Mixed(vec![Value::Null; n]),
            Some(Kind::Mixed) => {
                // Heterogeneous: keep the values; validity still tracks ⊥
                // so kernels can branch on the bitmap uniformly. The type
                // scan above may have stopped early (at the second kind),
                // so recompute nullability over the whole column.
                let mut validity = if rows.iter().any(|r| r.values()[col].is_null()) {
                    Some(vec![0u64; n.div_ceil(64)])
                } else {
                    None
                };
                for (i, r) in rows.iter().enumerate() {
                    if !r.values()[col].is_null() {
                        mark_valid(&mut validity, i);
                    }
                }
                return Column {
                    data: ColumnData::Mixed(rows.iter().map(|r| r.values()[col].clone()).collect()),
                    validity,
                };
            }
            Some(Kind::Int) => {
                let mut v = Vec::with_capacity(n);
                for (i, r) in rows.iter().enumerate() {
                    match &r.values()[col] {
                        Value::Int(x) => {
                            mark_valid(&mut validity, i);
                            v.push(*x);
                        }
                        _ => v.push(0),
                    }
                }
                ColumnData::Int64(v)
            }
            Some(Kind::Float) => {
                let mut v = Vec::with_capacity(n);
                for (i, r) in rows.iter().enumerate() {
                    match &r.values()[col] {
                        Value::Float(x) => {
                            mark_valid(&mut validity, i);
                            v.push(*x);
                        }
                        _ => v.push(0.0),
                    }
                }
                ColumnData::Float64(v)
            }
            Some(Kind::Bool) => {
                let mut v = Vec::with_capacity(n);
                for (i, r) in rows.iter().enumerate() {
                    match &r.values()[col] {
                        Value::Bool(x) => {
                            mark_valid(&mut validity, i);
                            v.push(*x);
                        }
                        _ => v.push(false),
                    }
                }
                ColumnData::Bool(v)
            }
            Some(Kind::Date) => {
                let mut v = Vec::with_capacity(n);
                for (i, r) in rows.iter().enumerate() {
                    match &r.values()[col] {
                        Value::Date(x) => {
                            mark_valid(&mut validity, i);
                            v.push(*x);
                        }
                        _ => v.push(0),
                    }
                }
                ColumnData::Date(v)
            }
            Some(Kind::Str) => {
                let mut codes = Vec::with_capacity(n);
                let mut dict: Vec<Arc<str>> = Vec::new();
                let mut intern: HashMap<Arc<str>, u32> = HashMap::new();
                for (i, r) in rows.iter().enumerate() {
                    match &r.values()[col] {
                        Value::Str(s) => {
                            mark_valid(&mut validity, i);
                            let code = *intern.entry(Arc::clone(s)).or_insert_with(|| {
                                dict.push(Arc::clone(s));
                                (dict.len() - 1) as u32
                            });
                            codes.push(code);
                        }
                        _ => codes.push(0),
                    }
                }
                ColumnData::Dict { codes, dict }
            }
        };
        Column { data, validity }
    }

    /// The typed storage.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The dictionary view, if this column is dictionary-encoded.
    pub fn dict(&self) -> Option<(&[u32], &[Arc<str>])> {
        match &self.data {
            ColumnData::Dict { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// True iff slot `i` is `⊥`.
    pub fn is_null(&self, i: usize) -> bool {
        match &self.validity {
            Some(words) => !bit_set(words, i),
            None => false,
        }
    }

    /// Materialize slot `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int64(v) => Value::Int(v[i]),
            ColumnData::Float64(v) => Value::Float(v[i]),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Date(v) => Value::Date(v[i]),
            ColumnData::Dict { codes, dict } => Value::Str(Arc::clone(&dict[codes[i] as usize])),
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Feed each slot's hash into its per-row hasher state, replicating
    /// the exact byte sequence of [`Value::hash`]. `states.len()` must
    /// equal the chunk length.
    ///
    /// This is the load-bearing guarantee for the parallel kernels: the
    /// morsel partitioner assigns a row to a partition by hashing its key
    /// values into a `DefaultHasher`, and partition assignment decides
    /// output order. Byte-identical writes here mean the columnar path
    /// partitions exactly like the row path.
    pub fn hash_into<H: Hasher>(&self, states: &mut [H]) {
        match &self.data {
            ColumnData::Int64(v) => {
                for (i, s) in states.iter_mut().enumerate() {
                    if self.is_null(i) {
                        s.write_u8(0);
                        continue;
                    }
                    // Mirror Value::hash's Int branch: numerics that
                    // round-trip through f64 hash as their float bits so
                    // Int(42) and Float(42.0) collide as required by Eq.
                    let x = v[i];
                    let f = x as f64;
                    if f as i64 == x {
                        s.write_u8(2);
                        s.write_u64(norm_f64(f).to_bits());
                    } else {
                        s.write_u8(3);
                        s.write_i64(x);
                    }
                }
            }
            ColumnData::Float64(v) => {
                for (i, s) in states.iter_mut().enumerate() {
                    if self.is_null(i) {
                        s.write_u8(0);
                        continue;
                    }
                    s.write_u8(2);
                    s.write_u64(norm_f64(v[i]).to_bits());
                }
            }
            ColumnData::Bool(v) => {
                for (i, s) in states.iter_mut().enumerate() {
                    if self.is_null(i) {
                        s.write_u8(0);
                        continue;
                    }
                    s.write_u8(1);
                    s.write_u8(u8::from(v[i]));
                }
            }
            ColumnData::Date(v) => {
                for (i, s) in states.iter_mut().enumerate() {
                    if self.is_null(i) {
                        s.write_u8(0);
                        continue;
                    }
                    s.write_u8(5);
                    s.write_i32(v[i]);
                }
            }
            ColumnData::Dict { codes, dict } => {
                for (i, s) in states.iter_mut().enumerate() {
                    if self.is_null(i) {
                        s.write_u8(0);
                        continue;
                    }
                    s.write_u8(4);
                    // str::hash: the bytes, then a 0xff terminator.
                    s.write(dict[codes[i] as usize].as_bytes());
                    s.write_u8(0xff);
                }
            }
            ColumnData::Mixed(v) => {
                for (i, s) in states.iter_mut().enumerate() {
                    use std::hash::Hash;
                    v[i].hash(s);
                }
            }
        }
    }

    /// Total-order equality between slot `i` of this column and slot `j`
    /// of `other`, agreeing exactly with `Value::eq` (so `⊥ == ⊥`, NaNs
    /// are equal after normalization, and Int↔Float compares exactly).
    pub fn value_eq(&self, i: usize, other: &Column, j: usize) -> bool {
        match (self.is_null(i), other.is_null(j)) {
            (true, true) => return true,
            (false, false) => {}
            _ => return false,
        }
        use ColumnData::*;
        match (&self.data, &other.data) {
            (Int64(a), Int64(b)) => a[i] == b[j],
            (Float64(a), Float64(b)) => norm_f64(a[i]).to_bits() == norm_f64(b[j]).to_bits(),
            (Int64(a), Float64(b)) => cmp_i64_f64(a[i], b[j]) == Ordering::Equal,
            (Float64(a), Int64(b)) => cmp_i64_f64(b[j], a[i]) == Ordering::Equal,
            (Bool(a), Bool(b)) => a[i] == b[j],
            (Date(a), Date(b)) => a[i] == b[j],
            (
                Dict {
                    codes: ca,
                    dict: da,
                },
                Dict {
                    codes: cb,
                    dict: db,
                },
            ) => {
                let (sa, sb) = (&da[ca[i] as usize], &db[cb[j] as usize]);
                Arc::ptr_eq(sa, sb) || sa == sb
            }
            // Cross-type slots (typed vs Mixed, Str vs Date, ...) defer to
            // the Value total order itself.
            _ => self.value(i) == other.value(j),
        }
    }
}

impl Chunk {
    /// Build the columnar image of `rows`. Every row must have `arity`
    /// columns (callers hold tables, which enforce this).
    pub fn from_rows(rows: &[Row], arity: usize) -> Chunk {
        Chunk {
            len: rows.len(),
            columns: (0..arity).map(|c| Column::from_rows(rows, c)).collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the chunk holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column `j`.
    pub fn column(&self, j: usize) -> &Column {
        &self.columns[j]
    }

    /// Materialize cell `(i, j)`.
    pub fn value(&self, i: usize, j: usize) -> Value {
        self.columns[j].value(i)
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.value(i)).collect::<Vec<_>>())
    }

    /// Materialize row `i` restricted to `idx` (a columnar `Row::project`).
    pub fn project_row(&self, i: usize, idx: &[usize]) -> Row {
        Row::new(
            idx.iter()
                .map(|&j| self.columns[j].value(i))
                .collect::<Vec<_>>(),
        )
    }

    /// Materialize every row — the lazy-shim path back to row land.
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Per-row hash of the key columns `key_idx`, using hasher states
    /// produced by `mk` (one per row, finished in row order). With
    /// `DefaultHasher::new` this computes exactly what the row-at-a-time
    /// partitioner computes from `row[k].hash(&mut h)` per key column.
    pub fn hash_rows<H: Hasher>(&self, key_idx: &[usize], mk: impl Fn() -> H) -> Vec<u64> {
        let mut states: Vec<H> = (0..self.len).map(|_| mk()).collect();
        for &k in key_idx {
            self.columns[k].hash_into(&mut states);
        }
        states.into_iter().map(|s| s.finish()).collect()
    }

    /// True iff every column in `idx` is `⊥` at row `i` (GPIVOT's
    /// all-measures-null skip).
    pub fn all_null(&self, i: usize, idx: &[usize]) -> bool {
        idx.iter().all(|&j| self.columns[j].is_null(i))
    }

    /// True iff any column in `idx` is `⊥` at row `i` (join null-key skip).
    pub fn any_null(&self, i: usize, idx: &[usize]) -> bool {
        idx.iter().any(|&j| self.columns[j].is_null(i))
    }

    /// Row-vs-row equality on projections: row `i` of `self` under
    /// `self_idx` against row `j` of `other` under `other_idx`.
    pub fn rows_eq(
        &self,
        i: usize,
        self_idx: &[usize],
        other: &Chunk,
        j: usize,
        other_idx: &[usize],
    ) -> bool {
        debug_assert_eq!(self_idx.len(), other_idx.len());
        self_idx
            .iter()
            .zip(other_idx)
            .all(|(&a, &b)| self.columns[a].value_eq(i, &other.columns[b], j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hash;

    fn value_hash(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    fn column_hashes(c: &Column, n: usize) -> Vec<u64> {
        let mut states: Vec<DefaultHasher> = (0..n).map(|_| DefaultHasher::new()).collect();
        c.hash_into(&mut states);
        states.into_iter().map(|s| s.finish()).collect()
    }

    /// One row per interesting value, exercising every column kind.
    fn menagerie() -> Vec<Row> {
        vec![
            row![1, 1.5, true, Value::Date(10), "ny", Value::Null],
            row![
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
                7
            ],
            row![
                (1i64 << 53) + 1,
                f64::NAN,
                false,
                Value::Date(-3),
                "sf",
                "mixed"
            ],
            row![i64::MIN, -0.0, true, Value::Date(0), "ny", 2.5],
            row![42, 42.0, false, Value::Date(10), "la", Value::Bool(false)],
        ]
    }

    #[test]
    fn typed_encodings_are_chosen_per_column() {
        let rows = menagerie();
        let c = Chunk::from_rows(&rows, 6);
        assert!(matches!(c.column(0).data(), ColumnData::Int64(_)));
        assert!(matches!(c.column(1).data(), ColumnData::Float64(_)));
        assert!(matches!(c.column(2).data(), ColumnData::Bool(_)));
        assert!(matches!(c.column(3).data(), ColumnData::Date(_)));
        assert!(matches!(c.column(4).data(), ColumnData::Dict { .. }));
        assert!(matches!(c.column(5).data(), ColumnData::Mixed(_)));
    }

    #[test]
    fn dictionary_codes_are_first_seen_order() {
        let rows = menagerie();
        let c = Chunk::from_rows(&rows, 6);
        let (codes, dict) = c.column(4).dict().unwrap();
        let strs: Vec<&str> = dict.iter().map(|s| s.as_ref()).collect();
        assert_eq!(strs, ["ny", "sf", "la"]);
        assert_eq!(codes[0], 0);
        assert_eq!(codes[2], 1);
        assert_eq!(codes[3], 0, "repeat reuses the code");
        assert_eq!(codes[4], 2);
        assert!(c.column(4).is_null(1));
    }

    #[test]
    fn roundtrip_reproduces_rows_exactly() {
        let rows = menagerie();
        let c = Chunk::from_rows(&rows, 6);
        assert_eq!(c.to_rows(), rows);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(&c.row(i), r);
            assert_eq!(c.project_row(i, &[4, 0]), r.project(&[4, 0]));
        }
    }

    #[test]
    fn validity_bitmap_tracks_bottom() {
        let rows = menagerie();
        let c = Chunk::from_rows(&rows, 6);
        for (i, r) in rows.iter().enumerate() {
            for j in 0..6 {
                assert_eq!(c.column(j).is_null(i), r.values()[j].is_null());
            }
        }
        assert!(c.all_null(1, &[0, 1, 2]));
        assert!(!c.all_null(1, &[0, 5]));
        assert!(c.any_null(0, &[0, 5]));
        assert!(!c.any_null(0, &[0, 1]));
    }

    #[test]
    fn hash_into_replicates_value_hash_bytes() {
        // The vectorized partitioner is only allowed to exist because this
        // holds for every variant, including the Int/Float unification
        // cases and ⊥.
        let rows = menagerie();
        let c = Chunk::from_rows(&rows, 6);
        for j in 0..6 {
            let got = column_hashes(c.column(j), rows.len());
            for (i, r) in rows.iter().enumerate() {
                assert_eq!(
                    got[i],
                    value_hash(&r.values()[j]),
                    "column {j} row {i}: {:?}",
                    r.values()[j]
                );
            }
        }
    }

    #[test]
    fn hash_rows_matches_row_at_a_time_key_hash() {
        let rows = menagerie();
        let c = Chunk::from_rows(&rows, 6);
        let key_idx = [4usize, 0, 1];
        let got = c.hash_rows(&key_idx, DefaultHasher::new);
        for (i, r) in rows.iter().enumerate() {
            let mut h = DefaultHasher::new();
            for &k in &key_idx {
                r.values()[k].hash(&mut h);
            }
            assert_eq!(got[i], h.finish(), "row {i}");
        }
    }

    #[test]
    fn value_eq_agrees_with_total_order_across_encodings() {
        // Columns of different encodings holding numerically related
        // values: Int64 vs Float64 vs Mixed.
        let left = vec![
            row![42, (1i64 << 53) + 1, Value::Null, "a"],
            row![0, 1i64 << 53, 5, "b"],
        ];
        let right = vec![
            row![42.0, (1i64 << 53) as f64, Value::Null, Value::Null],
            row![-0.0, (1i64 << 53) as f64, 5.0, "b"],
        ];
        let lc = Chunk::from_rows(&left, 4);
        let rc = Chunk::from_rows(&right, 4);
        for (i, lrow) in left.iter().enumerate() {
            for (j, rrow) in right.iter().enumerate() {
                for col in 0..4 {
                    let expect = lrow.values()[col] == rrow.values()[col];
                    assert_eq!(
                        lc.column(col).value_eq(i, rc.column(col), j),
                        expect,
                        "col {col}: {:?} vs {:?}",
                        lrow.values()[col],
                        rrow.values()[col]
                    );
                }
            }
        }
        // The 2^53 + 1 regression specifically: Int64 slot vs Float64 slot.
        assert!(!lc.column(1).value_eq(0, rc.column(1), 0));
        assert!(lc.column(1).value_eq(1, rc.column(1), 1));
    }

    #[test]
    fn all_null_column_is_mixed_and_empty_chunk_works() {
        let rows = vec![row![Value::Null], row![Value::Null]];
        let c = Chunk::from_rows(&rows, 1);
        assert!(matches!(c.column(0).data(), ColumnData::Mixed(_)));
        assert!(c.column(0).is_null(0) && c.column(0).is_null(1));
        assert_eq!(c.to_rows(), rows);

        let empty = Chunk::from_rows(&[], 3);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert_eq!(empty.arity(), 3);
        assert!(empty.to_rows().is_empty());
    }
}
