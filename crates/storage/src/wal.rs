//! Append-only write-ahead log for the durability layer.
//!
//! Every state-changing event the serve tier acknowledges is framed and
//! appended here before the acknowledgement goes out:
//!
//! ```text
//! frame   := [len: u32 LE] [crc: u32 LE] [body: len bytes]
//! body    := [version: u8] [record payload]
//! payload := [tag: u8] [fields...]           (codec.rs primitives)
//! crc     := CRC-32/IEEE over body
//! ```
//!
//! The framing is what makes crash recovery possible: a torn write (process
//! death mid-append) leaves a frame whose length prefix overruns the file or
//! whose CRC does not match, and [`read_wal`] stops at the last valid frame
//! boundary — *truncate-at-last-valid-record, never panic*. Whether the torn
//! suffix is then physically removed ([`truncate_wal`]) is the caller's
//! choice; recovery does it before reopening the log for append.
//!
//! Fault hooks: [`Wal::append`] consults [`FaultSite::WalAppend`] and, on a
//! seeded kill point, deliberately writes a *torn prefix* of the frame
//! (length drawn from the injector's own RNG) before returning the error —
//! simulating death mid-`write(2)`. [`Wal::sync`] consults
//! [`FaultSite::WalFsync`]; a kill there leaves the record fully written but
//! never acknowledged, the other interesting crash window.

use crate::codec::{self, Reader};
use crate::error::{Result, StorageError};
use crate::fault::{FaultInjector, FaultSite};
use crate::Delta;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Current on-disk format version (the leading byte of every frame body).
pub const WAL_VERSION: u8 = 1;

/// Upper bound on a single frame body; a length prefix beyond this is
/// treated as corruption rather than an allocation request.
const MAX_FRAME: u32 = 1 << 30;

/// When the log file is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// fsync after every appended record. Safest, slowest.
    Always,
    /// fsync once per committed epoch (after the `EpochCommit` marker) and
    /// after checkpoints. An acknowledged commit is always durable; deltas
    /// inside a not-yet-committed epoch may be lost with the page cache,
    /// which recovery treats the same as an uncommitted epoch. The default.
    #[default]
    OnCommit,
    /// Never fsync from the engine; durability is delegated to the OS.
    /// For tests and throughput experiments.
    Never,
}

impl FsyncPolicy {
    /// Stable lowercase name (used in reports and configs).
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::OnCommit => "on-commit",
            FsyncPolicy::Never => "never",
        }
    }
}

/// One durable event. The variants mirror exactly the state transitions the
/// serve tier acknowledges to callers.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A view was registered. The plan is persisted as dialect SQL text
    /// (round-trip property-tested) rather than a binary plan encoding.
    RegisterView {
        name: String,
        definition_sql: String,
        strategy: String,
    },
    /// A view was dropped.
    DropView { name: String },
    /// A delta was accepted into the ingest queue for `table`.
    IngestDelta { table: String, delta: Delta },
    /// An epoch refresh drained the queue. Everything between this marker
    /// and the matching `EpochCommit` is provisional.
    EpochBegin { epoch: u64 },
    /// The epoch's staged base-table state and view tables were committed
    /// and acknowledged. Recovery replays up to the last such marker.
    EpochCommit { epoch: u64 },
    /// A checkpoint at `epoch` rotated the log to generation `wal_gen`.
    /// Written as the first record of the new generation; recovery uses it
    /// as a consistency cross-check against the checkpoint file.
    Checkpoint { epoch: u64, wal_gen: u64 },
}

impl WalRecord {
    /// Stable kind name — the fault-injection context and trace label.
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::RegisterView { .. } => "register-view",
            WalRecord::DropView { .. } => "drop-view",
            WalRecord::IngestDelta { .. } => "ingest-delta",
            WalRecord::EpochBegin { .. } => "epoch-begin",
            WalRecord::EpochCommit { .. } => "epoch-commit",
            WalRecord::Checkpoint { .. } => "checkpoint",
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::RegisterView {
                name,
                definition_sql,
                strategy,
            } => {
                codec::put_u8(out, 1);
                codec::put_str(out, name);
                codec::put_str(out, definition_sql);
                codec::put_str(out, strategy);
            }
            WalRecord::DropView { name } => {
                codec::put_u8(out, 2);
                codec::put_str(out, name);
            }
            WalRecord::IngestDelta { table, delta } => {
                codec::put_u8(out, 3);
                codec::put_str(out, table);
                codec::put_delta(out, delta);
            }
            WalRecord::EpochBegin { epoch } => {
                codec::put_u8(out, 4);
                codec::put_u64(out, *epoch);
            }
            WalRecord::EpochCommit { epoch } => {
                codec::put_u8(out, 5);
                codec::put_u64(out, *epoch);
            }
            WalRecord::Checkpoint { epoch, wal_gen } => {
                codec::put_u8(out, 6);
                codec::put_u64(out, *epoch);
                codec::put_u64(out, *wal_gen);
            }
        }
    }

    fn decode_payload(r: &mut Reader<'_>) -> Result<WalRecord> {
        let rec = match r.u8()? {
            1 => WalRecord::RegisterView {
                name: r.str()?,
                definition_sql: r.str()?,
                strategy: r.str()?,
            },
            2 => WalRecord::DropView { name: r.str()? },
            3 => WalRecord::IngestDelta {
                table: r.str()?,
                delta: r.delta()?,
            },
            4 => WalRecord::EpochBegin { epoch: r.u64()? },
            5 => WalRecord::EpochCommit { epoch: r.u64()? },
            6 => WalRecord::Checkpoint {
                epoch: r.u64()?,
                wal_gen: r.u64()?,
            },
            t => {
                return Err(StorageError::Corrupt {
                    what: format!("unknown wal record tag {t}"),
                })
            }
        };
        Ok(rec)
    }
}

/// Frame a record into its on-disk bytes (`[len][crc][version ∥ payload]`).
pub fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    codec::put_u8(&mut body, WAL_VERSION);
    record.encode_payload(&mut body);
    let mut frame = Vec::with_capacity(8 + body.len());
    codec::put_u32(&mut frame, body.len() as u32);
    codec::put_u32(&mut frame, codec::crc32(&body));
    frame.extend_from_slice(&body);
    frame
}

fn io_err(op: &str, e: std::io::Error) -> StorageError {
    StorageError::Io {
        op: op.to_string(),
        message: e.to_string(),
    }
}

/// An open log file in append mode, with fault hooks and counters.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    injector: FaultInjector,
    records: u64,
    bytes: u64,
    fsyncs: u64,
}

impl Wal {
    /// Create a fresh, empty log at `path` (truncating any existing file —
    /// callers rotate generations, they never blindly reuse a path).
    pub fn create(path: impl Into<PathBuf>) -> Result<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("wal create", e))?;
        Ok(Wal {
            file,
            path,
            injector: FaultInjector::disabled(),
            records: 0,
            bytes: 0,
            fsyncs: 0,
        })
    }

    /// Open an existing log for append. Recovery calls this *after*
    /// [`read_wal`] + [`truncate_wal`] have removed any torn tail, so the
    /// write position is a valid frame boundary.
    pub fn open_append(path: impl Into<PathBuf>) -> Result<Wal> {
        let path = path.into();
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err("wal open", e))?;
        let bytes = file.metadata().map_err(|e| io_err("wal open", e))?.len();
        Ok(Wal {
            file,
            path,
            injector: FaultInjector::disabled(),
            records: 0,
            bytes,
            fsyncs: 0,
        })
    }

    /// Route this log's fault checks through `injector` (chaos testing).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.injector = injector;
    }

    /// Append one framed record. On a seeded kill point this writes a torn
    /// prefix of the frame and returns [`StorageError::KillPoint`]; on an
    /// injected transient fault nothing is written (a retried append is
    /// safe). Does **not** fsync — see [`Wal::sync`].
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let frame = encode_frame(record);
        if let Err(e) = self.injector.check(FaultSite::WalAppend, record.kind()) {
            if matches!(e, StorageError::KillPoint { .. }) && !frame.is_empty() {
                // Simulated death mid-write(2): persist a deterministic
                // strict prefix of the frame so the tail is genuinely torn.
                let cut = ((self.injector.roll_unit() * frame.len() as f64) as usize)
                    .min(frame.len() - 1);
                self.file
                    .write_all(&frame[..cut])
                    .map_err(|err| io_err("wal torn write", err))?;
                let _ = self.file.flush();
            }
            return Err(e);
        }
        self.file
            .write_all(&frame)
            .map_err(|e| io_err("wal append", e))?;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Flush the log to stable storage. `context` names the trigger (record
    /// kind or policy) for fault targeting and error messages.
    pub fn sync(&mut self, context: &str) -> Result<()> {
        self.injector.check(FaultSite::WalFsync, context)?;
        self.file.sync_data().map_err(|e| io_err("wal fsync", e))?;
        self.fsyncs += 1;
        Ok(())
    }

    /// Records appended through this handle (not lifetime file records).
    pub fn records_appended(&self) -> u64 {
        self.records
    }

    /// Bytes in the file (pre-existing + appended through this handle).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// fsyncs issued through this handle.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// The result of scanning a log file: every valid record in order, plus
/// where the valid prefix ends.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records, in append order.
    pub records: Vec<WalRecord>,
    /// Byte offset of the end of the last valid frame.
    pub valid_len: u64,
    /// Total file length.
    pub total_len: u64,
    /// True iff the file has bytes past the last valid frame (a torn or
    /// corrupt tail that recovery should truncate).
    pub torn: bool,
}

/// Scan a log file, stopping at the first torn or corrupt frame. Never
/// panics; a missing file scans as empty. Only a genuinely unreadable file
/// (permissions, I/O error) returns `Err`.
pub fn read_wal(path: &Path) -> Result<WalScan> {
    let buf = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("wal read", e)),
    };
    let total_len = buf.len() as u64;
    let mut records = Vec::new();
    let mut pos = 0usize;
    // Frame header first; any malformed element below ends the scan at the
    // last valid frame boundary. All offset arithmetic from the on-disk
    // length field is checked: a corrupt length must take the torn-tail
    // path, never overflow (a debug-build panic on 32-bit targets where
    // `MAX_FRAME` approaches `usize::MAX`).
    while let Some(header) = pos.checked_add(8).and_then(|end| buf.get(pos..end)) {
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if len == 0 || len > MAX_FRAME {
            break;
        }
        let body_start = pos + 8;
        let Some(body) = body_start
            .checked_add(len as usize)
            .and_then(|body_end| buf.get(body_start..body_end))
        else {
            break; // length prefix overruns the file: torn final frame
        };
        if codec::crc32(body) != crc {
            break;
        }
        let mut r = Reader::new(body);
        let ok = match r.u8() {
            Ok(WAL_VERSION) => WalRecord::decode_payload(&mut r)
                .ok()
                .filter(|_| r.is_empty()),
            _ => None,
        };
        let Some(rec) = ok else {
            break; // checksum passed but payload is malformed: stop here too
        };
        records.push(rec);
        // `body` came out of `buf`, so this sum is bounded by `buf.len()`.
        pos = body_start + body.len();
    }
    Ok(WalScan {
        records,
        valid_len: pos as u64,
        total_len,
        torn: (pos as u64) < total_len,
    })
}

/// Physically truncate a log to its valid prefix (as found by [`read_wal`])
/// and flush the truncation.
pub fn truncate_wal(path: &Path, valid_len: u64) -> Result<()> {
    let file = OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err("wal truncate", e))?;
    file.set_len(valid_len)
        .map_err(|e| io_err("wal truncate", e))?;
    file.sync_data().map_err(|e| io_err("wal truncate", e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test; std-only (no tempfile crate offline).
    fn tmp(stem: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gpivot-wal-{}-{stem}-{n}.log", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        let mut delta = Delta::new();
        delta.add(row![1, "a", 2.5], 2);
        delta.add(row![2, "b", -1.0], -1);
        vec![
            WalRecord::Checkpoint {
                epoch: 0,
                wal_gen: 1,
            },
            WalRecord::RegisterView {
                name: "v".into(),
                definition_sql: "SELECT a FROM t".into(),
                strategy: "recompute".into(),
            },
            WalRecord::IngestDelta {
                table: "t".into(),
                delta,
            },
            WalRecord::EpochBegin { epoch: 1 },
            WalRecord::EpochCommit { epoch: 1 },
            WalRecord::DropView { name: "v".into() },
        ]
    }

    #[test]
    fn append_then_scan_roundtrips_every_variant() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path).unwrap();
        for rec in &sample_records() {
            wal.append(rec).unwrap();
        }
        wal.sync("test").unwrap();
        assert_eq!(wal.records_appended(), 6);
        assert_eq!(wal.fsyncs(), 1);

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, sample_records());
        assert!(!scan.torn);
        assert_eq!(scan.valid_len, scan.total_len);
        assert_eq!(scan.valid_len, wal.bytes_written());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_detected_and_truncated_not_panicked() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path).unwrap();
        let recs = sample_records();
        for rec in &recs[..3] {
            wal.append(rec).unwrap();
        }
        drop(wal);
        // Simulate a crash mid-append: half of a valid frame.
        let frame = encode_frame(&recs[3]);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(f);

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, recs[..3]);
        assert!(scan.torn);
        assert!(scan.valid_len < scan.total_len);

        truncate_wal(&path, scan.valid_len).unwrap();
        let rescan = read_wal(&path).unwrap();
        assert!(!rescan.torn);
        assert_eq!(rescan.records, recs[..3]);

        // And the truncated log accepts appends again.
        let mut wal = Wal::open_append(&path).unwrap();
        wal.append(&recs[3]).unwrap();
        assert_eq!(read_wal(&path).unwrap().records, recs[..4]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn oversized_length_frame_takes_the_torn_path_not_overflow() {
        let path = tmp("oversized-len");
        let mut wal = Wal::create(&path).unwrap();
        let recs = sample_records();
        for rec in &recs[..2] {
            wal.append(rec).unwrap();
        }
        drop(wal);
        let valid = std::fs::metadata(&path).unwrap().len();

        // Craft a frame whose length field is the maximum the u32 header can
        // express. `body_start + len` must not overflow (a debug panic on
        // 32-bit targets) — the scan stops at the last valid frame.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"garbage").unwrap();
        drop(f);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, recs[..2]);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, valid);

        // Same with a length that passes the MAX_FRAME gate but overruns the
        // file by close to the full 1 GiB cap: still the torn path.
        truncate_wal(&path, valid).unwrap();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&MAX_FRAME.to_le_bytes()).unwrap();
        f.write_all(&0u32.to_le_bytes()).unwrap();
        f.write_all(b"short body").unwrap();
        drop(f);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, recs[..2]);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, valid);

        truncate_wal(&path, scan.valid_len).unwrap();
        assert!(!read_wal(&path).unwrap().torn);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crc_corruption_stops_the_scan_at_the_bad_frame() {
        let path = tmp("crc");
        let mut wal = Wal::create(&path).unwrap();
        let recs = sample_records();
        let mut offsets = Vec::new();
        for rec in &recs {
            offsets.push(wal.bytes_written());
            wal.append(rec).unwrap();
        }
        drop(wal);
        // Flip one payload byte inside the third frame.
        let mut bytes = std::fs::read(&path).unwrap();
        let third = offsets[2] as usize;
        bytes[third + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, recs[..2], "scan stops before the bad frame");
        assert!(scan.torn);
        assert_eq!(scan.valid_len, offsets[2]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_point_append_leaves_a_torn_strict_prefix() {
        let path = tmp("kill");
        let recs = sample_records();
        let mut wal = Wal::create(&path).unwrap();
        wal.set_fault_injector(FaultInjector::seeded(11).with_kill_point(FaultSite::WalAppend, 2));
        wal.append(&recs[0]).unwrap();
        let err = wal.append(&recs[2]).unwrap_err();
        assert!(matches!(err, StorageError::KillPoint { .. }));
        assert!(!err.is_transient());

        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, recs[..1], "killed record must not decode");
        let full = encode_frame(&recs[2]).len() as u64;
        assert!(
            scan.total_len - scan.valid_len < full,
            "the torn prefix is strictly shorter than the frame"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_kill_point_leaves_the_record_intact() {
        let path = tmp("fsync-kill");
        let recs = sample_records();
        let mut wal = Wal::create(&path).unwrap();
        wal.set_fault_injector(FaultInjector::seeded(12).with_kill_point(FaultSite::WalFsync, 1));
        wal.append(&recs[4]).unwrap();
        assert!(matches!(
            wal.sync("epoch-commit").unwrap_err(),
            StorageError::KillPoint { .. }
        ));
        // The record was written before the failed fsync: a reopen sees it.
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, recs[4..5]);
        assert!(!scan.torn);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_scans_empty() {
        let scan = read_wal(Path::new("/nonexistent/gpivot-test.wal")).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.total_len, 0);
        assert!(!scan.torn);
    }
}
