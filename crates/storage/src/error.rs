//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A referenced column does not exist in a schema.
    UnknownColumn { name: String, schema: String },
    /// A referenced table does not exist in the catalog.
    UnknownTable(String),
    /// A table with the same name is already registered.
    DuplicateTable(String),
    /// A row violates the table's declared key.
    KeyViolation { table: String, key: String },
    /// A row's arity does not match the table schema.
    ArityMismatch { expected: usize, actual: usize },
    /// Duplicate column name while constructing a schema.
    DuplicateColumn(String),
    /// A fault deliberately injected by [`crate::fault::FaultInjector`]
    /// (chaos testing). Always classified as *transient* by the layers
    /// above: it models a recoverable I/O or scheduling hiccup.
    FaultInjected { site: String, op: String },
    /// A seeded *kill point* fired ([`crate::fault::FaultInjector::with_kill_point`]):
    /// the operation was aborted mid-record to simulate process death.
    /// Deliberately **not** transient — a crashed process does not retry;
    /// the crash-recovery harness abandons the instance and reopens from
    /// disk instead.
    KillPoint { site: String, op: String },
    /// A filesystem operation failed (WAL append, fsync, checkpoint write,
    /// directory scan). The underlying `std::io::Error` is rendered into
    /// `message` so this enum stays `Clone + PartialEq`.
    Io { op: String, message: String },
    /// On-disk bytes failed validation during recovery (bad magic, version,
    /// checksum, or a truncated payload). Recovery code treats a corrupt
    /// *tail* as torn (truncate and continue) and only surfaces this for
    /// corruption it cannot safely skip.
    Corrupt { what: String },
}

impl StorageError {
    /// True iff retrying the failed operation can plausibly succeed.
    /// Injected faults are transient by definition; every real storage
    /// error (unknown table, key violation, ...) is a permanent fact about
    /// the data or the request.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::FaultInjected { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn { name, schema } => {
                write!(f, "unknown column `{name}` in schema [{schema}]")
            }
            StorageError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StorageError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            StorageError::KeyViolation { table, key } => {
                write!(f, "key violation in table `{table}` for key value {key}")
            }
            StorageError::ArityMismatch { expected, actual } => {
                write!(
                    f,
                    "row arity {actual} does not match schema arity {expected}"
                )
            }
            StorageError::DuplicateColumn(c) => write!(f, "duplicate column name `{c}`"),
            StorageError::FaultInjected { site, op } => {
                write!(f, "injected fault at {site} site during `{op}`")
            }
            StorageError::KillPoint { site, op } => {
                write!(f, "kill point fired at {site} site during `{op}`")
            }
            StorageError::Io { op, message } => write!(f, "i/o error during {op}: {message}"),
            StorageError::Corrupt { what } => write!(f, "corrupt on-disk data: {what}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = StorageError::UnknownColumn {
            name: "x".into(),
            schema: "a, b".into(),
        };
        assert!(e.to_string().contains("unknown column `x`"));
        assert!(StorageError::UnknownTable("t".into())
            .to_string()
            .contains("`t`"));
    }
}
