//! Dynamically typed scalar values with a first-class `NULL` (`⊥`).
//!
//! The GPIVOT paper leans heavily on `⊥` semantics: pivoted cells that have
//! no source tuple are `⊥`, "null-intolerant" predicates evaluate to false on
//! `⊥`, and a maintained view row is deleted once *all* of its pivoted cells
//! become `⊥`. [`Value::Null`] is that `⊥`.
//!
//! Values implement **total** `Eq`/`Ord`/`Hash` so that rows can be used as
//! hash-map keys (grouping, pivoting, join build sides). `Null` compares
//! less than everything else and equals itself under this total order; SQL
//! three-valued comparison is provided separately by [`Value::sql_eq`] and
//! [`Value::compare`], which return `None` on `NULL` operands — that is what
//! predicate evaluation uses, keeping "null-intolerant" semantics honest.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A scalar runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / the paper's `⊥` (also rendered `⊥` by `Display`).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering (NaNs normalized to a single bit
    /// pattern so hashing is consistent).
    Float(f64),
    /// Interned UTF-8 string; `Arc` keeps row cloning cheap.
    Str(Arc<str>),
    /// Calendar date as days since 1970-01-01 (TPC-H style dates).
    Date(i32),
}

impl Value {
    /// Create a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True iff this value is `NULL`/`⊥`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A rank used to order values of different types under the total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Str(_) => 3,
            Value::Date(_) => 4,
        }
    }

    /// Numeric view of the value, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if the value is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL three-valued equality: `None` if either side is `NULL`.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.total_cmp(other) == Ordering::Equal)
        }
    }

    /// SQL three-valued comparison: `None` if either side is `NULL`.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.total_cmp(other))
        }
    }

    /// Total comparison used for hashing-compatible equality and sorting.
    ///
    /// `Null < Bool < numeric < Str < Date`; `Int` and `Float` compare
    /// numerically so `Int(1) == Float(1.0)`. The mixed Int/Float arms
    /// compare *exactly* — an `i64` is never rounded through `f64`, so
    /// distinct values beyond ±2⁵³ stay distinct.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => norm_f64(*a).total_cmp(&norm_f64(*b)),
            (Int(a), Float(b)) => cmp_i64_f64(*a, *b),
            (Float(a), Int(b)) => cmp_i64_f64(*b, *a).reverse(),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }

    /// Add two numeric values (`NULL` absorbs). Used by SUM maintenance.
    pub fn numeric_add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x + y),
                _ => Value::Null,
            },
        }
    }

    /// Subtract two numeric values (`NULL` absorbs). Used by SUM maintenance.
    pub fn numeric_sub(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => Value::Int(a - b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x - y),
                _ => Value::Null,
            },
        }
    }
}

/// Exact comparison of an `i64` against an `f64` under the total order.
///
/// `i as f64` is lossy for |i| > 2⁵³, so the naive cast makes distinct
/// values compare equal (e.g. `2⁵³ + 1` vs `2⁵³.0`), corrupting sorted
/// dedup and hash-group keys. Instead the float side is truncated — exact
/// for every finite `f64` in the `i64` range — and the fractional part
/// breaks integer-part ties. NaN is normalized first, which makes it the
/// positive quiet NaN: above every finite value under `f64::total_cmp`,
/// hence above every integer.
pub(crate) fn cmp_i64_f64(i: i64, f: f64) -> Ordering {
    let f = norm_f64(f);
    if f.is_nan() {
        return Ordering::Less; // int < normalized (positive) NaN
    }
    const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0; // 2^63, exact
    if f >= TWO_POW_63 {
        return Ordering::Less; // f > i64::MAX >= i
    }
    if f < -TWO_POW_63 {
        return Ordering::Greater; // f < i64::MIN <= i
    }
    // Finite and within [-2^63, 2^63): trunc() is exact and fits in i64.
    let t = f.trunc();
    match i.cmp(&(t as i64)) {
        Ordering::Equal if f > t => Ordering::Less,
        Ordering::Equal if f < t => Ordering::Greater,
        ord => ord,
    }
}

/// Normalize a float so every NaN has one representation and `-0.0 == 0.0`.
pub(crate) fn norm_f64(f: f64) -> f64 {
    if f.is_nan() {
        f64::NAN
    } else if f == 0.0 {
        0.0
    } else {
        f
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal,
            // because they compare equal. Hash every numeric via the float
            // bit pattern of its normalized value when it is representable,
            // otherwise via the integer.
            Value::Int(i) => {
                let f = *i as f64;
                if f as i64 == *i {
                    2u8.hash(state);
                    norm_f64(f).to_bits().hash(state);
                } else {
                    3u8.hash(state);
                    i.hash(state);
                }
            }
            Value::Float(f) => {
                let nf = norm_f64(*f);
                2u8.hash(state);
                nf.to_bits().hash(state);
            }
            Value::Str(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => {
                let (y, m, day) = date_from_days(*d);
                write!(f, "{y:04}-{m:02}-{day:02}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// Convert days-since-epoch into `(year, month, day)` (proleptic Gregorian).
///
/// Implemented here so the crate stays dependency-free; only used by
/// `Display` and the TPC-H generator's date arithmetic.
pub fn date_from_days(days: i32) -> (i32, u32, u32) {
    // Civil-from-days algorithm (Howard Hinnant).
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

/// Convert `(year, month, day)` into days since 1970-01-01.
pub fn days_from_date(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 {
        year as i64 - 1
    } else {
        year as i64
    };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = if month > 2 { month - 3 } else { month + 9 } as u64;
    let doy = (153 * mp + 2) / 5 + day as u64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146_097 + doe as i64 - 719_468) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equals_itself_totally() {
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null < Value::Int(0));
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn int_float_numeric_equality_and_hash_agree() {
        let a = Value::Int(42);
        let b = Value::Float(42.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn nan_is_self_consistent() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn numeric_add_null_absorbs() {
        assert!(Value::Null.numeric_add(&Value::Int(3)).is_null());
        assert_eq!(Value::Int(2).numeric_add(&Value::Int(3)), Value::Int(5));
        assert_eq!(
            Value::Float(1.5).numeric_add(&Value::Int(1)),
            Value::Float(2.5)
        );
    }

    #[test]
    fn numeric_sub_mixed_types() {
        assert_eq!(Value::Int(5).numeric_sub(&Value::Int(2)), Value::Int(3));
        assert_eq!(
            Value::Float(5.0).numeric_sub(&Value::Int(2)),
            Value::Float(3.0)
        );
    }

    #[test]
    fn display_renders_bottom_for_null() {
        assert_eq!(Value::Null.to_string(), "⊥");
        assert_eq!(Value::str("x").to_string(), "x");
    }

    #[test]
    fn date_roundtrip() {
        for &(y, m, d) in &[(1970, 1, 1), (1992, 2, 29), (1998, 12, 1), (2026, 7, 7)] {
            let days = days_from_date(y, m, d);
            assert_eq!(date_from_days(days), (y, m, d));
        }
        assert_eq!(days_from_date(1970, 1, 1), 0);
        assert_eq!(days_from_date(1970, 1, 2), 1);
    }

    #[test]
    fn date_display() {
        let v = Value::Date(days_from_date(1995, 3, 15));
        assert_eq!(v.to_string(), "1995-03-15");
    }

    #[test]
    fn cross_type_ordering_is_stable() {
        let mut vals = [
            Value::str("a"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Date(10),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(1));
        assert_eq!(vals[3], Value::str("a"));
        assert_eq!(vals[4], Value::Date(10));
    }

    #[test]
    fn compare_returns_none_on_null() {
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
    }

    #[test]
    fn int_float_comparison_is_exact_beyond_2_53() {
        // Pre-fix, `Int(2^53 + 1) as f64` rounded down to 2^53 and the two
        // distinct values compared Equal.
        let p53 = 1i64 << 53;
        assert_eq!(
            Value::Int(p53 + 1).total_cmp(&Value::Float(p53 as f64)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Float(p53 as f64).total_cmp(&Value::Int(p53 + 1)),
            Ordering::Less
        );
        // Exactly representable ints still compare (and hash) equal.
        assert_eq!(Value::Int(p53), Value::Float(p53 as f64));
        assert_eq!(
            hash_of(&Value::Int(p53)),
            hash_of(&Value::Float(p53 as f64))
        );
        // Pre-fix, `i64::MAX as f64` rounded up to 2^63 and compared Equal
        // to Float(2^63) even though i64::MAX < 2^63.
        assert_eq!(
            Value::Int(i64::MAX).total_cmp(&Value::Float(9_223_372_036_854_775_808.0)),
            Ordering::Less
        );
        assert_eq!(
            Value::Int(i64::MIN).total_cmp(&Value::Float(-9_223_372_036_854_775_808.0)),
            Ordering::Equal,
            "-2^63 is exactly representable"
        );
        // Fractional parts break integer-part ties in both signs.
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Int(-2).total_cmp(&Value::Float(-2.5)),
            Ordering::Greater
        );
        // NaN sits above every integer (it normalizes to the positive
        // quiet NaN, which f64::total_cmp places above +inf).
        assert_eq!(
            Value::Int(i64::MAX).total_cmp(&Value::Float(f64::NAN)),
            Ordering::Less
        );
        assert_eq!(
            Value::Float(f64::NEG_INFINITY).total_cmp(&Value::Int(i64::MIN)),
            Ordering::Less
        );
    }

    #[test]
    fn int_float_order_antisymmetric_and_transitive_near_2_53() {
        // Deterministic sweep around the representability boundary: every
        // pair must be antisymmetric, every sorted triple transitive, and
        // equality must imply hash agreement.
        let p53 = 1i64 << 53;
        let mut vals = Vec::new();
        for d in -3i64..=3 {
            vals.push(Value::Int(p53 + d));
            vals.push(Value::Int(-p53 + d));
            vals.push(Value::Float((p53 + d) as f64));
            vals.push(Value::Float(-((p53 + d) as f64)));
        }
        vals.push(Value::Int(i64::MAX));
        vals.push(Value::Int(i64::MIN));
        vals.push(Value::Float(9_223_372_036_854_775_808.0));
        vals.push(Value::Float(f64::NAN));
        for a in &vals {
            assert_eq!(a.total_cmp(a), Ordering::Equal);
            for b in &vals {
                assert_eq!(
                    a.total_cmp(b),
                    b.total_cmp(a).reverse(),
                    "antisymmetry failed for {a:?} vs {b:?}"
                );
                if a.total_cmp(b) == Ordering::Equal {
                    assert_eq!(hash_of(a), hash_of(b), "Eq/Hash split for {a:?} vs {b:?}");
                }
                for c in &vals {
                    if a.total_cmp(b) != Ordering::Greater && b.total_cmp(c) != Ordering::Greater {
                        assert_ne!(
                            a.total_cmp(c),
                            Ordering::Greater,
                            "transitivity failed for {a:?} <= {b:?} <= {c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn large_int_hash_does_not_collapse() {
        // Ints not exactly representable as f64 still hash/compare fine.
        let big = Value::Int(i64::MAX - 1);
        let big2 = Value::Int(i64::MAX - 1);
        assert_eq!(big, big2);
        assert_eq!(hash_of(&big), hash_of(&big2));
    }
}
