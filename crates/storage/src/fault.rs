//! Deterministic, seeded fault injection for chaos-testing the engine.
//!
//! A [`FaultInjector`] is a cheap-to-clone handle (clones share state) that
//! the layers above consult at well-known **sites**: the exec providers
//! check [`FaultSite::Scan`] before handing out a table, the maintenance
//! engine checks [`FaultSite::Propagate`] / [`FaultSite::Apply`] around a
//! view refresh, and the catalog checks [`FaultSite::Commit`] before
//! applying a base-table delta. Each check rolls a seeded xorshift RNG; on a
//! hit the injector either returns [`StorageError::FaultInjected`] (the
//! common case) or panics (to exercise panic isolation in worker pools).
//!
//! The default injector ([`FaultInjector::disabled`], also `Default`) never
//! fires and costs one relaxed atomic load per check, so production paths
//! pay nothing for the hooks.
//!
//! Determinism: given a fixed seed and a single-threaded caller, the fault
//! schedule is exactly reproducible. Under a multi-threaded refresh pool the
//! *order* of RNG draws depends on thread interleaving, but the fault
//! *budget* and per-site configuration still bound and shape the schedule,
//! which is what the chaos tests rely on.

use crate::error::StorageError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Where in the engine a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A plan `Scan` resolving its table through an exec provider.
    Scan,
    /// The propagate phase of one view's refresh (context = view name).
    Propagate,
    /// The apply phase of one view's refresh (context = view name).
    Apply,
    /// Base-table delta application / staging (context = table name).
    Commit,
}

impl FaultSite {
    /// Stable lowercase name (used in error messages and configs).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Scan => "scan",
            FaultSite::Propagate => "propagate",
            FaultSite::Apply => "apply",
            FaultSite::Commit => "commit",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-site injection configuration.
#[derive(Debug, Clone)]
struct SiteConfig {
    /// Probability in `[0, 1]` that a check at this site fires.
    probability: f64,
    /// Of the faults that fire here, the fraction raised as panics instead
    /// of errors (`0.0` = always an error, `1.0` = always a panic).
    panic_fraction: f64,
    /// If set, only checks whose context string equals this fire.
    target: Option<String>,
}

#[derive(Debug)]
struct InjectorState {
    /// xorshift64* state; never zero.
    rng: u64,
    sites: HashMap<FaultSite, SiteConfig>,
    /// Remaining faults allowed (`None` = unlimited).
    budget: Option<u64>,
    checks: u64,
    faults: u64,
    panics: u64,
}

#[derive(Debug)]
struct Shared {
    /// Fast-path gate: when false, `check` returns immediately.
    armed: AtomicBool,
    state: Mutex<InjectorState>,
}

/// A shared, seeded fault-injection schedule. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    shared: Arc<Shared>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::disabled()
    }
}

/// What one check decided to do (resolved under the state lock, executed
/// after releasing it so an injected panic can never poison the injector).
enum Decision {
    Pass,
    Error,
    Panic,
}

impl FaultInjector {
    /// An injector that never fires (the production default).
    pub fn disabled() -> Self {
        let inj = FaultInjector::seeded(0);
        inj.shared.armed.store(false, Ordering::Release);
        inj
    }

    /// A fresh armed injector with no sites configured yet.
    pub fn seeded(seed: u64) -> Self {
        FaultInjector {
            shared: Arc::new(Shared {
                armed: AtomicBool::new(true),
                state: Mutex::new(InjectorState {
                    // xorshift needs a nonzero state; fold the seed in.
                    rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                    sites: HashMap::new(),
                    budget: None,
                    checks: 0,
                    faults: 0,
                    panics: 0,
                }),
            }),
        }
    }

    /// Configure a site to fail with `probability`; `panic_fraction` of the
    /// fired faults panic instead of returning an error.
    pub fn with_site(self, site: FaultSite, probability: f64, panic_fraction: f64) -> Self {
        self.lock().sites.insert(
            site,
            SiteConfig {
                probability: probability.clamp(0.0, 1.0),
                panic_fraction: panic_fraction.clamp(0.0, 1.0),
                target: None,
            },
        );
        self
    }

    /// Like [`FaultInjector::with_site`], but only fires when the check's
    /// context string equals `target` (e.g. one view or table name).
    pub fn with_targeted_site(
        self,
        site: FaultSite,
        probability: f64,
        panic_fraction: f64,
        target: impl Into<String>,
    ) -> Self {
        self.lock().sites.insert(
            site,
            SiteConfig {
                probability: probability.clamp(0.0, 1.0),
                panic_fraction: panic_fraction.clamp(0.0, 1.0),
                target: Some(target.into()),
            },
        );
        self
    }

    /// Cap the total number of faults this injector will ever fire; after
    /// the budget is spent every check passes (lets chaos runs drain clean).
    pub fn with_budget(self, faults: u64) -> Self {
        self.lock().budget = Some(faults);
        self
    }

    /// Stop firing (checks become near-free). Reversible via [`FaultInjector::arm`].
    pub fn disarm(&self) {
        self.shared.armed.store(false, Ordering::Release);
    }

    /// Resume firing after a [`FaultInjector::disarm`].
    pub fn arm(&self) {
        self.shared.armed.store(true, Ordering::Release);
    }

    /// True iff the injector can currently fire.
    pub fn is_armed(&self) -> bool {
        self.shared.armed.load(Ordering::Acquire)
    }

    /// Total checks consulted while armed.
    pub fn checks(&self) -> u64 {
        self.lock().checks
    }

    /// Total faults fired (errors + panics).
    pub fn faults_injected(&self) -> u64 {
        self.lock().faults
    }

    /// Faults fired as panics.
    pub fn panics_injected(&self) -> u64 {
        self.lock().panics
    }

    /// Consult the schedule at `site`. `context` names the object being
    /// operated on (table or view name) and is matched against targeted
    /// sites and embedded in the injected error.
    pub fn check(&self, site: FaultSite, context: &str) -> Result<(), StorageError> {
        if !self.shared.armed.load(Ordering::Acquire) {
            return Ok(());
        }
        let decision = {
            let mut st = self.lock();
            st.checks += 1;
            let Some(cfg) = st.sites.get(&site).cloned() else {
                return Ok(());
            };
            if let Some(t) = &cfg.target {
                if t != context {
                    return Ok(());
                }
            }
            if st.budget == Some(0) {
                return Ok(());
            }
            if next_unit(&mut st.rng) >= cfg.probability {
                Decision::Pass
            } else {
                st.faults += 1;
                if let Some(b) = st.budget.as_mut() {
                    *b -= 1;
                }
                if next_unit(&mut st.rng) < cfg.panic_fraction {
                    st.panics += 1;
                    Decision::Panic
                } else {
                    Decision::Error
                }
            }
            // state lock dropped here, before the panic below
        };
        match decision {
            Decision::Pass => Ok(()),
            Decision::Error => Err(StorageError::FaultInjected {
                site: site.name().to_string(),
                op: context.to_string(),
            }),
            Decision::Panic => panic!("injected fault: panic at {site} site during `{context}`"),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        // Poison-recovering by construction: an injected panic is raised
        // only after the guard is dropped, but a caller panicking elsewhere
        // must never wedge the injector.
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// xorshift64* step mapped to `[0, 1)`.
fn next_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
    bits as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert!(inj.check(FaultSite::Scan, "t").is_ok());
        }
        assert_eq!(inj.faults_injected(), 0);
        assert_eq!(inj.checks(), 0); // disarmed checks are not even counted
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let run = |seed| {
            let inj = FaultInjector::seeded(seed).with_site(FaultSite::Scan, 0.3, 0.0);
            (0..200)
                .map(|i| inj.check(FaultSite::Scan, &format!("t{i}")).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different schedules");
        assert!(run(42).iter().any(|&f| f), "probability 0.3 must fire");
        assert!(
            !run(42).iter().all(|&f| f),
            "probability 0.3 must also pass"
        );
    }

    #[test]
    fn budget_caps_faults_then_drains_clean() {
        let inj = FaultInjector::seeded(7)
            .with_site(FaultSite::Commit, 1.0, 0.0)
            .with_budget(3);
        let errs = (0..10)
            .filter(|_| inj.check(FaultSite::Commit, "t").is_err())
            .count();
        assert_eq!(errs, 3);
        assert_eq!(inj.faults_injected(), 3);
        assert!(inj.check(FaultSite::Commit, "t").is_ok());
    }

    #[test]
    fn targeted_site_only_hits_its_context() {
        let inj =
            FaultInjector::seeded(1).with_targeted_site(FaultSite::Propagate, 1.0, 0.0, "flaky");
        assert!(inj.check(FaultSite::Propagate, "stable").is_ok());
        let err = inj.check(FaultSite::Propagate, "flaky").unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected { .. }));
        assert!(err.to_string().contains("flaky"));
    }

    #[test]
    fn panic_fraction_panics_and_counts() {
        let inj = FaultInjector::seeded(5).with_site(FaultSite::Propagate, 1.0, 1.0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = inj.check(FaultSite::Propagate, "v");
        }));
        assert!(caught.is_err());
        assert_eq!(inj.panics_injected(), 1);
        // The injector survives its own panic (no poisoned internal lock).
        inj.disarm();
        assert!(inj.check(FaultSite::Propagate, "v").is_ok());
    }

    #[test]
    fn clones_share_state() {
        let a = FaultInjector::seeded(9)
            .with_site(FaultSite::Scan, 1.0, 0.0)
            .with_budget(1);
        let b = a.clone();
        assert!(b.check(FaultSite::Scan, "t").is_err());
        assert!(a.check(FaultSite::Scan, "t").is_ok(), "budget is shared");
        assert_eq!(a.faults_injected(), 1);
        a.disarm();
        assert!(!b.is_armed());
    }
}
