//! Deterministic, seeded fault injection for chaos-testing the engine.
//!
//! A [`FaultInjector`] is a cheap-to-clone handle (clones share state) that
//! the layers above consult at well-known **sites**: the exec providers
//! check [`FaultSite::Scan`] before handing out a table, the maintenance
//! engine checks [`FaultSite::Propagate`] / [`FaultSite::Apply`] around a
//! view refresh, and the catalog checks [`FaultSite::Commit`] before
//! applying a base-table delta. Each check rolls a seeded xorshift RNG; on a
//! hit the injector either returns [`StorageError::FaultInjected`] (the
//! common case) or panics (to exercise panic isolation in worker pools).
//!
//! The default injector ([`FaultInjector::disabled`], also `Default`) never
//! fires and costs one relaxed atomic load per check, so production paths
//! pay nothing for the hooks.
//!
//! Determinism: given a fixed seed and a single-threaded caller, the fault
//! schedule is exactly reproducible. Under a multi-threaded refresh pool the
//! *order* of RNG draws depends on thread interleaving, but the fault
//! *budget* and per-site configuration still bound and shape the schedule,
//! which is what the chaos tests rely on.

use crate::error::StorageError;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Where in the engine a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A plan `Scan` resolving its table through an exec provider.
    Scan,
    /// The propagate phase of one view's refresh (context = view name).
    Propagate,
    /// The apply phase of one view's refresh (context = view name).
    Apply,
    /// Base-table delta application / staging (context = table name).
    Commit,
    /// A write-ahead-log record append (context = record kind). A kill
    /// point here leaves a *torn* prefix of the record on disk.
    WalAppend,
    /// A write-ahead-log fsync (context = record kind / policy trigger). A
    /// kill point here leaves the record fully written but unacknowledged.
    WalFsync,
    /// A checkpoint snapshot write (context = checkpoint file stem). A kill
    /// point here leaves a partial temp file that recovery must ignore.
    CheckpointWrite,
}

impl FaultSite {
    /// Stable lowercase name (used in error messages and configs).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Scan => "scan",
            FaultSite::Propagate => "propagate",
            FaultSite::Apply => "apply",
            FaultSite::Commit => "commit",
            FaultSite::WalAppend => "wal-append",
            FaultSite::WalFsync => "wal-fsync",
            FaultSite::CheckpointWrite => "checkpoint-write",
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-site injection configuration.
#[derive(Debug, Clone)]
struct SiteConfig {
    /// Probability in `[0, 1]` that a check at this site fires.
    probability: f64,
    /// Of the faults that fire here, the fraction raised as panics instead
    /// of errors (`0.0` = always an error, `1.0` = always a panic).
    panic_fraction: f64,
    /// If set, only checks whose context string equals this fire.
    target: Option<String>,
}

#[derive(Debug)]
struct InjectorState {
    /// xorshift64* state; never zero.
    rng: u64,
    sites: HashMap<FaultSite, SiteConfig>,
    /// One-shot *kill points*: site → the 1-based armed-check ordinal at
    /// which the check aborts with [`StorageError::KillPoint`] (simulated
    /// process death). Consumed when fired.
    kill_points: HashMap<FaultSite, u64>,
    /// Armed checks observed per site (kill-point ordinals index into this).
    site_checks: HashMap<FaultSite, u64>,
    /// Remaining faults allowed (`None` = unlimited).
    budget: Option<u64>,
    checks: u64,
    faults: u64,
    panics: u64,
    kills: u64,
}

#[derive(Debug)]
struct Shared {
    /// Fast-path gate: when false, `check` returns immediately.
    armed: AtomicBool,
    state: Mutex<InjectorState>,
}

/// A shared, seeded fault-injection schedule. See the module docs.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    shared: Arc<Shared>,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::disabled()
    }
}

/// What one check decided to do (resolved under the state lock, executed
/// after releasing it so an injected panic can never poison the injector).
enum Decision {
    Pass,
    Error,
    Panic,
    Kill,
}

impl FaultInjector {
    /// An injector that never fires (the production default).
    pub fn disabled() -> Self {
        let inj = FaultInjector::seeded(0);
        inj.shared.armed.store(false, Ordering::Release);
        inj
    }

    /// A fresh armed injector with no sites configured yet.
    pub fn seeded(seed: u64) -> Self {
        FaultInjector {
            shared: Arc::new(Shared {
                armed: AtomicBool::new(true),
                state: Mutex::new(InjectorState {
                    // xorshift needs a nonzero state; fold the seed in.
                    rng: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
                    sites: HashMap::new(),
                    kill_points: HashMap::new(),
                    site_checks: HashMap::new(),
                    budget: None,
                    checks: 0,
                    faults: 0,
                    panics: 0,
                    kills: 0,
                }),
            }),
        }
    }

    /// Configure a site to fail with `probability`; `panic_fraction` of the
    /// fired faults panic instead of returning an error.
    pub fn with_site(self, site: FaultSite, probability: f64, panic_fraction: f64) -> Self {
        self.lock().sites.insert(
            site,
            SiteConfig {
                probability: probability.clamp(0.0, 1.0),
                panic_fraction: panic_fraction.clamp(0.0, 1.0),
                target: None,
            },
        );
        self
    }

    /// Like [`FaultInjector::with_site`], but only fires when the check's
    /// context string equals `target` (e.g. one view or table name).
    pub fn with_targeted_site(
        self,
        site: FaultSite,
        probability: f64,
        panic_fraction: f64,
        target: impl Into<String>,
    ) -> Self {
        self.lock().sites.insert(
            site,
            SiteConfig {
                probability: probability.clamp(0.0, 1.0),
                panic_fraction: panic_fraction.clamp(0.0, 1.0),
                target: Some(target.into()),
            },
        );
        self
    }

    /// Cap the total number of faults this injector will ever fire; after
    /// the budget is spent every check passes (lets chaos runs drain clean).
    pub fn with_budget(self, faults: u64) -> Self {
        self.lock().budget = Some(faults);
        self
    }

    /// Arm a one-shot **kill point**: the `nth` armed check at `site`
    /// (1-based, counted per site) aborts with [`StorageError::KillPoint`]
    /// instead of rolling the probabilistic schedule. The durability layer
    /// treats it as simulated process death: a WAL append killed this way
    /// leaves a deliberately torn record on disk, a checkpoint write leaves
    /// a partial temp file. Fires at most once, independent of the fault
    /// budget; `nth == 0` never fires.
    pub fn with_kill_point(self, site: FaultSite, nth: u64) -> Self {
        self.lock().kill_points.insert(site, nth);
        self
    }

    /// Armed checks observed at `site` so far (the ordinal space
    /// [`FaultInjector::with_kill_point`] indexes into). Useful for sizing a
    /// kill-point matrix: dry-run a schedule, read the per-site totals, then
    /// re-run once per ordinal.
    pub fn site_checks(&self, site: FaultSite) -> u64 {
        self.lock().site_checks.get(&site).copied().unwrap_or(0)
    }

    /// Kill points fired so far.
    pub fn kills_fired(&self) -> u64 {
        self.lock().kills
    }

    /// A seeded draw in `[0, 1)` from the injector's own RNG (advances the
    /// shared state). The WAL uses this to pick a deterministic torn-prefix
    /// length when a kill point aborts an append mid-record.
    pub fn roll_unit(&self) -> f64 {
        next_unit(&mut self.lock().rng)
    }

    /// Stop firing (checks become near-free). Reversible via [`FaultInjector::arm`].
    pub fn disarm(&self) {
        self.shared.armed.store(false, Ordering::Release);
    }

    /// Resume firing after a [`FaultInjector::disarm`].
    pub fn arm(&self) {
        self.shared.armed.store(true, Ordering::Release);
    }

    /// True iff the injector can currently fire.
    pub fn is_armed(&self) -> bool {
        self.shared.armed.load(Ordering::Acquire)
    }

    /// Total checks consulted while armed.
    pub fn checks(&self) -> u64 {
        self.lock().checks
    }

    /// Total faults fired (errors + panics).
    pub fn faults_injected(&self) -> u64 {
        self.lock().faults
    }

    /// Faults fired as panics.
    pub fn panics_injected(&self) -> u64 {
        self.lock().panics
    }

    /// Consult the schedule at `site`. `context` names the object being
    /// operated on (table or view name) and is matched against targeted
    /// sites and embedded in the injected error.
    pub fn check(&self, site: FaultSite, context: &str) -> Result<(), StorageError> {
        if !self.shared.armed.load(Ordering::Acquire) {
            return Ok(());
        }
        let decision = {
            let mut st = self.lock();
            st.checks += 1;
            let seen = st.site_checks.entry(site).or_insert(0);
            *seen += 1;
            let seen = *seen;
            // Kill points fire by ordinal, before (and independent of) the
            // probabilistic site schedule and the fault budget.
            if st.kill_points.get(&site) == Some(&seen) {
                st.kill_points.remove(&site);
                st.kills += 1;
                st.faults += 1;
                Decision::Kill
            } else {
                let Some(cfg) = st.sites.get(&site).cloned() else {
                    return Ok(());
                };
                if let Some(t) = &cfg.target {
                    if t != context {
                        return Ok(());
                    }
                }
                if st.budget == Some(0) {
                    return Ok(());
                }
                if next_unit(&mut st.rng) >= cfg.probability {
                    Decision::Pass
                } else {
                    st.faults += 1;
                    if let Some(b) = st.budget.as_mut() {
                        *b -= 1;
                    }
                    if next_unit(&mut st.rng) < cfg.panic_fraction {
                        st.panics += 1;
                        Decision::Panic
                    } else {
                        Decision::Error
                    }
                }
            }
            // state lock dropped here, before the panic below
        };
        match decision {
            Decision::Pass => Ok(()),
            Decision::Error => Err(StorageError::FaultInjected {
                site: site.name().to_string(),
                op: context.to_string(),
            }),
            Decision::Kill => Err(StorageError::KillPoint {
                site: site.name().to_string(),
                op: context.to_string(),
            }),
            Decision::Panic => panic!("injected fault: panic at {site} site during `{context}`"),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectorState> {
        // Poison-recovering by construction: an injected panic is raised
        // only after the guard is dropped, but a caller panicking elsewhere
        // must never wedge the injector.
        self.shared
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// xorshift64* step mapped to `[0, 1)`.
fn next_unit(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
    bits as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fires() {
        let inj = FaultInjector::disabled();
        for _ in 0..1000 {
            assert!(inj.check(FaultSite::Scan, "t").is_ok());
        }
        assert_eq!(inj.faults_injected(), 0);
        assert_eq!(inj.checks(), 0); // disarmed checks are not even counted
    }

    #[test]
    fn seeded_schedule_is_deterministic() {
        let run = |seed| {
            let inj = FaultInjector::seeded(seed).with_site(FaultSite::Scan, 0.3, 0.0);
            (0..200)
                .map(|i| inj.check(FaultSite::Scan, &format!("t{i}")).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different schedules");
        assert!(run(42).iter().any(|&f| f), "probability 0.3 must fire");
        assert!(
            !run(42).iter().all(|&f| f),
            "probability 0.3 must also pass"
        );
    }

    #[test]
    fn budget_caps_faults_then_drains_clean() {
        let inj = FaultInjector::seeded(7)
            .with_site(FaultSite::Commit, 1.0, 0.0)
            .with_budget(3);
        let errs = (0..10)
            .filter(|_| inj.check(FaultSite::Commit, "t").is_err())
            .count();
        assert_eq!(errs, 3);
        assert_eq!(inj.faults_injected(), 3);
        assert!(inj.check(FaultSite::Commit, "t").is_ok());
    }

    #[test]
    fn targeted_site_only_hits_its_context() {
        let inj =
            FaultInjector::seeded(1).with_targeted_site(FaultSite::Propagate, 1.0, 0.0, "flaky");
        assert!(inj.check(FaultSite::Propagate, "stable").is_ok());
        let err = inj.check(FaultSite::Propagate, "flaky").unwrap_err();
        assert!(matches!(err, StorageError::FaultInjected { .. }));
        assert!(err.to_string().contains("flaky"));
    }

    #[test]
    fn panic_fraction_panics_and_counts() {
        let inj = FaultInjector::seeded(5).with_site(FaultSite::Propagate, 1.0, 1.0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = inj.check(FaultSite::Propagate, "v");
        }));
        assert!(caught.is_err());
        assert_eq!(inj.panics_injected(), 1);
        // The injector survives its own panic (no poisoned internal lock).
        inj.disarm();
        assert!(inj.check(FaultSite::Propagate, "v").is_ok());
    }

    #[test]
    fn kill_point_fires_once_at_exact_ordinal() {
        let inj = FaultInjector::seeded(3).with_kill_point(FaultSite::WalAppend, 3);
        assert!(inj.check(FaultSite::WalAppend, "r").is_ok());
        assert!(inj.check(FaultSite::WalAppend, "r").is_ok());
        let err = inj.check(FaultSite::WalAppend, "r").unwrap_err();
        assert!(matches!(err, StorageError::KillPoint { .. }));
        assert!(!err.is_transient(), "a kill simulates death, not a retry");
        assert_eq!(inj.kills_fired(), 1);
        assert_eq!(inj.site_checks(FaultSite::WalAppend), 3);
        // One-shot: never fires again, even at later ordinals.
        for _ in 0..10 {
            assert!(inj.check(FaultSite::WalAppend, "r").is_ok());
        }
        assert_eq!(inj.kills_fired(), 1);
    }

    #[test]
    fn kill_point_ordinals_are_per_site() {
        let inj = FaultInjector::seeded(4).with_kill_point(FaultSite::WalFsync, 1);
        // Checks at other sites do not advance the WalFsync ordinal.
        assert!(inj.check(FaultSite::WalAppend, "r").is_ok());
        assert!(inj.check(FaultSite::CheckpointWrite, "c").is_ok());
        assert!(inj.check(FaultSite::WalFsync, "s").is_err());
    }

    #[test]
    fn clones_share_state() {
        let a = FaultInjector::seeded(9)
            .with_site(FaultSite::Scan, 1.0, 0.0)
            .with_budget(1);
        let b = a.clone();
        assert!(b.check(FaultSite::Scan, "t").is_err());
        assert!(a.check(FaultSite::Scan, "t").is_ok(), "budget is shared");
        assert_eq!(a.faults_injected(), 1);
        a.disarm();
        assert!(!b.is_armed());
    }
}
