//! Tables: row bags with an optional enforced key and a hash index over it.
//!
//! Two kinds of tables appear in the system:
//!
//! * **Base tables** (e.g. TPC-H `lineitem`) — declared with a key; the key
//!   index makes delta-vs-base joins and point deletions cheap.
//! * **Materialized views** — also keyed (the paper assumes a key in the
//!   view, §6.1); the apply phase of maintenance uses the keyed update
//!   primitives here ([`Table::upsert`], [`Table::update_by_key`],
//!   [`Table::delete_by_key`]) to realize the SQL `MERGE` the paper relies
//!   on in its experiments (§7.1).
//!
//! Un-keyed tables degrade gracefully to plain bags.

use crate::chunk::Chunk;
use crate::delta::Delta;
use crate::error::{Result, StorageError};
use crate::row::Row;
use crate::schema::SchemaRef;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A bag of rows conforming to a schema, optionally indexed by the schema key.
///
/// Rows are held behind an [`Arc`] with copy-on-write semantics: cloning a
/// table (or re-wrapping a base table's rows via [`Table::bag_shared`] /
/// [`Table::shared_rows`], as `Plan::Scan` does) shares the row storage,
/// and the keyed mutators only materialize a private copy on first write
/// ([`Arc::make_mut`]). Read-heavy paths — recompute, delta propagation —
/// therefore stop paying O(|base|) per scan.
#[derive(Debug, Clone)]
pub struct Table {
    schema: SchemaRef,
    rows: Arc<Vec<Row>>,
    /// key-projection → position in `rows`; present iff the schema has a key.
    key_index: Option<HashMap<Row, usize>>,
    /// Lazily built columnar image of `rows`, shared across clones (and
    /// across [`Table::as_bag`] views). Every mutator swaps in a fresh
    /// cell, so a cached chunk always describes the current rows.
    chunk: Arc<OnceLock<Arc<Chunk>>>,
}

/// A fresh, empty chunk-cache cell.
fn empty_chunk_cell() -> Arc<OnceLock<Arc<Chunk>>> {
    Arc::new(OnceLock::new())
}

impl Table {
    /// Create an empty table. A key index is built iff the schema has a key.
    pub fn new(schema: SchemaRef) -> Self {
        let key_index = schema.key().map(|_| HashMap::new());
        Table {
            schema,
            rows: Arc::new(Vec::new()),
            key_index,
            chunk: empty_chunk_cell(),
        }
    }

    /// Create a table and bulk-load rows.
    pub fn from_rows(schema: SchemaRef, rows: Vec<Row>) -> Result<Self> {
        let mut t = Table::new(schema);
        for r in rows {
            t.insert(r)?;
        }
        Ok(t)
    }

    /// Create an un-keyed, un-checked bag (intermediate results).
    pub fn bag(schema: SchemaRef, rows: Vec<Row>) -> Self {
        Table {
            schema,
            rows: Arc::new(rows),
            key_index: None,
            chunk: empty_chunk_cell(),
        }
    }

    /// Create an un-keyed bag that shares already-shared row storage
    /// without copying. `Plan::Scan` uses this to hand a base table's rows
    /// to the executor by reference count rather than by O(|base|) clone.
    pub fn bag_shared(schema: SchemaRef, rows: Arc<Vec<Row>>) -> Self {
        Table {
            schema,
            rows,
            key_index: None,
            chunk: empty_chunk_cell(),
        }
    }

    /// The shared row storage. Cheap (one refcount bump); the returned
    /// `Arc` points at the same allocation until this table next mutates.
    pub fn shared_rows(&self) -> Arc<Vec<Row>> {
        Arc::clone(&self.rows)
    }

    /// Rebind this table to `schema` and build its key index in place,
    /// without copying rows: arity is checked per row and key uniqueness
    /// enforced exactly as [`Table::from_rows`] would, but the row storage
    /// (and its `Arc` sharing) is reused. This is how a materialized bag
    /// from the executor becomes a keyed view table.
    pub fn into_keyed(self, schema: SchemaRef) -> Result<Self> {
        let arity = schema.arity();
        for row in self.rows.iter() {
            if row.arity() != arity {
                return Err(StorageError::ArityMismatch {
                    expected: arity,
                    actual: row.arity(),
                });
            }
        }
        let key_index = match schema.key() {
            None => None,
            Some(key_cols) => {
                let mut idx = HashMap::with_capacity(self.rows.len());
                for (pos, row) in self.rows.iter().enumerate() {
                    let key = row.project(key_cols);
                    if idx.contains_key(&key) {
                        return Err(StorageError::KeyViolation {
                            table: "<table>".to_string(),
                            key: format!("{key:?}"),
                        });
                    }
                    idx.insert(key, pos);
                }
                Some(idx)
            }
        };
        Ok(Table {
            schema,
            rows: self.rows,
            key_index,
            // Rows are unchanged, so a chunk already built for them stays valid.
            chunk: self.chunk,
        })
    }

    /// The table schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in storage order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Iterate over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Row> {
        self.rows.iter()
    }

    /// The columnar image of this table's rows, built on first use and
    /// cached until the next mutation. Clones (and [`Table::as_bag`]
    /// views) share both the rows and the cache, so a base table scanned
    /// by many plan executions converts to columns exactly once.
    pub fn chunk(&self) -> Arc<Chunk> {
        Arc::clone(
            self.chunk
                .get_or_init(|| Arc::new(Chunk::from_rows(&self.rows, self.schema.arity()))),
        )
    }

    /// An un-keyed view of this table sharing the row storage *and* the
    /// chunk cache. This is what `Plan::Scan` hands to the executor: the
    /// key index is dropped (execution never uses it) but a columnar
    /// image built by any earlier scan is reused.
    pub fn as_bag(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            rows: Arc::clone(&self.rows),
            key_index: None,
            chunk: Arc::clone(&self.chunk),
        }
    }

    /// Invalidate the cached columnar image. Called by every mutator; the
    /// cell is *replaced* (not cleared) so outstanding clones that still
    /// see the old rows keep their still-valid cached chunk.
    fn touch(&mut self) {
        self.chunk = empty_chunk_cell();
    }

    fn key_projection(&self, row: &Row) -> Option<Row> {
        self.schema.key().map(|k| row.project(k))
    }

    /// Insert a row, enforcing arity and (if declared) key uniqueness.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.schema.arity(),
                actual: row.arity(),
            });
        }
        let key = self.key_projection(&row);
        if let (Some(key), Some(idx)) = (key, self.key_index.as_mut()) {
            if idx.contains_key(&key) {
                return Err(StorageError::KeyViolation {
                    table: "<table>".to_string(),
                    key: format!("{key:?}"),
                });
            }
            idx.insert(key, self.rows.len());
        }
        self.touch();
        Arc::make_mut(&mut self.rows).push(row);
        Ok(())
    }

    /// Insert many rows.
    pub fn insert_many<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Look up the full row for a key value (key-projected row).
    pub fn get_by_key(&self, key: &Row) -> Option<&Row> {
        let idx = self.key_index.as_ref()?;
        idx.get(key).map(|&pos| &self.rows[pos])
    }

    /// True iff a row with this key exists.
    pub fn contains_key(&self, key: &Row) -> bool {
        self.get_by_key(key).is_some()
    }

    /// Remove the row with this key; returns it if present.
    pub fn delete_by_key(&mut self, key: &Row) -> Option<Row> {
        let idx = self.key_index.as_mut()?;
        let pos = idx.remove(key)?;
        self.touch();
        let removed = Arc::make_mut(&mut self.rows).swap_remove(pos);
        // Fix the moved row's index entry (if any row was moved into `pos`).
        if pos < self.rows.len() {
            if let (Some(k), Some(idx)) = (self.schema.key(), self.key_index.as_mut()) {
                let moved_key = self.rows[pos].project(k);
                idx.insert(moved_key, pos);
            }
        }
        Some(removed)
    }

    /// Replace the row stored under `key` with `new_row` (whose key
    /// projection must equal `key`). Returns the old row, or `None` if the
    /// key was absent (nothing is inserted in that case).
    pub fn update_by_key(&mut self, key: &Row, new_row: Row) -> Option<Row> {
        debug_assert_eq!(
            self.key_projection(&new_row).as_ref(),
            Some(key),
            "update_by_key: new row's key must match"
        );
        let idx = self.key_index.as_ref()?;
        let pos = *idx.get(key)?;
        self.touch();
        Some(std::mem::replace(
            &mut Arc::make_mut(&mut self.rows)[pos],
            new_row,
        ))
    }

    /// Insert-or-replace by key. Returns the displaced row, if any.
    pub fn upsert(&mut self, row: Row) -> Result<Option<Row>> {
        match self.key_projection(&row) {
            Some(key) if self.contains_key(&key) => Ok(self.update_by_key(&key, row)),
            _ => {
                self.insert(row)?;
                Ok(None)
            }
        }
    }

    /// Delete the first row equal to `row` (bag deletion for un-keyed
    /// tables). Returns true if a row was removed.
    pub fn delete_row(&mut self, row: &Row) -> bool {
        if let Some(key) = self.key_projection(row) {
            // Keyed fast path: only delete when the stored row matches fully.
            if self.get_by_key(&key) == Some(row) {
                self.delete_by_key(&key);
                return true;
            }
            return false;
        }
        if let Some(pos) = self.rows.iter().position(|r| r == row) {
            self.touch();
            Arc::make_mut(&mut self.rows).swap_remove(pos);
            true
        } else {
            false
        }
    }

    /// Apply a signed delta to this table: positive multiplicities insert,
    /// negative multiplicities delete (bag semantics). For keyed tables the
    /// paper's convention holds: a batch never inserts a duplicate key.
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<()> {
        // Deletes first so that delete+insert of the same key in one batch
        // (the insert/delete propagation rules do exactly this) succeeds.
        for (row, &w) in delta.iter() {
            if w < 0 {
                for _ in 0..(-w) {
                    self.delete_row(row);
                }
            }
        }
        for (row, &w) in delta.iter() {
            if w > 0 {
                for _ in 0..w {
                    self.insert(row.clone())?;
                }
            }
        }
        Ok(())
    }

    /// Rows sorted (for order-insensitive comparison in tests).
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v = (*self.rows).clone();
        v.sort();
        v
    }

    /// Bag equality with another table (ignores row order and index state).
    pub fn bag_eq(&self, other: &Table) -> bool {
        self.schema.fields() == other.schema.fields() && self.sorted_rows() == other.sorted_rows()
    }

    /// Render the table as an aligned text grid (examples / debugging).
    pub fn to_pretty_string(&self) -> String {
        let names = self.schema.column_names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        let mut sorted = rendered;
        sorted.sort();
        for row in sorted {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_pretty_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{DataType, Schema};
    use std::sync::Arc;

    fn keyed_schema() -> SchemaRef {
        Arc::new(
            Schema::from_pairs_keyed(&[("id", DataType::Int), ("name", DataType::Str)], &["id"])
                .unwrap(),
        )
    }

    #[test]
    fn insert_and_lookup_by_key() {
        let mut t = Table::new(keyed_schema());
        t.insert(row![1, "a"]).unwrap();
        t.insert(row![2, "b"]).unwrap();
        assert_eq!(t.get_by_key(&row![1]), Some(&row![1, "a"]));
        assert_eq!(t.get_by_key(&row![3]), None);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = Table::new(keyed_schema());
        t.insert(row![1, "a"]).unwrap();
        assert!(matches!(
            t.insert(row![1, "b"]),
            Err(StorageError::KeyViolation { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(keyed_schema());
        assert!(matches!(
            t.insert(row![1]),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn delete_by_key_fixes_index_of_moved_row() {
        let mut t = Table::new(keyed_schema());
        for i in 0..5 {
            t.insert(row![i, "x"]).unwrap();
        }
        assert_eq!(t.delete_by_key(&row![0]), Some(row![0, "x"]));
        // Row 4 was swap-moved into slot 0; lookup must still find it.
        assert_eq!(t.get_by_key(&row![4]), Some(&row![4, "x"]));
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn update_by_key_replaces_in_place() {
        let mut t = Table::new(keyed_schema());
        t.insert(row![1, "a"]).unwrap();
        let old = t.update_by_key(&row![1], row![1, "z"]);
        assert_eq!(old, Some(row![1, "a"]));
        assert_eq!(t.get_by_key(&row![1]), Some(&row![1, "z"]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn upsert_inserts_then_replaces() {
        let mut t = Table::new(keyed_schema());
        assert_eq!(t.upsert(row![1, "a"]).unwrap(), None);
        assert_eq!(t.upsert(row![1, "b"]).unwrap(), Some(row![1, "a"]));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn apply_delta_deletes_then_inserts() {
        let mut t = Table::new(keyed_schema());
        t.insert(row![1, "a"]).unwrap();
        let mut d = Delta::new();
        d.add(row![1, "a"], -1);
        d.add(row![1, "b"], 1); // same key re-inserted: must not violate
        t.apply_delta(&d).unwrap();
        assert_eq!(t.get_by_key(&row![1]), Some(&row![1, "b"]));
    }

    #[test]
    fn bag_table_allows_duplicates() {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]).unwrap());
        let mut t = Table::new(schema);
        t.insert(row![1]).unwrap();
        t.insert(row![1]).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.delete_row(&row![1]));
        assert_eq!(t.len(), 1);
        assert!(!t.delete_row(&row![9]));
    }

    #[test]
    fn bag_eq_ignores_order() {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]).unwrap());
        let a = Table::bag(schema.clone(), vec![row![1], row![2]]);
        let b = Table::bag(schema, vec![row![2], row![1]]);
        assert!(a.bag_eq(&b));
    }

    #[test]
    fn pretty_print_contains_headers() {
        let mut t = Table::new(keyed_schema());
        t.insert(row![1, "alpha"]).unwrap();
        let s = t.to_pretty_string();
        assert!(s.contains("id"));
        assert!(s.contains("alpha"));
    }

    #[test]
    fn bag_shared_and_clone_share_storage_until_write() {
        let schema = Arc::new(Schema::from_pairs(&[("x", DataType::Int)]).unwrap());
        let base = Table::bag(schema.clone(), vec![row![1], row![2]]);
        let shared = Table::bag_shared(schema, base.shared_rows());
        assert!(Arc::ptr_eq(&base.shared_rows(), &shared.shared_rows()));
        // Clone shares too; mutation detaches only the writer.
        let mut copy = base.clone();
        assert!(Arc::ptr_eq(&base.shared_rows(), &copy.shared_rows()));
        copy.insert(row![3]).unwrap();
        assert!(!Arc::ptr_eq(&base.shared_rows(), &copy.shared_rows()));
        assert_eq!(base.len(), 2);
        assert_eq!(copy.len(), 3);
        // The un-mutated reader still points at the original allocation.
        assert!(Arc::ptr_eq(&base.shared_rows(), &shared.shared_rows()));
    }

    #[test]
    fn into_keyed_builds_index_without_copying_rows() {
        let bag = Table::bag(
            Arc::new(
                Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]).unwrap(),
            ),
            vec![row![1, "a"], row![2, "b"]],
        );
        let before = bag.shared_rows();
        let keyed = bag.into_keyed(keyed_schema()).unwrap();
        assert!(Arc::ptr_eq(&before, &keyed.shared_rows()));
        assert_eq!(keyed.get_by_key(&row![2]), Some(&row![2, "b"]));
    }

    #[test]
    fn into_keyed_rejects_duplicate_keys_and_bad_arity() {
        let schema = Arc::new(
            Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]).unwrap(),
        );
        let dup = Table::bag(schema.clone(), vec![row![1, "a"], row![1, "b"]]);
        assert!(matches!(
            dup.into_keyed(keyed_schema()),
            Err(StorageError::KeyViolation { .. })
        ));
        let narrow = Table::bag(schema, vec![row![1]]);
        assert!(matches!(
            narrow.into_keyed(keyed_schema()),
            Err(StorageError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn chunk_cache_is_shared_and_invalidated_on_mutation() {
        let mut t = Table::new(keyed_schema());
        t.insert(row![1, "a"]).unwrap();
        let c1 = t.chunk();
        assert!(Arc::ptr_eq(&c1, &t.chunk()), "second call is a cache hit");
        let view = t.as_bag();
        assert!(Arc::ptr_eq(&c1, &view.chunk()), "as_bag shares the cache");

        t.insert(row![2, "b"]).unwrap();
        let c2 = t.chunk();
        assert!(!Arc::ptr_eq(&c1, &c2), "mutation invalidates the cache");
        assert_eq!(c2.to_rows(), t.rows());
        // The pre-mutation view still sees its own rows and its own chunk.
        assert_eq!(view.len(), 1);
        assert_eq!(view.chunk().to_rows(), view.rows());

        t.update_by_key(&row![1], row![1, "z"]).unwrap();
        assert_eq!(t.chunk().to_rows(), t.rows());
        t.delete_by_key(&row![2]).unwrap();
        assert_eq!(t.chunk().to_rows(), t.rows());
        assert!(t.delete_row(&row![1, "z"]));
        assert!(t.chunk().is_empty());
    }

    #[test]
    fn into_keyed_preserves_chunk_cache() {
        let bag = Table::bag(
            Arc::new(
                Schema::from_pairs(&[("id", DataType::Int), ("name", DataType::Str)]).unwrap(),
            ),
            vec![row![1, "a"], row![2, "b"]],
        );
        let chunk = bag.chunk();
        let keyed = bag.into_keyed(keyed_schema()).unwrap();
        assert!(
            Arc::ptr_eq(&chunk, &keyed.chunk()),
            "rows unchanged, cache kept"
        );
    }

    #[test]
    fn delete_row_on_keyed_requires_full_match() {
        let mut t = Table::new(keyed_schema());
        t.insert(row![1, "a"]).unwrap();
        assert!(!t.delete_row(&row![1, "zzz"]));
        assert!(t.delete_row(&row![1, "a"]));
        assert!(t.is_empty());
    }
}
