//! # gpivot-storage
//!
//! The relational storage substrate underneath the GPIVOT engine
//! (a from-scratch reproduction of Chen & Rundensteiner, *GPIVOT: Efficient
//! Incremental Maintenance of Complex ROLAP Views*, ICDE 2005).
//!
//! This crate provides the pieces every layer above builds on:
//!
//! * [`Value`] — a dynamically typed SQL-ish scalar with a first-class
//!   `NULL` (the paper's `⊥`), with **total** equality/ordering/hashing so
//!   rows can key hash maps (floats are bit-normalized).
//! * [`Row`] — an immutable, cheaply clonable tuple of values.
//! * [`Schema`] / [`Field`] — named, typed columns plus optional **key**
//!   metadata. Key tracking is load-bearing: the paper's pullup rules are
//!   gated on key preservation (§5.1 of the paper).
//! * [`Table`] — a bag of rows with an optional enforced key and a hash
//!   index over it, plus the `MERGE`-style keyed-update primitives ([`Table::upsert`], [`Table::update_by_key`], [`Table::delete_by_key`])
//!   the apply phase of view maintenance uses.
//! * [`Chunk`] — the lazily built, cached *columnar* image of a table's
//!   rows (typed vectors, dictionary-encoded strings, `⊥` validity
//!   bitmaps) that the vectorized kernels in `gpivot-exec` operate on.
//! * [`Delta`] — a *signed multiset* of rows (`Row → i64` multiplicity),
//!   the exact algebraic object needed for bag-semantics change propagation,
//!   convertible to/from the paper-facing `(ΔV, ∇V)` insert/delete split.
//! * [`Catalog`] — a named collection of base tables, carrying the engine's
//!   [`FaultInjector`] handle.
//! * [`FaultInjector`] — a deterministic, seeded fault-injection schedule
//!   consulted by the exec and maintenance layers (chaos testing; disabled
//!   and free by default).
//!
//! Nothing in this crate knows about plans, pivots, or maintenance — it is a
//! deliberately small, fully tested foundation.

// The substrate every layer trusts: error paths must return `Result`,
// not panic. `unwrap`/`expect` are denied outside unit tests (the same
// discipline as gpivot-serve).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod catalog;
pub mod checkpoint;
pub mod chunk;
mod codec;
pub mod delta;
pub mod error;
pub mod fault;
pub mod row;
pub mod schema;
pub mod table;
pub mod value;
pub mod wal;

pub use catalog::Catalog;
pub use checkpoint::{CheckpointData, LoadedCheckpoint, ViewSnapshot};
pub use chunk::{Chunk, Column, ColumnData};
pub use delta::{shard_of, Delta, DeltaSplit};
pub use error::{Result, StorageError};
pub use fault::{FaultInjector, FaultSite};
pub use row::Row;
pub use schema::{DataType, Field, Schema, SchemaRef};
pub use table::Table;
pub use value::Value;
pub use wal::{FsyncPolicy, Wal, WalRecord, WalScan};
