//! Rows: immutable tuples of [`Value`]s.
//!
//! Rows are stored behind an `Arc<[Value]>` so that the executor and the
//! maintenance engine can copy rows between operators, deltas, hash tables
//! and materialized views without deep-cloning the values. Mutation goes
//! through [`Row::to_vec`] + rebuild, which keeps sharing safe.

use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// An immutable tuple of values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Row(Arc<[Value]>);

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(Arc::from(values))
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// True if the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrow the values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at `idx`; panics if out of range (plans are schema-checked
    /// before execution, so an out-of-range index is a planner bug).
    pub fn get(&self, idx: usize) -> &Value {
        &self.0[idx]
    }

    /// Copy the values out for modification.
    pub fn to_vec(&self) -> Vec<Value> {
        self.0.to_vec()
    }

    /// Project the row onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::new(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Concatenate two rows (used by joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.arity() + other.arity());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row::new(v)
    }

    /// Append `n` NULL columns (used by outer joins).
    pub fn pad_nulls(&self, n: usize) -> Row {
        let mut v = self.to_vec();
        v.extend(std::iter::repeat_n(Value::Null, n));
        Row::new(v)
    }

    /// True iff every value at the given indices is NULL.
    pub fn all_null_at(&self, indices: &[usize]) -> bool {
        indices.iter().all(|&i| self.0[i].is_null())
    }

    /// Iterate over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row::new(v)
    }
}

/// Convenience macro for building rows in tests and examples:
/// `row![1, "a", Value::Null]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::Row::new(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_and_concat() {
        let r = Row::new(vec![Value::Int(1), Value::str("x"), Value::Int(3)]);
        assert_eq!(
            r.project(&[2, 0]),
            Row::new(vec![Value::Int(3), Value::Int(1)])
        );
        let s = Row::new(vec![Value::Bool(true)]);
        assert_eq!(r.concat(&s).arity(), 4);
        assert_eq!(r.concat(&s)[3], Value::Bool(true));
    }

    #[test]
    fn pad_nulls_appends() {
        let r = Row::new(vec![Value::Int(1)]);
        let padded = r.pad_nulls(2);
        assert_eq!(padded.arity(), 3);
        assert!(padded[1].is_null() && padded[2].is_null());
    }

    #[test]
    fn all_null_at_checks_subset() {
        let r = Row::new(vec![Value::Null, Value::Int(1), Value::Null]);
        assert!(r.all_null_at(&[0, 2]));
        assert!(!r.all_null_at(&[0, 1]));
        assert!(r.all_null_at(&[]));
    }

    #[test]
    fn row_macro_mixes_types() {
        let r = row![1, "a", 2.5, true];
        assert_eq!(r.arity(), 4);
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::str("a"));
    }

    #[test]
    fn rows_hash_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(row![1, "a"], 10);
        assert_eq!(m.get(&row![1, "a"]), Some(&10));
        assert_eq!(m.get(&row![1, "b"]), None);
    }

    #[test]
    fn debug_format_uses_bottom() {
        let r = row![1];
        assert_eq!(format!("{r:?}"), "(1)");
        let r2 = Row::new(vec![Value::Null]);
        assert_eq!(format!("{r2:?}"), "(⊥)");
    }
}
