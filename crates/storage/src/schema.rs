//! Schemas: named, typed columns plus optional key metadata.
//!
//! The paper's rewrite framework is driven by *key preservation* (§5.1:
//! "a prerequisite for the pullup applicability is that the operator must
//! also preserve a key"), so schemas here carry the key as structural
//! metadata that every operator's output-schema derivation must maintain.

use crate::error::{Result, StorageError};
use std::fmt;
use std::sync::Arc;

/// Column data types. Typing is advisory (values are dynamically typed) but
/// lets the planner validate expressions and the generator emit sane data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Str,
    Date,
    /// Column whose type is unknown or mixed (e.g. a pivoted value column
    /// whose source column was already `Any`).
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Date => "date",
            DataType::Any => "any",
        };
        f.write_str(s)
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    /// Create a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// A relation schema: ordered fields plus an optional key (set of column
/// indices whose values uniquely identify a row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
    /// Indices of the key columns, sorted ascending; `None` = no known key.
    key: Option<Vec<usize>>,
}

/// Shared schema handle; plans and tables hold schemas by `Arc`.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema with no key.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        let mut seen = std::collections::HashSet::new();
        for f in &fields {
            if !seen.insert(f.name.as_str()) {
                return Err(StorageError::DuplicateColumn(f.name.clone()));
            }
        }
        Ok(Schema { fields, key: None })
    }

    /// Build a schema with a key given by column *names*.
    pub fn with_key(fields: Vec<Field>, key_names: &[&str]) -> Result<Self> {
        let mut schema = Schema::new(fields)?;
        let mut key = Vec::with_capacity(key_names.len());
        for name in key_names {
            key.push(schema.index_of(name)?);
        }
        key.sort_unstable();
        key.dedup();
        schema.key = Some(key);
        Ok(schema)
    }

    /// Convenience: build from `(name, type)` pairs, no key.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Self> {
        Schema::new(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
        )
    }

    /// Convenience: build from `(name, type)` pairs with key column names.
    pub fn from_pairs_keyed(pairs: &[(&str, DataType)], key: &[&str]) -> Result<Self> {
        Schema::with_key(
            pairs
                .iter()
                .map(|(n, t)| Field::new(*n, *t))
                .collect::<Vec<_>>(),
            key,
        )
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| StorageError::UnknownColumn {
                name: name.to_string(),
                schema: self.column_names().join(", "),
            })
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Field at index.
    pub fn field_at(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// All column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// The key column indices, if a key is known.
    pub fn key(&self) -> Option<&[usize]> {
        self.key.as_deref()
    }

    /// The key column names, if a key is known.
    pub fn key_names(&self) -> Option<Vec<&str>> {
        self.key
            .as_ref()
            .map(|k| k.iter().map(|&i| self.fields[i].name.as_str()).collect())
    }

    /// True iff the named column is part of the key.
    pub fn is_key_column(&self, name: &str) -> bool {
        match (&self.key, self.index_of(name)) {
            (Some(key), Ok(idx)) => key.contains(&idx),
            _ => false,
        }
    }

    /// Replace the key with the given column indices (sorted + deduped).
    pub fn set_key(&mut self, mut key: Vec<usize>) {
        key.sort_unstable();
        key.dedup();
        assert!(
            key.iter().all(|&i| i < self.fields.len()),
            "key index out of range"
        );
        self.key = Some(key);
    }

    /// Set the key by column names.
    pub fn set_key_names(&mut self, names: &[&str]) -> Result<()> {
        let mut key = Vec::with_capacity(names.len());
        for n in names {
            key.push(self.index_of(n)?);
        }
        self.set_key(key);
        Ok(())
    }

    /// Drop key metadata (e.g. after an operator that loses the key).
    pub fn clear_key(&mut self) {
        self.key = None;
    }

    /// Whether a key is known.
    pub fn has_key(&self) -> bool {
        self.key.is_some()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let is_key = self.key.as_ref().is_some_and(|k| k.contains(&i));
            if is_key {
                write!(f, "{}*:{}", field.name, field.data_type)?;
            } else {
                write!(f, "{}:{}", field.name, field.data_type)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_pairs_keyed(
            &[
                ("id", DataType::Int),
                ("attr", DataType::Str),
                ("val", DataType::Str),
            ],
            &["id", "attr"],
        )
        .unwrap()
    }

    #[test]
    fn index_and_key_lookup() {
        let s = sample();
        assert_eq!(s.index_of("attr").unwrap(), 1);
        assert_eq!(s.key(), Some(&[0usize, 1][..]));
        assert!(s.is_key_column("id"));
        assert!(!s.is_key_column("val"));
    }

    #[test]
    fn unknown_column_errors() {
        let s = sample();
        assert!(matches!(
            s.index_of("nope"),
            Err(StorageError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn duplicate_column_rejected() {
        let r = Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Int)]);
        assert!(matches!(r, Err(StorageError::DuplicateColumn(_))));
    }

    #[test]
    fn display_marks_key_columns() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("id*:int"));
        assert!(d.contains("val:str"));
    }

    #[test]
    fn set_key_sorts_and_dedups() {
        let mut s = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]).unwrap();
        s.set_key(vec![1, 0, 1]);
        assert_eq!(s.key(), Some(&[0usize, 1][..]));
        s.clear_key();
        assert!(!s.has_key());
    }

    #[test]
    fn key_names_round_trip() {
        let s = sample();
        assert_eq!(s.key_names().unwrap(), vec!["id", "attr"]);
    }
}
