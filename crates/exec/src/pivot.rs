//! Hash-based GPIVOT and GUNPIVOT execution.
//!
//! `GPIVOT` (Eq. 3) is defined in the paper as a full outer join of
//! per-group selections; executing it that way would be quadratic in the
//! number of groups, so we use the standard hash formulation instead: group
//! rows by their `K` projection and scatter each row's measures into the
//! wide output row of its dimension-value group. A `K` value appears in the
//! output iff at least one of its rows carries a listed group — exactly the
//! outer-join semantics.
//!
//! `GUNPIVOT` (Eq. 4) folds each listed group back into a narrow row,
//! skipping groups whose measures are all `⊥`.

use crate::error::{ExecError, Result};
use crate::pool::{partition_by_hash, WorkerPool};
use gpivot_algebra::plan::{PivotSpec, UnpivotSpec};
use gpivot_storage::{Row, Schema, Table, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Column index layout for a pivot execution, resolved once per plan.
pub struct PivotLayout {
    /// Indices of the `K` columns in the input.
    pub k_idx: Vec<usize>,
    /// Indices of the `by` (dimension) columns in the input.
    pub by_idx: Vec<usize>,
    /// Indices of the `on` (measure) columns in the input.
    pub on_idx: Vec<usize>,
    /// Output group lookup: dimension-value tuple → group index.
    pub group_lookup: HashMap<Row, usize>,
}

impl PivotLayout {
    /// Resolve the layout against the input schema.
    pub fn resolve(spec: &PivotSpec, input: &Schema) -> Result<PivotLayout> {
        let k_names = spec.validate(input)?;
        // `validate` guarantees these columns exist, but surface a lookup
        // miss as an error anyway — a panic here would take down a whole
        // refresh worker, an error just fails one view's refresh.
        let k_idx = k_names
            .iter()
            .map(|c| input.index_of(c))
            .collect::<gpivot_storage::Result<Vec<usize>>>()?;
        let by_idx = spec
            .by
            .iter()
            .map(|c| input.index_of(c))
            .collect::<gpivot_storage::Result<Vec<usize>>>()?;
        let on_idx = spec
            .on
            .iter()
            .map(|c| input.index_of(c))
            .collect::<gpivot_storage::Result<Vec<usize>>>()?;
        let group_lookup = spec
            .groups
            .iter()
            .enumerate()
            .map(|(i, g)| (Row::new(g.clone()), i))
            .collect();
        Ok(PivotLayout {
            k_idx,
            by_idx,
            on_idx,
            group_lookup,
        })
    }
}

/// Pivot the input rows at positions `indices` — the single-partition
/// core of both the sequential and the partitioned kernels. Wide rows are
/// emitted in first-seen order of their `K` projection over `indices`, so
/// the output order is a pure function of the input.
fn pivot_partition(
    input: &Table,
    indices: &[usize],
    spec: &PivotSpec,
    layout: &PivotLayout,
) -> Result<Vec<Row>> {
    let n_k = layout.k_idx.len();
    let n_on = layout.on_idx.len();
    let width = n_k + spec.groups.len() * n_on;

    // K projection → slot of the wide row under construction.
    let mut lookup: HashMap<Row, usize> = HashMap::new();
    let mut acc: Vec<Vec<Value>> = Vec::new();
    for &i in indices {
        let row = &input.rows()[i];
        let tags = row.project(&layout.by_idx);
        let Some(&gi) = layout.group_lookup.get(&tags) else {
            continue; // dimension combination not among the output parameters
        };
        // Rows whose measures are all ⊥ contribute nothing observable to
        // the pivot output and are skipped. This matches the paper's
        // standing assumption (footnote 8: "not all (b1..bn) are ⊥") and
        // makes the maintenance rule "delete the view row once all cells
        // are ⊥" (Fig. 22/23) exact.
        if layout.on_idx.iter().all(|&oi| row[oi].is_null()) {
            continue;
        }
        let k = row.project(&layout.k_idx);
        let slot = *lookup.entry(k.clone()).or_insert_with(|| {
            let mut v = Vec::with_capacity(width);
            v.extend(k.iter().cloned());
            v.extend(std::iter::repeat_n(Value::Null, width - n_k));
            acc.push(v);
            acc.len() - 1
        });
        let wide = &mut acc[slot];
        let base = n_k + gi * n_on;
        // (K, A1..Am) is a key: each cell is written at most once.
        if layout
            .on_idx
            .iter()
            .enumerate()
            .any(|(j, _)| !wide[base + j].is_null())
        {
            return Err(ExecError::DuplicatePivotCell {
                key: format!("{k:?}"),
                group: format!("{tags:?}"),
            });
        }
        for (j, &oi) in layout.on_idx.iter().enumerate() {
            wide[base + j] = row[oi].clone();
        }
    }

    Ok(acc.into_iter().map(Row::new).collect())
}

/// Execute a GPIVOT sequentially.
pub fn gpivot(input: &Table, spec: &PivotSpec, out_schema: Arc<Schema>) -> Result<Table> {
    let layout = PivotLayout::resolve(spec, input.schema())?;
    let indices: Vec<usize> = (0..input.len()).collect();
    let rows = pivot_partition(input, &indices, spec, &layout)?;
    Ok(Table::bag(out_schema, rows))
}

/// Execute a GPIVOT partitioned by the hash of the `K` columns.
///
/// All rows of one `K` value land in the same partition, so each wide
/// output row is assembled entirely within one partition and the
/// `(K, A1..Am)` key violation check ([`ExecError::DuplicatePivotCell`])
/// still sees every conflicting pair. Partition outputs concatenate in
/// partition-index order.
pub fn gpivot_partitioned(
    input: &Table,
    spec: &PivotSpec,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
    partitions: usize,
) -> Result<Table> {
    let layout = PivotLayout::resolve(spec, input.schema())?;
    let jobs = partition_by_hash(input.rows(), &layout.k_idx, partitions);
    let outs = pool.run_timed(
        "GPivot",
        "op.GPivot",
        "op.GPivot.partition",
        jobs,
        |indices| pivot_partition(input, &indices, spec, &layout),
    )?;
    Ok(Table::bag(out_schema, outs.into_iter().flatten().collect()))
}

/// Column index layout for an unpivot execution.
pub struct UnpivotLayout {
    /// Indices of the carried-through `K` columns in the input.
    pub k_idx: Vec<usize>,
    /// Per group: input column indices of its measures.
    pub group_cols: Vec<Vec<usize>>,
}

impl UnpivotLayout {
    /// Resolve the layout against the input schema.
    pub fn resolve(spec: &UnpivotSpec, input: &Schema) -> Result<UnpivotLayout> {
        let k_names = spec.validate(input)?;
        let k_idx = k_names
            .iter()
            .map(|c| input.index_of(c))
            .collect::<gpivot_storage::Result<Vec<usize>>>()?;
        let group_cols = spec
            .groups
            .iter()
            .map(|g| {
                g.cols
                    .iter()
                    .map(|c| input.index_of(c))
                    .collect::<gpivot_storage::Result<Vec<usize>>>()
            })
            .collect::<gpivot_storage::Result<Vec<Vec<usize>>>>()?;
        Ok(UnpivotLayout { k_idx, group_cols })
    }
}

/// Execute a GUNPIVOT.
pub fn gunpivot(input: &Table, spec: &UnpivotSpec, out_schema: Arc<Schema>) -> Result<Table> {
    let layout = UnpivotLayout::resolve(spec, input.schema())?;
    let mut out = Vec::new();
    for row in input.iter() {
        for (g, cols) in spec.groups.iter().zip(&layout.group_cols) {
            // Skip groups whose measures are all ⊥ (Eq. 4's σ ≠ ⊥ filter).
            if cols.iter().all(|&c| row[c].is_null()) {
                continue;
            }
            let mut v = Vec::with_capacity(layout.k_idx.len() + g.tags.len() + cols.len());
            v.extend(layout.k_idx.iter().map(|&i| row[i].clone()));
            v.extend(g.tags.iter().cloned());
            v.extend(cols.iter().map(|&c| row[c].clone()));
            out.push(Row::new(v));
        }
    }
    Ok(Table::bag(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::plan::UnpivotGroup;
    use gpivot_storage::{row, DataType};

    /// The ItemInfo table from Figure 1 of the paper.
    fn iteminfo() -> Table {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("AuctionID", DataType::Int),
                    ("Attribute", DataType::Str),
                    ("Value", DataType::Str),
                ],
                &["AuctionID", "Attribute"],
            )
            .unwrap(),
        );
        Table::from_rows(
            schema,
            vec![
                row![1, "Manufacturer", "Sony"],
                row![1, "Type", "TV"],
                row![2, "Manufacturer", "Panasonic"],
                row![3, "Type", "VCR"],
                row![1, "Category", "Electronics"],
            ],
        )
        .unwrap()
    }

    fn fig1_spec() -> PivotSpec {
        PivotSpec::simple(
            "Attribute",
            "Value",
            vec![Value::str("Manufacturer"), Value::str("Type")],
        )
    }

    fn fig1_out_schema() -> Arc<Schema> {
        let mut s = Schema::from_pairs(&[
            ("AuctionID", DataType::Int),
            ("Manufacturer**Value", DataType::Str),
            ("Type**Value", DataType::Str),
        ])
        .unwrap();
        s.set_key(vec![0]);
        Arc::new(s)
    }

    #[test]
    fn pivot_matches_figure_1() {
        let out = gpivot(&iteminfo(), &fig1_spec(), fig1_out_schema()).unwrap();
        let mut rows = out.sorted_rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                row![1, "Sony", "TV"],
                Row::new(vec![Value::Int(2), Value::str("Panasonic"), Value::Null]),
                Row::new(vec![Value::Int(3), Value::Null, Value::str("VCR")]),
            ]
        );
    }

    #[test]
    fn pivot_ignores_unlisted_attributes() {
        // "Category" is not in the output parameters: auction 1 still
        // appears (it has Manufacturer/Type) but no Category column exists.
        let out = gpivot(&iteminfo(), &fig1_spec(), fig1_out_schema()).unwrap();
        assert_eq!(out.schema().arity(), 3);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn pivot_key_only_from_listed_groups() {
        // An auction with *only* unlisted attributes must not appear.
        let schema = iteminfo().schema().clone();
        let t = Table::from_rows(schema, vec![row![9, "Category", "Toys"]]).unwrap();
        let out = gpivot(&t, &fig1_spec(), fig1_out_schema()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn pivot_detects_key_violation() {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("AuctionID", DataType::Int),
                    ("Attribute", DataType::Str),
                    ("Value", DataType::Str),
                ],
                &["AuctionID", "Attribute"],
            )
            .unwrap(),
        );
        // Bag with two rows for the same (1, Manufacturer) cell.
        let t = Table::bag(
            schema,
            vec![
                row![1, "Manufacturer", "Sony"],
                row![1, "Manufacturer", "JVC"],
            ],
        );
        assert!(matches!(
            gpivot(&t, &fig1_spec(), fig1_out_schema()),
            Err(ExecError::DuplicatePivotCell { .. })
        ));
    }

    #[test]
    fn multicolumn_pivot_scatter() {
        // GPIVOT with two measures: Figure 5 shape.
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("Country", DataType::Str),
                    ("Manu", DataType::Str),
                    ("Type", DataType::Str),
                    ("Price", DataType::Int),
                    ("Quantity", DataType::Int),
                ],
                &["Country", "Manu", "Type"],
            )
            .unwrap(),
        );
        let t = Table::from_rows(
            schema,
            vec![
                row!["USA", "Sony", "TV", 100, 10],
                row!["USA", "Sony", "VCR", 200, 20],
                row!["Japan", "Panasonic", "TV", 300, 30],
            ],
        )
        .unwrap();
        let spec = PivotSpec::cross(
            vec!["Manu", "Type"],
            vec!["Price", "Quantity"],
            vec![
                vec![Value::str("Sony"), Value::str("Panasonic")],
                vec![Value::str("TV"), Value::str("VCR")],
            ],
        );
        let mut out_s = Schema::from_pairs(&[
            ("Country", DataType::Str),
            ("Sony**TV**Price", DataType::Int),
            ("Sony**TV**Quantity", DataType::Int),
            ("Sony**VCR**Price", DataType::Int),
            ("Sony**VCR**Quantity", DataType::Int),
            ("Panasonic**TV**Price", DataType::Int),
            ("Panasonic**TV**Quantity", DataType::Int),
            ("Panasonic**VCR**Price", DataType::Int),
            ("Panasonic**VCR**Quantity", DataType::Int),
        ])
        .unwrap();
        out_s.set_key(vec![0]);
        let out = gpivot(&t, &spec, Arc::new(out_s)).unwrap();
        assert_eq!(out.len(), 2);
        let usa = out.iter().find(|r| r[0] == Value::str("USA")).unwrap();
        assert_eq!(usa[1], Value::Int(100));
        assert_eq!(usa[2], Value::Int(10));
        assert_eq!(usa[3], Value::Int(200));
        assert_eq!(usa[4], Value::Int(20));
        assert!(usa[5].is_null());
    }

    #[test]
    fn partitioned_pivot_agrees_with_sequential_and_is_thread_invariant() {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("AuctionID", DataType::Int),
                    ("Attribute", DataType::Str),
                    ("Value", DataType::Str),
                ],
                &["AuctionID", "Attribute"],
            )
            .unwrap(),
        );
        let rows: Vec<Row> = (0..300)
            .flat_map(|id| {
                vec![
                    row![id, "Manufacturer", format!("m{}", id % 7)],
                    row![id, "Type", format!("t{}", id % 3)],
                ]
            })
            .collect();
        let t = Table::bag(schema, rows);
        let seq = gpivot(&t, &fig1_spec(), fig1_out_schema()).unwrap();
        let mut orders = Vec::new();
        for threads in [1, 2, 8] {
            let par = gpivot_partitioned(
                &t,
                &fig1_spec(),
                fig1_out_schema(),
                &crate::pool::WorkerPool::new(threads),
                16,
            )
            .unwrap();
            assert!(par.bag_eq(&seq), "threads={threads}");
            orders.push(par.rows().to_vec());
        }
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
    }

    #[test]
    fn partitioned_pivot_still_detects_key_violation() {
        let schema = iteminfo().schema().clone();
        let t = Table::bag(
            schema,
            vec![
                row![1, "Manufacturer", "Sony"],
                row![1, "Manufacturer", "JVC"],
            ],
        );
        let err = gpivot_partitioned(
            &t,
            &fig1_spec(),
            fig1_out_schema(),
            &crate::pool::WorkerPool::new(4),
            16,
        )
        .unwrap_err();
        assert!(matches!(err, ExecError::DuplicatePivotCell { .. }));
    }

    #[test]
    fn unpivot_reverses_pivot() {
        let out = gpivot(&iteminfo(), &fig1_spec(), fig1_out_schema()).unwrap();
        let unspec = UnpivotSpec::new(
            vec![
                UnpivotGroup {
                    tags: vec![Value::str("Manufacturer")],
                    cols: vec!["Manufacturer**Value".into()],
                },
                UnpivotGroup {
                    tags: vec![Value::str("Type")],
                    cols: vec!["Type**Value".into()],
                },
            ],
            vec!["Attribute"],
            vec!["Value"],
        );
        let mut narrow_s = Schema::from_pairs(&[
            ("AuctionID", DataType::Int),
            ("Attribute", DataType::Str),
            ("Value", DataType::Str),
        ])
        .unwrap();
        narrow_s.set_key(vec![0, 1]);
        let back = gunpivot(&out, &unspec, Arc::new(narrow_s)).unwrap();
        // Round trip loses the unlisted "Category" row only.
        let mut rows = back.sorted_rows();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                row![1, "Manufacturer", "Sony"],
                row![1, "Type", "TV"],
                row![2, "Manufacturer", "Panasonic"],
                row![3, "Type", "VCR"],
            ]
        );
    }

    #[test]
    fn unpivot_skips_all_null_groups() {
        let schema = Arc::new(
            Schema::from_pairs(&[
                ("k", DataType::Int),
                ("a", DataType::Int),
                ("b", DataType::Int),
            ])
            .unwrap(),
        );
        let t = Table::bag(
            schema,
            vec![Row::new(vec![Value::Int(1), Value::Null, Value::Null])],
        );
        let spec = UnpivotSpec::simple(vec!["a", "b"], "which", "val");
        let out_s = Arc::new(
            Schema::from_pairs(&[
                ("k", DataType::Int),
                ("which", DataType::Str),
                ("val", DataType::Int),
            ])
            .unwrap(),
        );
        let out = gunpivot(&t, &spec, out_s).unwrap();
        assert!(out.is_empty());
    }
}
