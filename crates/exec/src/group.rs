//! Hash aggregation with SQL NULL semantics.
//!
//! Aggregates follow the conventions the paper's maintenance rules depend
//! on: `SUM`/`MIN`/`MAX`/`AVG` ignore NULL inputs and yield NULL over an
//! empty (or all-NULL) group — in particular the Eq. 8 proof requires
//! "when all inputs are ⊥, output ⊥ (for COUNT this means ⊥ instead of 0)"
//! only at the *pivot* level; plain `COUNT` here is the usual 0-default SQL
//! count of non-NULLs and `COUNT(*)` counts rows.

use crate::error::{ExecError, Result};
use crate::pool::{partition_by_hash, WorkerPool};
use gpivot_algebra::{AggFunc, AggSpec};
use gpivot_storage::{Row, Schema, Table, Value};
use std::collections::HashMap;

/// Running state for one aggregate. Shared with the columnar kernels'
/// generic fallback path so both engines use one source of truth for
/// aggregate semantics.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Sum {
        acc: Value,
    },
    Count {
        n: i64,
    },
    CountStar {
        n: i64,
    },
    /// AVG accumulates the running sum as a [`Value`] so integer inputs
    /// stay exact `i64` sums until the final division — a running `f64`
    /// sum silently loses exactness past 2⁵³ and diverges from
    /// `SUM(col) / COUNT(col)` on the same column.
    Avg {
        sum: Value,
        n: i64,
    },
    Min {
        cur: Value,
    },
    Max {
        cur: Value,
    },
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum { acc: Value::Null },
            AggFunc::Count => AggState::Count { n: 0 },
            AggFunc::CountStar => AggState::CountStar { n: 0 },
            AggFunc::Avg => AggState::Avg {
                sum: Value::Null,
                n: 0,
            },
            AggFunc::Min => AggState::Min { cur: Value::Null },
            AggFunc::Max => AggState::Max { cur: Value::Null },
        }
    }

    pub(crate) fn update(&mut self, input: &Value) -> Result<()> {
        match self {
            AggState::Sum { acc } => {
                if !input.is_null() {
                    *acc = if acc.is_null() {
                        input.clone()
                    } else {
                        acc.numeric_add(input)
                    };
                }
            }
            AggState::Count { n } => {
                if !input.is_null() {
                    *n += 1;
                }
            }
            AggState::CountStar { n } => *n += 1,
            AggState::Avg { sum, n } => {
                // Skip exactly NULLs (the module-header rule shared with
                // SUM/COUNT); any other non-numeric value is a typed error,
                // never a silent drop.
                if input.is_null() {
                    return Ok(());
                }
                if input.as_f64().is_none() {
                    return Err(ExecError::AggregateTypeMismatch {
                        func: "AVG",
                        value: format!("{input:?}"),
                    });
                }
                *sum = if sum.is_null() {
                    input.clone()
                } else {
                    sum.numeric_add(input)
                };
                *n += 1;
            }
            AggState::Min { cur } => {
                if !input.is_null()
                    && (cur.is_null() || input.total_cmp(cur) == std::cmp::Ordering::Less)
                {
                    *cur = input.clone();
                }
            }
            AggState::Max { cur } => {
                if !input.is_null()
                    && (cur.is_null() || input.total_cmp(cur) == std::cmp::Ordering::Greater)
                {
                    *cur = input.clone();
                }
            }
        }
        Ok(())
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Sum { acc } => acc,
            AggState::Count { n } => Value::Int(n),
            AggState::CountStar { n } => Value::Int(n),
            AggState::Avg { sum, n } => match (sum.as_f64(), n) {
                (None, _) | (_, 0) => Value::Null,
                (Some(s), n) => Value::Float(s / n as f64),
            },
            AggState::Min { cur } => cur,
            AggState::Max { cur } => cur,
        }
    }
}

/// Aggregate the input rows at positions `indices` — the single-partition
/// core of both the sequential and the partitioned kernels. Groups are
/// emitted in first-seen order (insertion order over `indices`), so the
/// output order is a pure function of the input — never of `HashMap`
/// iteration order or thread scheduling.
fn group_partition(
    input: &Table,
    indices: &[usize],
    group_idx: &[usize],
    aggs: &[AggSpec],
    agg_inputs: &[usize],
) -> Result<Vec<Row>> {
    let mut lookup: HashMap<Row, usize> = HashMap::new();
    let mut keys: Vec<Row> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();
    for &i in indices {
        let row = &input.rows()[i];
        let key = row.project(group_idx);
        let slot = *lookup.entry(key.clone()).or_insert_with(|| {
            keys.push(key);
            states.push(aggs.iter().map(|a| AggState::new(a.func)).collect());
            states.len() - 1
        });
        for (state, &in_idx) in states[slot].iter_mut().zip(agg_inputs) {
            let v = if in_idx == usize::MAX {
                // COUNT(*): the value is irrelevant.
                Value::Int(1)
            } else {
                row[in_idx].clone()
            };
            state.update(&v)?;
        }
    }
    let mut rows = Vec::with_capacity(keys.len());
    for (key, states) in keys.into_iter().zip(states) {
        let mut out = key.to_vec();
        out.extend(states.into_iter().map(AggState::finish));
        rows.push(Row::new(out));
    }
    Ok(rows)
}

/// Execute a hash aggregation sequentially.
///
/// `group_idx` are the grouping column indices in the input, `agg_inputs`
/// the input column index per aggregate (`usize::MAX` for `COUNT(*)`).
pub fn hash_group_by(
    input: &Table,
    group_idx: &[usize],
    aggs: &[AggSpec],
    agg_inputs: &[usize],
    out_schema: std::sync::Arc<Schema>,
) -> Result<Table> {
    let indices: Vec<usize> = (0..input.len()).collect();
    let rows = group_partition(input, &indices, group_idx, aggs, agg_inputs)?;
    Ok(Table::bag(out_schema, rows))
}

/// Execute a hash aggregation partitioned by the hash of the group key.
///
/// Equal group keys always hash to the same partition, so every group is
/// aggregated entirely within one partition — no cross-partition merge of
/// aggregate states is needed. Partition outputs concatenate in
/// partition-index order; with the empty group (global aggregates) all
/// rows collapse into partition 0 and this degenerates to the sequential
/// kernel.
pub fn hash_group_by_partitioned(
    input: &Table,
    group_idx: &[usize],
    aggs: &[AggSpec],
    agg_inputs: &[usize],
    out_schema: std::sync::Arc<Schema>,
    pool: &WorkerPool,
    partitions: usize,
) -> Result<Table> {
    let jobs = partition_by_hash(input.rows(), group_idx, partitions);
    let outs = pool.run_timed(
        "GroupBy",
        "op.GroupBy",
        "op.GroupBy.partition",
        jobs,
        |indices| group_partition(input, &indices, group_idx, aggs, agg_inputs),
    )?;
    Ok(Table::bag(out_schema, outs.into_iter().flatten().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{row, DataType};
    use std::sync::Arc;

    fn input() -> Table {
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Str), ("v", DataType::Int)]).unwrap());
        Table::bag(
            schema,
            vec![
                row!["a", 1],
                row!["a", 2],
                Row::new(vec![Value::str("a"), Value::Null]),
                row!["b", 5],
            ],
        )
    }

    fn out_schema(aggs: &[(&str, DataType)]) -> Arc<Schema> {
        let mut pairs = vec![("g", DataType::Str)];
        pairs.extend_from_slice(aggs);
        Arc::new(Schema::from_pairs(&pairs).unwrap())
    }

    #[test]
    fn sum_ignores_nulls() {
        let t = hash_group_by(
            &input(),
            &[0],
            &[AggSpec::sum("v", "s")],
            &[1],
            out_schema(&[("s", DataType::Int)]),
        )
        .unwrap();
        let rows = t.sorted_rows();
        assert_eq!(rows, vec![row!["a", 3], row!["b", 5]]);
    }

    #[test]
    fn count_vs_count_star() {
        let t = hash_group_by(
            &input(),
            &[0],
            &[AggSpec::count("v", "c"), AggSpec::count_star("cs")],
            &[1, usize::MAX],
            out_schema(&[("c", DataType::Int), ("cs", DataType::Int)]),
        )
        .unwrap();
        let rows = t.sorted_rows();
        // group a: 2 non-null of 3 rows
        assert_eq!(rows, vec![row!["a", 2, 3], row!["b", 1, 1]]);
    }

    #[test]
    fn avg_and_empty_group_is_null() {
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Str), ("v", DataType::Int)]).unwrap());
        let all_null = Table::bag(schema, vec![Row::new(vec![Value::str("a"), Value::Null])]);
        let t = hash_group_by(
            &all_null,
            &[0],
            &[AggSpec::avg("v", "a"), AggSpec::sum("v", "s")],
            &[1, 1],
            out_schema(&[("a", DataType::Float), ("s", DataType::Int)]),
        )
        .unwrap();
        let r = &t.rows()[0];
        assert!(r[1].is_null());
        assert!(r[2].is_null());
    }

    /// Oracle: AVG must equal SUM / COUNT over the same column, with
    /// exactly the same NULL-skipping rule — including `i64` sums past
    /// 2⁵³ where a running `f64` accumulator loses increments.
    #[test]
    fn avg_agrees_with_sum_over_count_oracle() {
        const BIG: i64 = 1 << 53;
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Str), ("v", DataType::Int)]).unwrap());
        let t = Table::bag(
            schema,
            vec![
                row!["a", BIG],
                row!["a", 1],
                row!["a", 1],
                Row::new(vec![Value::str("a"), Value::Null]),
            ],
        );
        let out = hash_group_by(
            &t,
            &[0],
            &[
                AggSpec::avg("v", "a"),
                AggSpec::sum("v", "s"),
                AggSpec::count("v", "c"),
            ],
            &[1, 1, 1],
            out_schema(&[
                ("a", DataType::Float),
                ("s", DataType::Int),
                ("c", DataType::Int),
            ]),
        )
        .unwrap();
        let r = &out.rows()[0];
        // SUM stays an exact i64; COUNT skips only the NULL.
        assert_eq!(r[2], Value::Int(BIG + 2));
        assert_eq!(r[3], Value::Int(3));
        let avg = r[1].as_f64().unwrap();
        let oracle = (BIG + 2) as f64 / 3.0;
        assert_eq!(
            avg, oracle,
            "AVG diverged from SUM/COUNT: f64 accumulation lost exactness"
        );
        // The buggy f64 running sum would have produced 2^53 / 3 instead.
        assert_ne!(avg, BIG as f64 / 3.0);
    }

    /// AVG over a non-numeric non-null value is a typed error, not a
    /// silent drop (SUM/COUNT's "skip only NULL" rule applies to AVG too).
    #[test]
    fn avg_rejects_non_numeric_instead_of_dropping() {
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Str), ("v", DataType::Str)]).unwrap());
        let t = Table::bag(schema, vec![row!["a", "not-a-number"]]);
        let err = hash_group_by(
            &t,
            &[0],
            &[AggSpec::avg("v", "a")],
            &[1],
            out_schema(&[("a", DataType::Float)]),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            crate::error::ExecError::AggregateTypeMismatch { func: "AVG", .. }
        ));
    }

    #[test]
    fn min_max() {
        let t = hash_group_by(
            &input(),
            &[0],
            &[AggSpec::min("v", "lo"), AggSpec::max("v", "hi")],
            &[1, 1],
            out_schema(&[("lo", DataType::Int), ("hi", DataType::Int)]),
        )
        .unwrap();
        let rows = t.sorted_rows();
        assert_eq!(rows, vec![row!["a", 1, 2], row!["b", 5, 5]]);
    }

    #[test]
    fn partitioned_group_by_agrees_with_sequential_and_is_thread_invariant() {
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]).unwrap());
        let t = Table::bag(
            schema,
            (0..500).map(|i| row![i % 23, i]).collect::<Vec<_>>(),
        );
        let aggs = [
            AggSpec::sum("v", "s"),
            AggSpec::count("v", "c"),
            AggSpec::min("v", "lo"),
        ];
        let os = Arc::new(
            Schema::from_pairs(&[
                ("g", DataType::Int),
                ("s", DataType::Int),
                ("c", DataType::Int),
                ("lo", DataType::Int),
            ])
            .unwrap(),
        );
        let seq = hash_group_by(&t, &[0], &aggs, &[1, 1, 1], os.clone()).unwrap();
        let mut orders = Vec::new();
        for threads in [1, 2, 8] {
            let par = hash_group_by_partitioned(
                &t,
                &[0],
                &aggs,
                &[1, 1, 1],
                os.clone(),
                &crate::pool::WorkerPool::new(threads),
                16,
            )
            .unwrap();
            assert!(par.bag_eq(&seq), "threads={threads}");
            orders.push(par.rows().to_vec());
        }
        assert_eq!(orders[0], orders[1]);
        assert_eq!(orders[1], orders[2]);
    }

    #[test]
    fn partitioned_global_aggregate_stays_single_group() {
        let t = input();
        let os = Arc::new(Schema::from_pairs(&[("n", DataType::Int)]).unwrap());
        let seq = hash_group_by(
            &t,
            &[],
            &[AggSpec::count_star("n")],
            &[usize::MAX],
            os.clone(),
        )
        .unwrap();
        let par = hash_group_by_partitioned(
            &t,
            &[],
            &[AggSpec::count_star("n")],
            &[usize::MAX],
            os,
            &crate::pool::WorkerPool::new(4),
            16,
        )
        .unwrap();
        assert_eq!(par.rows(), seq.rows());
        assert_eq!(par.rows(), &[row![4]]);
    }

    #[test]
    fn global_aggregate_single_group() {
        let t = hash_group_by(
            &input(),
            &[],
            &[AggSpec::count_star("n")],
            &[usize::MAX],
            Arc::new(Schema::from_pairs(&[("n", DataType::Int)]).unwrap()),
        )
        .unwrap();
        assert_eq!(t.rows(), &[row![4]]);
    }
}
