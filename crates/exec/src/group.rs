//! Hash aggregation with SQL NULL semantics.
//!
//! Aggregates follow the conventions the paper's maintenance rules depend
//! on: `SUM`/`MIN`/`MAX`/`AVG` ignore NULL inputs and yield NULL over an
//! empty (or all-NULL) group — in particular the Eq. 8 proof requires
//! "when all inputs are ⊥, output ⊥ (for COUNT this means ⊥ instead of 0)"
//! only at the *pivot* level; plain `COUNT` here is the usual 0-default SQL
//! count of non-NULLs and `COUNT(*)` counts rows.

use crate::error::Result;
use gpivot_algebra::{AggFunc, AggSpec};
use gpivot_storage::{Row, Schema, Table, Value};
use std::collections::HashMap;

/// Running state for one aggregate.
#[derive(Debug, Clone)]
enum AggState {
    Sum { acc: Value },
    Count { n: i64 },
    CountStar { n: i64 },
    Avg { sum: f64, n: i64 },
    Min { cur: Value },
    Max { cur: Value },
}

impl AggState {
    fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Sum => AggState::Sum { acc: Value::Null },
            AggFunc::Count => AggState::Count { n: 0 },
            AggFunc::CountStar => AggState::CountStar { n: 0 },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::Min { cur: Value::Null },
            AggFunc::Max => AggState::Max { cur: Value::Null },
        }
    }

    fn update(&mut self, input: &Value) {
        match self {
            AggState::Sum { acc } => {
                if !input.is_null() {
                    *acc = if acc.is_null() {
                        input.clone()
                    } else {
                        acc.numeric_add(input)
                    };
                }
            }
            AggState::Count { n } => {
                if !input.is_null() {
                    *n += 1;
                }
            }
            AggState::CountStar { n } => *n += 1,
            AggState::Avg { sum, n } => {
                if let Some(f) = input.as_f64() {
                    *sum += f;
                    *n += 1;
                }
            }
            AggState::Min { cur } => {
                if !input.is_null()
                    && (cur.is_null() || input.total_cmp(cur) == std::cmp::Ordering::Less)
                {
                    *cur = input.clone();
                }
            }
            AggState::Max { cur } => {
                if !input.is_null()
                    && (cur.is_null() || input.total_cmp(cur) == std::cmp::Ordering::Greater)
                {
                    *cur = input.clone();
                }
            }
        }
    }

    fn finish(self) -> Value {
        match self {
            AggState::Sum { acc } => acc,
            AggState::Count { n } => Value::Int(n),
            AggState::CountStar { n } => Value::Int(n),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::Min { cur } => cur,
            AggState::Max { cur } => cur,
        }
    }
}

/// Execute a hash aggregation.
///
/// `group_idx` are the grouping column indices in the input, `agg_inputs`
/// the input column index per aggregate (`usize::MAX` for `COUNT(*)`).
pub fn hash_group_by(
    input: &Table,
    group_idx: &[usize],
    aggs: &[AggSpec],
    agg_inputs: &[usize],
    out_schema: std::sync::Arc<Schema>,
) -> Result<Table> {
    let mut groups: HashMap<Row, Vec<AggState>> = HashMap::new();
    for row in input.iter() {
        let key = row.project(group_idx);
        let states = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| AggState::new(a.func)).collect());
        for (state, &in_idx) in states.iter_mut().zip(agg_inputs) {
            let v = if in_idx == usize::MAX {
                // COUNT(*): the value is irrelevant.
                Value::Int(1)
            } else {
                row[in_idx].clone()
            };
            state.update(&v);
        }
    }
    let mut rows = Vec::with_capacity(groups.len());
    for (key, states) in groups {
        let mut out = key.to_vec();
        out.extend(states.into_iter().map(AggState::finish));
        rows.push(Row::new(out));
    }
    Ok(Table::bag(out_schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{row, DataType};
    use std::sync::Arc;

    fn input() -> Table {
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Str), ("v", DataType::Int)]).unwrap());
        Table::bag(
            schema,
            vec![
                row!["a", 1],
                row!["a", 2],
                Row::new(vec![Value::str("a"), Value::Null]),
                row!["b", 5],
            ],
        )
    }

    fn out_schema(aggs: &[(&str, DataType)]) -> Arc<Schema> {
        let mut pairs = vec![("g", DataType::Str)];
        pairs.extend_from_slice(aggs);
        Arc::new(Schema::from_pairs(&pairs).unwrap())
    }

    #[test]
    fn sum_ignores_nulls() {
        let t = hash_group_by(
            &input(),
            &[0],
            &[AggSpec::sum("v", "s")],
            &[1],
            out_schema(&[("s", DataType::Int)]),
        )
        .unwrap();
        let rows = t.sorted_rows();
        assert_eq!(rows, vec![row!["a", 3], row!["b", 5]]);
    }

    #[test]
    fn count_vs_count_star() {
        let t = hash_group_by(
            &input(),
            &[0],
            &[AggSpec::count("v", "c"), AggSpec::count_star("cs")],
            &[1, usize::MAX],
            out_schema(&[("c", DataType::Int), ("cs", DataType::Int)]),
        )
        .unwrap();
        let rows = t.sorted_rows();
        // group a: 2 non-null of 3 rows
        assert_eq!(rows, vec![row!["a", 2, 3], row!["b", 1, 1]]);
    }

    #[test]
    fn avg_and_empty_group_is_null() {
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Str), ("v", DataType::Int)]).unwrap());
        let all_null = Table::bag(schema, vec![Row::new(vec![Value::str("a"), Value::Null])]);
        let t = hash_group_by(
            &all_null,
            &[0],
            &[AggSpec::avg("v", "a"), AggSpec::sum("v", "s")],
            &[1, 1],
            out_schema(&[("a", DataType::Float), ("s", DataType::Int)]),
        )
        .unwrap();
        let r = &t.rows()[0];
        assert!(r[1].is_null());
        assert!(r[2].is_null());
    }

    #[test]
    fn min_max() {
        let t = hash_group_by(
            &input(),
            &[0],
            &[AggSpec::min("v", "lo"), AggSpec::max("v", "hi")],
            &[1, 1],
            out_schema(&[("lo", DataType::Int), ("hi", DataType::Int)]),
        )
        .unwrap();
        let rows = t.sorted_rows();
        assert_eq!(rows, vec![row!["a", 1, 2], row!["b", 5, 5]]);
    }

    #[test]
    fn global_aggregate_single_group() {
        let t = hash_group_by(
            &input(),
            &[],
            &[AggSpec::count_star("n")],
            &[usize::MAX],
            Arc::new(Schema::from_pairs(&[("n", DataType::Int)]).unwrap()),
        )
        .unwrap();
        assert_eq!(t.rows(), &[row![4]]);
    }
}
