//! Table providers: where scans get their rows.
//!
//! [`Overlay`] is how the maintenance engine evaluates propagation
//! sub-plans: delta bags and hypothetical post-update table states are
//! registered under temporary names *over* the real catalog, so plans like
//! `GPIVOT(Δlineitem ⋈ orders)` execute without copying base tables.

use crate::error::Result;
use gpivot_algebra::{AlgebraError, SchemaProvider};
use gpivot_storage::fault::FaultSite;
use gpivot_storage::{Catalog, SchemaRef, StorageError, Table};
use std::collections::HashMap;

/// Source of tables for plan execution.
pub trait TableProvider {
    /// The table registered under `name`.
    fn get_table(&self, name: &str) -> Result<&Table>;

    /// The schema of the table registered under `name`.
    fn get_schema(&self, name: &str) -> Result<SchemaRef> {
        Ok(self.get_table(name)?.schema().clone())
    }
}

impl TableProvider for Catalog {
    fn get_table(&self, name: &str) -> Result<&Table> {
        // The Scan fault site fires here (and only here): plan execution
        // resolves tables through the provider, while plain catalog lookups
        // (validation, schema inference) stay fault-free.
        self.fault_injector().check(FaultSite::Scan, name)?;
        Ok(self.table(name)?)
    }

    fn get_schema(&self, name: &str) -> Result<SchemaRef> {
        // Schema inference is not a scan: bypass the fault site so an
        // injected fault can't masquerade as a schema/validation error.
        Ok(self.table(name)?.schema().clone())
    }
}

/// A set of temporary tables layered over a base catalog. Lookups hit the
/// overlay first, then fall through to the base; an overlay entry therefore
/// *shadows* a base table of the same name (used to present post-update
/// states).
pub struct Overlay<'a> {
    base: &'a Catalog,
    extra: HashMap<String, Table>,
}

impl<'a> Overlay<'a> {
    /// Start an empty overlay over `base`.
    pub fn new(base: &'a Catalog) -> Self {
        Overlay {
            base,
            extra: HashMap::new(),
        }
    }

    /// Register (or shadow) a table under `name`.
    pub fn put(&mut self, name: impl Into<String>, table: Table) {
        self.extra.insert(name.into(), table);
    }

    /// Builder-style [`Overlay::put`].
    pub fn with(mut self, name: impl Into<String>, table: Table) -> Self {
        self.put(name, table);
        self
    }

    /// The underlying catalog.
    pub fn base(&self) -> &Catalog {
        self.base
    }
}

impl TableProvider for Overlay<'_> {
    fn get_table(&self, name: &str) -> Result<&Table> {
        // Overlay entries (delta bags, hypothetical post-states) are subject
        // to the same Scan fault site as base tables, so propagation
        // sub-plans can fail mid-evaluation under chaos schedules.
        self.base.fault_injector().check(FaultSite::Scan, name)?;
        if let Some(t) = self.extra.get(name) {
            return Ok(t);
        }
        Ok(self.base.table(name)?)
    }

    fn get_schema(&self, name: &str) -> Result<SchemaRef> {
        // Fault-free for the same reason as the `Catalog` impl.
        if let Some(t) = self.extra.get(name) {
            return Ok(t.schema().clone());
        }
        Ok(self.base.table(name)?.schema().clone())
    }
}

/// Adapter so any [`TableProvider`] also serves algebra schema inference.
pub struct ProviderSchemas<'a, P: TableProvider>(pub &'a P);

impl<P: TableProvider> SchemaProvider for ProviderSchemas<'_, P> {
    fn base_schema(&self, table: &str) -> gpivot_algebra::Result<SchemaRef> {
        self.0.get_schema(table).map_err(|e| match e {
            // Preserve the storage error (error classification depends on
            // it — an injected fault must not turn into `UnknownTable`).
            crate::error::ExecError::Storage(se) => AlgebraError::Storage(se),
            _ => AlgebraError::Storage(StorageError::UnknownTable(table.to_string())),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{row, DataType, Schema};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Arc::new(Schema::from_pairs_keyed(&[("id", DataType::Int)], &["id"]).unwrap());
        c.register("t", Table::from_rows(schema, vec![row![1]]).unwrap())
            .unwrap();
        c
    }

    #[test]
    fn overlay_shadows_base() {
        let c = catalog();
        let schema = Arc::new(Schema::from_pairs(&[("id", DataType::Int)]).unwrap());
        let shadow = Table::bag(schema, vec![row![7], row![8]]);
        let ov = Overlay::new(&c).with("t", shadow);
        assert_eq!(ov.get_table("t").unwrap().len(), 2);
    }

    #[test]
    fn overlay_falls_through() {
        let c = catalog();
        let ov = Overlay::new(&c);
        assert_eq!(ov.get_table("t").unwrap().len(), 1);
        assert!(ov.get_table("missing").is_err());
    }

    #[test]
    fn injected_scan_fault_fails_execution_not_lookup() {
        use gpivot_storage::{FaultInjector, FaultSite};
        let mut c = catalog();
        c.set_fault_injector(
            FaultInjector::seeded(11)
                .with_site(FaultSite::Scan, 1.0, 0.0)
                .with_budget(2),
        );
        // Provider scans hit the fault site...
        assert!(c.get_table("t").is_err());
        let ov = Overlay::new(&c);
        assert!(ov.get_table("t").is_err());
        // ...but plain catalog lookups never do.
        assert!(c.table("t").is_ok());
        // Budget exhausted: scans recover.
        assert!(c.get_table("t").is_ok());
    }

    #[test]
    fn provider_schemas_adapts() {
        let c = catalog();
        let ov = Overlay::new(&c);
        let schemas = ProviderSchemas(&ov);
        use gpivot_algebra::SchemaProvider as _;
        assert_eq!(schemas.base_schema("t").unwrap().arity(), 1);
        assert!(schemas.base_schema("missing").is_err());
    }
}
