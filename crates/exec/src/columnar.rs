//! Vectorized (column-at-a-time) kernels for Join, GroupBy, and GPIVOT.
//!
//! These kernels consume the [`Chunk`] a [`Table`] caches (typed column
//! vectors, dictionary-encoded strings, `⊥` validity bitmaps) instead of
//! walking `Row`s. Key hashing runs one column at a time over pre-built
//! hasher states ([`Chunk::hash_rows`]), key comparison uses the typed
//! fast paths of [`gpivot_storage::Column::value_eq`], aggregates
//! accumulate directly on `i64`/`f64` columns, and GPIVOT resolves a
//! row's dimension group by indexing a per-dictionary-code array instead
//! of hashing a `Value` tuple per row.
//!
//! **Bit-identity contract.** Every kernel here reproduces the exact
//! output (values *and* order) of its row-at-a-time counterpart in
//! [`crate::join`] / [`crate::group`] / [`crate::pivot`]:
//!
//! * partitioning hashes the same bytes ([`Chunk::hash_rows`] replicates
//!   `Value::hash`), so rows land in the same partitions;
//! * groups, pivot keys, and join matches are emitted in the same
//!   first-seen / probe order; hash buckets are disambiguated with exact
//!   `value_eq` comparisons, never by hash alone;
//! * typed aggregate accumulators perform the same arithmetic in the same
//!   order as the shared [`AggState`] (which remains the fallback for
//!   heterogeneous columns), so even float results are bit-identical.
//!
//! The engine picks these kernels when [`crate::ExecOptions::columnar`]
//! is set (the default); the CI equivalence suite pins the contract.

use crate::error::{ExecError, Result};
use crate::group::AggState;
use crate::pivot::PivotLayout;
use crate::pool::WorkerPool;
use gpivot_algebra::plan::PivotSpec;
use gpivot_algebra::{AggFunc, AggSpec, BoundExpr, JoinKind};
use gpivot_storage::{Chunk, Column, ColumnData, Row, Schema, Table, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::sync::Arc;

/// Group pre-hashed rows into `partitions` buckets of row indices — the
/// columnar twin of [`crate::pool::partition_by_hash`]. The hashes come
/// from [`Chunk::hash_rows`], which writes the same bytes per key column
/// as `Value::hash`, so the assignment is identical to the row
/// partitioner's.
fn partition_indices(hashes: &[u64], partitions: usize) -> Vec<Vec<usize>> {
    let partitions = partitions.max(1);
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for (i, &h) in hashes.iter().enumerate() {
        parts[(h % partitions as u64) as usize].push(i);
    }
    parts
}

/// Hash-partition a chunk's rows by the `key_idx` columns, column at a
/// time. Produces exactly the buckets `partition_by_hash` would produce
/// from the equivalent rows.
pub fn partition_by_hash_chunk(
    chunk: &Chunk,
    key_idx: &[usize],
    partitions: usize,
) -> Vec<Vec<usize>> {
    partition_indices(&chunk.hash_rows(key_idx, DefaultHasher::new), partitions)
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

/// The single-partition columnar join core. Build/probe key hashes are
/// precomputed per side; the build table maps a key *hash* to candidate
/// row indices (in `ridx` order) and every candidate is confirmed with
/// `rows_eq`, so hash collisions cannot create false matches and the
/// match emission order equals the row kernel's (probe in `lidx` order,
/// candidates in `ridx` order).
#[allow(clippy::too_many_arguments)]
fn join_partition_columnar(
    left: &Chunk,
    right: &Chunk,
    kind: JoinKind,
    left_on: &[usize],
    right_on: &[usize],
    residual: Option<&BoundExpr>,
    lhash: &[u64],
    rhash: &[u64],
    lidx: &[usize],
    ridx: &[usize],
) -> Vec<Row> {
    // Build side: right. NULL keys never join, so they never enter the map.
    let mut build: HashMap<u64, Vec<usize>> = HashMap::new();
    for &ri in ridx {
        if right.any_null(ri, right_on) {
            continue;
        }
        build.entry(rhash[ri]).or_default().push(ri);
    }

    let mut right_matched = vec![
        false;
        if kind == JoinKind::FullOuter {
            right.len()
        } else {
            0
        }
    ];
    let mut out: Vec<Row> = Vec::new();
    let n_right = right.arity();
    let n_left = left.arity();

    for &li in lidx {
        let mut matched = false;
        if !left.any_null(li, left_on) {
            if let Some(candidates) = build.get(&lhash[li]) {
                let mut lrow: Option<Row> = None;
                for &ri in candidates {
                    if !left.rows_eq(li, left_on, right, ri, right_on) {
                        continue; // same bucket, different key (hash collision)
                    }
                    let lrow = lrow.get_or_insert_with(|| left.row(li));
                    let joined = lrow.concat(&right.row(ri));
                    let pass = residual.map(|p| p.holds(&joined)).unwrap_or(true);
                    if pass {
                        matched = true;
                        if kind == JoinKind::FullOuter {
                            right_matched[ri] = true;
                        }
                        out.push(joined);
                    }
                }
            }
        }
        if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            out.push(left.row(li).pad_nulls(n_right));
        }
    }

    if kind == JoinKind::FullOuter {
        for &ri in ridx {
            if !right_matched[ri] {
                let mut v = vec![Value::Null; n_left];
                v.extend(right.row(ri).iter().cloned());
                out.push(Row::new(v));
            }
        }
    }

    out
}

/// Execute a hash equi-join sequentially on the columnar images.
pub fn hash_join_columnar(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    left_on: &[usize],
    right_on: &[usize],
    residual: Option<&BoundExpr>,
    out_schema: Arc<Schema>,
) -> Result<Table> {
    let (lc, rc) = (left.chunk(), right.chunk());
    let lhash = lc.hash_rows(left_on, DefaultHasher::new);
    let rhash = rc.hash_rows(right_on, DefaultHasher::new);
    let lidx: Vec<usize> = (0..lc.len()).collect();
    let ridx: Vec<usize> = (0..rc.len()).collect();
    let out = join_partition_columnar(
        &lc, &rc, kind, left_on, right_on, residual, &lhash, &rhash, &lidx, &ridx,
    );
    Ok(Table::bag(out_schema, out))
}

/// Execute a hash equi-join partitioned by the hash of the join keys,
/// on the columnar images. The per-row key hashes are computed once and
/// reused for both the partitioning and the per-partition build/probe.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_columnar_partitioned(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    left_on: &[usize],
    right_on: &[usize],
    residual: Option<&BoundExpr>,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
    partitions: usize,
) -> Result<Table> {
    let (lc, rc) = (left.chunk(), right.chunk());
    let lhash = lc.hash_rows(left_on, DefaultHasher::new);
    let rhash = rc.hash_rows(right_on, DefaultHasher::new);
    let lparts = partition_indices(&lhash, partitions);
    let rparts = partition_indices(&rhash, partitions);
    let jobs: Vec<(Vec<usize>, Vec<usize>)> = lparts.into_iter().zip(rparts).collect();
    let outs = pool.run_timed(
        "Join",
        "op.Join",
        "op.Join.partition",
        jobs,
        |(lidx, ridx)| {
            Ok(join_partition_columnar(
                &lc, &rc, kind, left_on, right_on, residual, &lhash, &rhash, &lidx, &ridx,
            ))
        },
    )?;
    Ok(Table::bag(out_schema, outs.into_iter().flatten().collect()))
}

// ---------------------------------------------------------------------------
// GroupBy
// ---------------------------------------------------------------------------

/// A per-(aggregate, input column) accumulator. Typed variants accumulate
/// directly on the column vector and perform the same arithmetic in the
/// same order as [`AggState`] over the materialized values, so results are
/// bit-identical; heterogeneous (`Mixed`) and cross-typed columns fall
/// back to [`AggState`] itself.
enum Acc<'a> {
    /// `COUNT(*)` — row count, no input column.
    CountStar { n: i64 },
    /// `COUNT(col)` over any encoding — only the validity bitmap matters.
    Count { col: &'a Column, n: i64 },
    /// `SUM`/`AVG` over an `Int64` column: exact `i64` accumulation,
    /// matching the row kernel's `Value::Int` chain (including its
    /// overflow behavior — plain `+` in both).
    SumI64 {
        col: &'a Column,
        vals: &'a [i64],
        acc: Option<i64>,
        n: i64,
        avg: bool,
    },
    /// `SUM`/`AVG` over a `Float64` column: `f64` folds in row order, the
    /// same additions `Value::numeric_add` performs.
    SumF64 {
        col: &'a Column,
        vals: &'a [f64],
        acc: Option<f64>,
        n: i64,
        avg: bool,
    },
    /// `MIN`/`MAX` over an `Int64` column (strict replacement, like the
    /// row kernel: ties keep the earlier value).
    MinMaxI64 {
        col: &'a Column,
        vals: &'a [i64],
        cur: Option<i64>,
        max: bool,
    },
    /// `MIN`/`MAX` over a `Float64` column. Comparison goes through
    /// `Value::total_cmp` so NaN normalization and `-0.0 == 0.0` agree
    /// exactly with the row kernel; the stored value keeps its raw bits.
    MinMaxF64 {
        col: &'a Column,
        vals: &'a [f64],
        cur: Option<f64>,
        max: bool,
    },
    /// Fallback: materialize each value and drive the shared row-kernel
    /// state (identical by construction, including typed AVG errors).
    Generic { col: &'a Column, state: AggState },
}

impl<'a> Acc<'a> {
    fn new(func: AggFunc, chunk: &'a Chunk, in_idx: usize) -> Acc<'a> {
        if in_idx == usize::MAX {
            return Acc::CountStar { n: 0 };
        }
        let col = chunk.column(in_idx);
        match (func, col.data()) {
            (AggFunc::CountStar, _) => Acc::CountStar { n: 0 },
            (AggFunc::Count, _) => Acc::Count { col, n: 0 },
            (AggFunc::Sum | AggFunc::Avg, ColumnData::Int64(vals)) => Acc::SumI64 {
                col,
                vals,
                acc: None,
                n: 0,
                avg: func == AggFunc::Avg,
            },
            (AggFunc::Sum | AggFunc::Avg, ColumnData::Float64(vals)) => Acc::SumF64 {
                col,
                vals,
                acc: None,
                n: 0,
                avg: func == AggFunc::Avg,
            },
            (AggFunc::Min | AggFunc::Max, ColumnData::Int64(vals)) => Acc::MinMaxI64 {
                col,
                vals,
                cur: None,
                max: func == AggFunc::Max,
            },
            (AggFunc::Min | AggFunc::Max, ColumnData::Float64(vals)) => Acc::MinMaxF64 {
                col,
                vals,
                cur: None,
                max: func == AggFunc::Max,
            },
            _ => Acc::Generic {
                col,
                state: AggState::new(func),
            },
        }
    }

    fn update(&mut self, i: usize) -> Result<()> {
        match self {
            Acc::CountStar { n } => *n += 1,
            Acc::Count { col, n } => {
                if !col.is_null(i) {
                    *n += 1;
                }
            }
            Acc::SumI64 {
                col, vals, acc, n, ..
            } => {
                if !col.is_null(i) {
                    *acc = Some(match *acc {
                        None => vals[i],
                        Some(a) => a + vals[i],
                    });
                    *n += 1;
                }
            }
            Acc::SumF64 {
                col, vals, acc, n, ..
            } => {
                if !col.is_null(i) {
                    *acc = Some(match *acc {
                        None => vals[i],
                        Some(a) => a + vals[i],
                    });
                    *n += 1;
                }
            }
            Acc::MinMaxI64 {
                col,
                vals,
                cur,
                max,
            } => {
                if !col.is_null(i) {
                    let x = vals[i];
                    let better = match *cur {
                        None => true,
                        Some(c) => {
                            if *max {
                                x > c
                            } else {
                                x < c
                            }
                        }
                    };
                    if better {
                        *cur = Some(x);
                    }
                }
            }
            Acc::MinMaxF64 {
                col,
                vals,
                cur,
                max,
            } => {
                if !col.is_null(i) {
                    let x = vals[i];
                    let better = match *cur {
                        None => true,
                        Some(c) => {
                            let ord = Value::Float(x).total_cmp(&Value::Float(c));
                            if *max {
                                ord == std::cmp::Ordering::Greater
                            } else {
                                ord == std::cmp::Ordering::Less
                            }
                        }
                    };
                    if better {
                        *cur = Some(x);
                    }
                }
            }
            Acc::Generic { col, state } => state.update(&col.value(i))?,
        }
        Ok(())
    }

    fn finish(self) -> Value {
        match self {
            Acc::CountStar { n } | Acc::Count { n, .. } => Value::Int(n),
            Acc::SumI64 { acc, n, avg, .. } => {
                if avg {
                    match (acc, n) {
                        (None, _) | (_, 0) => Value::Null,
                        (Some(s), n) => Value::Float(s as f64 / n as f64),
                    }
                } else {
                    acc.map(Value::Int).unwrap_or(Value::Null)
                }
            }
            Acc::SumF64 { acc, n, avg, .. } => {
                if avg {
                    match (acc, n) {
                        (None, _) | (_, 0) => Value::Null,
                        (Some(s), n) => Value::Float(s / n as f64),
                    }
                } else {
                    acc.map(Value::Float).unwrap_or(Value::Null)
                }
            }
            Acc::MinMaxI64 { cur, .. } => cur.map(Value::Int).unwrap_or(Value::Null),
            Acc::MinMaxF64 { cur, .. } => cur.map(Value::Float).unwrap_or(Value::Null),
            Acc::Generic { state, .. } => state.finish(),
        }
    }
}

/// The single-partition columnar aggregation core. Group keys are
/// deduplicated through their precomputed hashes plus an exact `rows_eq`
/// confirmation against each group's representative (first) row; groups
/// finish in first-seen order, exactly like the row kernel.
fn group_partition_columnar(
    input: &Chunk,
    indices: &[usize],
    group_idx: &[usize],
    hashes: &[u64],
    aggs: &[AggSpec],
    agg_inputs: &[usize],
) -> Result<Vec<Row>> {
    let mut lookup: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut reps: Vec<usize> = Vec::new();
    let mut states: Vec<Vec<Acc>> = Vec::new();
    for &i in indices {
        let bucket = lookup.entry(hashes[i]).or_default();
        let found = bucket
            .iter()
            .copied()
            .find(|&s| input.rows_eq(i, group_idx, input, reps[s], group_idx));
        let slot = match found {
            Some(s) => s,
            None => {
                reps.push(i);
                states.push(
                    aggs.iter()
                        .zip(agg_inputs)
                        .map(|(a, &ii)| Acc::new(a.func, input, ii))
                        .collect(),
                );
                let s = states.len() - 1;
                bucket.push(s);
                s
            }
        };
        for acc in &mut states[slot] {
            acc.update(i)?;
        }
    }
    let mut rows = Vec::with_capacity(reps.len());
    for (&rep, states) in reps.iter().zip(states) {
        let mut out = input.project_row(rep, group_idx).to_vec();
        out.extend(states.into_iter().map(Acc::finish));
        rows.push(Row::new(out));
    }
    Ok(rows)
}

/// Execute a hash aggregation sequentially on the columnar image.
pub fn hash_group_by_columnar(
    input: &Table,
    group_idx: &[usize],
    aggs: &[AggSpec],
    agg_inputs: &[usize],
    out_schema: Arc<Schema>,
) -> Result<Table> {
    let chunk = input.chunk();
    let hashes = chunk.hash_rows(group_idx, DefaultHasher::new);
    let indices: Vec<usize> = (0..chunk.len()).collect();
    let rows = group_partition_columnar(&chunk, &indices, group_idx, &hashes, aggs, agg_inputs)?;
    Ok(Table::bag(out_schema, rows))
}

/// Execute a hash aggregation partitioned by the hash of the group key,
/// on the columnar image. Key hashes are computed once for both the
/// partitioning and the per-partition deduplication.
pub fn hash_group_by_columnar_partitioned(
    input: &Table,
    group_idx: &[usize],
    aggs: &[AggSpec],
    agg_inputs: &[usize],
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
    partitions: usize,
) -> Result<Table> {
    let chunk = input.chunk();
    let hashes = chunk.hash_rows(group_idx, DefaultHasher::new);
    let jobs = partition_indices(&hashes, partitions);
    let outs = pool.run_timed(
        "GroupBy",
        "op.GroupBy",
        "op.GroupBy.partition",
        jobs,
        |indices| group_partition_columnar(&chunk, &indices, group_idx, &hashes, aggs, agg_inputs),
    )?;
    Ok(Table::bag(out_schema, outs.into_iter().flatten().collect()))
}

// ---------------------------------------------------------------------------
// GPIVOT
// ---------------------------------------------------------------------------

/// How a row's dimension values resolve to an output group index.
enum TagDispatch<'a> {
    /// Single dictionary-encoded `by` column: the group of every distinct
    /// string is looked up once, then per row the dispatch is
    /// `map[code]` — an array index, no hashing, no `Value`.
    Dict {
        col: &'a Column,
        codes: &'a [u32],
        map: Vec<Option<usize>>,
        null_group: Option<usize>,
    },
    /// Single `Int64` `by` column: group per distinct integer via a small
    /// `i64` map (covers the TPC-H line-number pivots).
    Int {
        col: &'a Column,
        vals: &'a [i64],
        map: HashMap<i64, usize>,
        null_group: Option<usize>,
    },
    /// Anything else: materialize the dimension tuple and consult the
    /// layout's `Row`-keyed lookup, like the row kernel.
    Generic,
}

impl<'a> TagDispatch<'a> {
    fn resolve(chunk: &'a Chunk, layout: &PivotLayout) -> TagDispatch<'a> {
        let [bi] = layout.by_idx[..] else {
            return TagDispatch::Generic;
        };
        let col = chunk.column(bi);
        let null_group = layout
            .group_lookup
            .get(&Row::new(vec![Value::Null]))
            .copied();
        match col.data() {
            ColumnData::Dict { codes, dict } => {
                let map = dict
                    .iter()
                    .map(|s| {
                        layout
                            .group_lookup
                            .get(&Row::new(vec![Value::Str(Arc::clone(s))]))
                            .copied()
                    })
                    .collect();
                TagDispatch::Dict {
                    col,
                    codes,
                    map,
                    null_group,
                }
            }
            ColumnData::Int64(vals) => {
                // The Row-keyed lookup matches under Value equality, where
                // Int(5) == Float(5.0): register a group under its exact
                // integer representation when it has one.
                let mut map = HashMap::with_capacity(layout.group_lookup.len());
                for (tags, &gi) in &layout.group_lookup {
                    match &tags.values()[0] {
                        Value::Int(x) => {
                            map.insert(*x, gi);
                        }
                        Value::Float(f) => {
                            const TWO_POW_63: f64 = 9_223_372_036_854_775_808.0;
                            if *f == f.trunc() && *f >= -TWO_POW_63 && *f < TWO_POW_63 {
                                map.insert(*f as i64, gi);
                            }
                        }
                        _ => {}
                    }
                }
                TagDispatch::Int {
                    col,
                    vals,
                    map,
                    null_group,
                }
            }
            _ => TagDispatch::Generic,
        }
    }

    /// The output group of row `i`, if its dimension values are listed.
    fn group_of(&self, chunk: &Chunk, i: usize, layout: &PivotLayout) -> Option<usize> {
        match self {
            TagDispatch::Dict {
                col,
                codes,
                map,
                null_group,
            } => {
                if col.is_null(i) {
                    *null_group
                } else {
                    map[codes[i] as usize]
                }
            }
            TagDispatch::Int {
                col,
                vals,
                map,
                null_group,
            } => {
                if col.is_null(i) {
                    *null_group
                } else {
                    map.get(&vals[i]).copied()
                }
            }
            TagDispatch::Generic => layout
                .group_lookup
                .get(&chunk.project_row(i, &layout.by_idx))
                .copied(),
        }
    }
}

/// The single-partition columnar pivot core. `K` values deduplicate via
/// precomputed hashes + exact `rows_eq`; wide rows are emitted in
/// first-seen `K` order and the `(K, A1..Am)` key violation check fires on
/// exactly the same row the row kernel would reject.
fn pivot_partition_columnar(
    input: &Chunk,
    indices: &[usize],
    spec: &PivotSpec,
    layout: &PivotLayout,
    dispatch: &TagDispatch,
    khash: &[u64],
) -> Result<Vec<Row>> {
    let n_k = layout.k_idx.len();
    let n_on = layout.on_idx.len();
    let width = n_k + spec.groups.len() * n_on;

    let mut lookup: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut reps: Vec<usize> = Vec::new();
    let mut acc: Vec<Vec<Value>> = Vec::new();
    for &i in indices {
        let Some(gi) = dispatch.group_of(input, i, layout) else {
            continue; // dimension combination not among the output parameters
        };
        // All-⊥ measures contribute nothing observable (paper footnote 8);
        // same skip as the row kernel.
        if input.all_null(i, &layout.on_idx) {
            continue;
        }
        let bucket = lookup.entry(khash[i]).or_default();
        let found = bucket
            .iter()
            .copied()
            .find(|&s| input.rows_eq(i, &layout.k_idx, input, reps[s], &layout.k_idx));
        let slot = match found {
            Some(s) => s,
            None => {
                let mut v = Vec::with_capacity(width);
                v.extend(layout.k_idx.iter().map(|&k| input.value(i, k)));
                v.extend(std::iter::repeat_n(Value::Null, width - n_k));
                reps.push(i);
                acc.push(v);
                let s = acc.len() - 1;
                bucket.push(s);
                s
            }
        };
        let wide = &mut acc[slot];
        let base = n_k + gi * n_on;
        // (K, A1..Am) is a key: each cell is written at most once.
        if (0..n_on).any(|j| !wide[base + j].is_null()) {
            return Err(ExecError::DuplicatePivotCell {
                key: format!("{:?}", input.project_row(i, &layout.k_idx)),
                group: format!("{:?}", input.project_row(i, &layout.by_idx)),
            });
        }
        for (j, &oi) in layout.on_idx.iter().enumerate() {
            wide[base + j] = input.value(i, oi);
        }
    }

    Ok(acc.into_iter().map(Row::new).collect())
}

/// Execute a GPIVOT sequentially on the columnar image.
pub fn gpivot_columnar(input: &Table, spec: &PivotSpec, out_schema: Arc<Schema>) -> Result<Table> {
    let layout = PivotLayout::resolve(spec, input.schema())?;
    let chunk = input.chunk();
    let khash = chunk.hash_rows(&layout.k_idx, DefaultHasher::new);
    let dispatch = TagDispatch::resolve(&chunk, &layout);
    let indices: Vec<usize> = (0..chunk.len()).collect();
    let rows = pivot_partition_columnar(&chunk, &indices, spec, &layout, &dispatch, &khash)?;
    Ok(Table::bag(out_schema, rows))
}

/// Execute a GPIVOT partitioned by the hash of the `K` columns, on the
/// columnar image. `K` hashes are computed once for both the partitioning
/// and the per-partition deduplication; the tag dispatch table is resolved
/// once and shared by every partition.
pub fn gpivot_columnar_partitioned(
    input: &Table,
    spec: &PivotSpec,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
    partitions: usize,
) -> Result<Table> {
    let layout = PivotLayout::resolve(spec, input.schema())?;
    let chunk = input.chunk();
    let khash = chunk.hash_rows(&layout.k_idx, DefaultHasher::new);
    let dispatch = TagDispatch::resolve(&chunk, &layout);
    let jobs = partition_indices(&khash, partitions);
    let outs = pool.run_timed(
        "GPivot",
        "op.GPivot",
        "op.GPivot.partition",
        jobs,
        |indices| pivot_partition_columnar(&chunk, &indices, spec, &layout, &dispatch, &khash),
    )?;
    Ok(Table::bag(out_schema, outs.into_iter().flatten().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{hash_group_by, hash_group_by_partitioned};
    use crate::join::{hash_join, hash_join_partitioned};
    use crate::pivot::{gpivot, gpivot_partitioned};
    use gpivot_algebra::Expr;
    use gpivot_storage::{row, DataType};

    fn t(cols: &[(&str, DataType)], rows: Vec<Row>) -> Table {
        Table::bag(Arc::new(Schema::from_pairs(cols).unwrap()), rows)
    }

    /// A mixed-key left/right pair with NULL keys, duplicate keys, and an
    /// Int/Float key overlap (2⁵³ boundary) — the join equality traps.
    fn join_fixture() -> (Table, Table, Arc<Schema>) {
        const BIG: i64 = (1 << 53) + 1;
        let l = t(
            &[("a", DataType::Any), ("x", DataType::Str)],
            vec![
                row![1, "l1"],
                row![2, "l2"],
                Row::new(vec![Value::Null, Value::str("lnull")]),
                row![BIG, "lbig"],
                row![1, "l1b"],
            ],
        );
        let r = t(
            &[("b", DataType::Any), ("y", DataType::Str)],
            vec![
                row![1.0, "r1"],
                row![(1i64 << 53) as f64, "rbig_f"],
                Row::new(vec![Value::Null, Value::str("rnull")]),
                row![1, "r1b"],
                row![4, "r4"],
            ],
        );
        let os = Arc::new(
            Schema::from_pairs(&[
                ("a", DataType::Any),
                ("x", DataType::Str),
                ("b", DataType::Any),
                ("y", DataType::Str),
            ])
            .unwrap(),
        );
        (l, r, os)
    }

    #[test]
    fn columnar_join_is_bit_identical_to_row_join() {
        let (l, r, os) = join_fixture();
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::FullOuter] {
            let rows = hash_join(&l, &r, kind, &[0], &[0], None, os.clone()).unwrap();
            let cols = hash_join_columnar(&l, &r, kind, &[0], &[0], None, os.clone()).unwrap();
            assert_eq!(cols.rows(), rows.rows(), "{kind:?}");
        }
        // Int(2^53 + 1) must NOT match Float(2^53): exact comparison.
        let cols = hash_join_columnar(&l, &r, JoinKind::Inner, &[0], &[0], None, os).unwrap();
        assert!(!cols
            .iter()
            .any(|r| r[1] == Value::str("lbig") && !r[2].is_null()));
    }

    #[test]
    fn columnar_join_residual_and_cross_agree() {
        let (l, r, os) = join_fixture();
        let residual = Expr::col("y").eq(Expr::lit("r1b")).bind(&os).unwrap();
        let rows = hash_join(
            &l,
            &r,
            JoinKind::LeftOuter,
            &[0],
            &[0],
            Some(&residual),
            os.clone(),
        )
        .unwrap();
        let cols = hash_join_columnar(
            &l,
            &r,
            JoinKind::LeftOuter,
            &[0],
            &[0],
            Some(&residual),
            os.clone(),
        )
        .unwrap();
        assert_eq!(cols.rows(), rows.rows());
        // Empty `on`: cross join degenerates identically.
        let rows = hash_join(&l, &r, JoinKind::Inner, &[], &[], None, os.clone()).unwrap();
        let cols = hash_join_columnar(&l, &r, JoinKind::Inner, &[], &[], None, os).unwrap();
        assert_eq!(cols.rows(), rows.rows());
    }

    #[test]
    fn columnar_partitioned_join_matches_row_partitioned_join() {
        let n = 300;
        let l = t(
            &[("a", DataType::Int), ("x", DataType::Str)],
            (0..n).map(|i| row![i % 17, format!("l{i}")]).collect(),
        );
        let r = t(
            &[("b", DataType::Int), ("y", DataType::Str)],
            (0..n).map(|i| row![i % 13, format!("r{i}")]).collect(),
        );
        let os = Arc::new(
            Schema::from_pairs(&[
                ("a", DataType::Int),
                ("x", DataType::Str),
                ("b", DataType::Int),
                ("y", DataType::Str),
            ])
            .unwrap(),
        );
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::FullOuter] {
            let rows = hash_join_partitioned(
                &l,
                &r,
                kind,
                &[0],
                &[0],
                None,
                os.clone(),
                &WorkerPool::new(1),
                16,
            )
            .unwrap();
            for threads in [1, 2, 4] {
                let cols = hash_join_columnar_partitioned(
                    &l,
                    &r,
                    kind,
                    &[0],
                    &[0],
                    None,
                    os.clone(),
                    &WorkerPool::new(threads),
                    16,
                )
                .unwrap();
                assert_eq!(cols.rows(), rows.rows(), "{kind:?} threads={threads}");
            }
        }
    }

    /// Aggregation fixture with NULLs, a 2⁵³-boundary SUM/AVG, float
    /// measures with -0.0/NaN, and a Mixed (Int-and-Float) column that
    /// forces the generic fallback.
    fn group_fixture() -> Table {
        const BIG: i64 = 1 << 53;
        t(
            &[
                ("g", DataType::Str),
                ("i", DataType::Int),
                ("f", DataType::Float),
                ("m", DataType::Any),
            ],
            vec![
                row!["a", BIG, 1.5, 1],
                row!["a", 1, -0.0, 2.5],
                Row::new(vec![
                    Value::str("a"),
                    Value::Null,
                    Value::Float(0.0),
                    Value::Null,
                ]),
                row!["b", 5, f64::NAN, 7],
                row!["a", 1, 2.25, 4],
                row!["b", -3, 0.5, 1.5],
            ],
        )
    }

    fn group_out_schema() -> Arc<Schema> {
        Arc::new(
            Schema::from_pairs(&[
                ("g", DataType::Str),
                ("si", DataType::Int),
                ("ai", DataType::Float),
                ("sf", DataType::Float),
                ("lo", DataType::Float),
                ("hi", DataType::Float),
                ("ci", DataType::Int),
                ("cs", DataType::Int),
                ("sm", DataType::Any),
                ("lm", DataType::Any),
            ])
            .unwrap(),
        )
    }

    fn all_aggs() -> (Vec<AggSpec>, Vec<usize>) {
        (
            vec![
                AggSpec::sum("i", "si"),
                AggSpec::avg("i", "ai"),
                AggSpec::sum("f", "sf"),
                AggSpec::min("f", "lo"),
                AggSpec::max("f", "hi"),
                AggSpec::count("i", "ci"),
                AggSpec::count_star("cs"),
                AggSpec::sum("m", "sm"),
                AggSpec::min("m", "lm"),
            ],
            vec![1, 1, 2, 2, 2, 1, usize::MAX, 3, 3],
        )
    }

    #[test]
    fn columnar_group_by_is_bit_identical_to_row_group_by() {
        let input = group_fixture();
        let (aggs, inputs) = all_aggs();
        let rows = hash_group_by(&input, &[0], &aggs, &inputs, group_out_schema()).unwrap();
        let cols =
            hash_group_by_columnar(&input, &[0], &aggs, &inputs, group_out_schema()).unwrap();
        assert_eq!(cols.rows(), rows.rows());
        // AVG at the 2^53 boundary: the i64 accumulator must stay exact.
        let a = cols.iter().find(|r| r[0] == Value::str("a")).unwrap();
        assert_eq!(a[1], Value::Int((1i64 << 53) + 2));
        assert_eq!(a[2], Value::Float(((1i64 << 53) + 2) as f64 / 3.0));
    }

    #[test]
    fn columnar_global_aggregate_matches_row_kernel() {
        let input = group_fixture();
        let os = Arc::new(Schema::from_pairs(&[("n", DataType::Int)]).unwrap());
        let rows = hash_group_by(
            &input,
            &[],
            &[AggSpec::count_star("n")],
            &[usize::MAX],
            os.clone(),
        )
        .unwrap();
        let cols =
            hash_group_by_columnar(&input, &[], &[AggSpec::count_star("n")], &[usize::MAX], os)
                .unwrap();
        assert_eq!(cols.rows(), rows.rows());
    }

    #[test]
    fn columnar_avg_rejects_non_numeric_like_row_kernel() {
        let input = t(
            &[("g", DataType::Str), ("v", DataType::Str)],
            vec![row!["a", "not-a-number"]],
        );
        let os =
            Arc::new(Schema::from_pairs(&[("g", DataType::Str), ("a", DataType::Float)]).unwrap());
        let err =
            hash_group_by_columnar(&input, &[0], &[AggSpec::avg("v", "a")], &[1], os).unwrap_err();
        assert!(matches!(
            err,
            ExecError::AggregateTypeMismatch { func: "AVG", .. }
        ));
    }

    #[test]
    fn columnar_partitioned_group_by_matches_row_partitioned() {
        let input = t(
            &[("g", DataType::Int), ("v", DataType::Int)],
            (0..500).map(|i| row![i % 23, i]).collect(),
        );
        let aggs = [
            AggSpec::sum("v", "s"),
            AggSpec::count("v", "c"),
            AggSpec::min("v", "lo"),
        ];
        let os = Arc::new(
            Schema::from_pairs(&[
                ("g", DataType::Int),
                ("s", DataType::Int),
                ("c", DataType::Int),
                ("lo", DataType::Int),
            ])
            .unwrap(),
        );
        let rows = hash_group_by_partitioned(
            &input,
            &[0],
            &aggs,
            &[1, 1, 1],
            os.clone(),
            &WorkerPool::new(1),
            16,
        )
        .unwrap();
        for threads in [1, 2, 4] {
            let cols = hash_group_by_columnar_partitioned(
                &input,
                &[0],
                &aggs,
                &[1, 1, 1],
                os.clone(),
                &WorkerPool::new(threads),
                16,
            )
            .unwrap();
            assert_eq!(cols.rows(), rows.rows(), "threads={threads}");
        }
    }

    /// The ItemInfo pivot from Figure 1 — a dictionary-encoded `by` column,
    /// so the dispatch takes the dict-code fast path.
    fn iteminfo() -> (Table, PivotSpec, Arc<Schema>) {
        let schema = Arc::new(
            Schema::from_pairs(&[
                ("AuctionID", DataType::Int),
                ("Attribute", DataType::Str),
                ("Value", DataType::Str),
            ])
            .unwrap(),
        );
        let input = Table::bag(
            schema,
            vec![
                row![1, "Manufacturer", "Sony"],
                row![1, "Type", "TV"],
                row![2, "Manufacturer", "Panasonic"],
                row![3, "Type", "VCR"],
                row![1, "Category", "Electronics"],
            ],
        );
        let spec = PivotSpec::simple(
            "Attribute",
            "Value",
            vec![Value::str("Manufacturer"), Value::str("Type")],
        );
        let out = Arc::new(
            Schema::from_pairs(&[
                ("AuctionID", DataType::Int),
                ("Manufacturer**Value", DataType::Str),
                ("Type**Value", DataType::Str),
            ])
            .unwrap(),
        );
        (input, spec, out)
    }

    #[test]
    fn columnar_pivot_dict_dispatch_is_bit_identical() {
        let (input, spec, os) = iteminfo();
        let chunk = input.chunk();
        let layout = PivotLayout::resolve(&spec, input.schema()).unwrap();
        assert!(matches!(
            TagDispatch::resolve(&chunk, &layout),
            TagDispatch::Dict { .. }
        ));
        let rows = gpivot(&input, &spec, os.clone()).unwrap();
        let cols = gpivot_columnar(&input, &spec, os).unwrap();
        assert_eq!(cols.rows(), rows.rows());
    }

    #[test]
    fn columnar_pivot_int_dispatch_is_bit_identical() {
        // Line-number style pivot: integer `by` column (the TPC-H shape),
        // with a Float group value that must still match its Int rows.
        let schema = Arc::new(
            Schema::from_pairs(&[
                ("k", DataType::Int),
                ("line", DataType::Int),
                ("price", DataType::Float),
            ])
            .unwrap(),
        );
        let input = Table::bag(
            schema,
            vec![
                row![10, 1, 5.0],
                row![10, 2, 6.0],
                row![11, 1, 7.0],
                row![11, 3, 8.0], // line 3 unlisted
            ],
        );
        let spec = PivotSpec::simple("line", "price", vec![Value::Int(1), Value::Float(2.0)]);
        let os = Arc::new(
            Schema::from_pairs(&[
                ("k", DataType::Int),
                ("1**price", DataType::Float),
                ("2**price", DataType::Float),
            ])
            .unwrap(),
        );
        let chunk = input.chunk();
        let layout = PivotLayout::resolve(&spec, input.schema()).unwrap();
        assert!(matches!(
            TagDispatch::resolve(&chunk, &layout),
            TagDispatch::Int { .. }
        ));
        let rows = gpivot(&input, &spec, os.clone()).unwrap();
        let cols = gpivot_columnar(&input, &spec, os).unwrap();
        assert_eq!(cols.rows(), rows.rows());
        assert_eq!(cols.len(), 2);
        assert_eq!(
            cols.rows()[0][2],
            Value::Float(6.0),
            "Float(2.0) group caught Int(2) rows"
        );
    }

    #[test]
    fn columnar_pivot_detects_key_violation() {
        let (input, spec, os) = iteminfo();
        let dup = Table::bag(
            input.schema().clone(),
            vec![
                row![1, "Manufacturer", "Sony"],
                row![1, "Manufacturer", "JVC"],
            ],
        );
        assert!(matches!(
            gpivot_columnar(&dup, &spec, os.clone()),
            Err(ExecError::DuplicatePivotCell { .. })
        ));
        assert!(matches!(
            gpivot_columnar_partitioned(&dup, &spec, os, &WorkerPool::new(4), 16),
            Err(ExecError::DuplicatePivotCell { .. })
        ));
    }

    #[test]
    fn columnar_partitioned_pivot_matches_row_partitioned() {
        let schema = Arc::new(
            Schema::from_pairs(&[
                ("AuctionID", DataType::Int),
                ("Attribute", DataType::Str),
                ("Value", DataType::Str),
            ])
            .unwrap(),
        );
        let rows_in: Vec<Row> = (0..300)
            .flat_map(|id| {
                vec![
                    row![id, "Manufacturer", format!("m{}", id % 7)],
                    row![id, "Type", format!("t{}", id % 3)],
                ]
            })
            .collect();
        let input = Table::bag(schema, rows_in);
        let (_, spec, os) = iteminfo();
        let rows = gpivot_partitioned(&input, &spec, os.clone(), &WorkerPool::new(1), 16).unwrap();
        for threads in [1, 2, 4] {
            let cols = gpivot_columnar_partitioned(
                &input,
                &spec,
                os.clone(),
                &WorkerPool::new(threads),
                16,
            )
            .unwrap();
            assert_eq!(cols.rows(), rows.rows(), "threads={threads}");
        }
    }

    #[test]
    fn chunk_partitioning_matches_row_partitioning() {
        let (l, _, _) = join_fixture();
        let got = partition_by_hash_chunk(&l.chunk(), &[0, 1], 8);
        let expect = crate::pool::partition_by_hash(l.rows(), &[0, 1], 8);
        assert_eq!(got, expect);
    }
}
