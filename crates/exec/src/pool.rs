//! Dependency-free scoped-thread worker pool for intra-query parallelism.
//!
//! Modeled on the serve layer's epoch pool (round-robin buckets over
//! `std::thread::scope`, order-preserving result slots) but specialized
//! for operator kernels:
//!
//! * **Determinism** — results come back in job (partition) index order,
//!   and when several jobs fail the error of the lowest-indexed job wins,
//!   so a query's outcome never depends on thread scheduling.
//! * **Panic isolation** — every job runs under `catch_unwind`, on the
//!   inline path too, so a poisoned partition surfaces as a classified
//!   [`ExecError::WorkerPanic`] instead of hanging the query or killing
//!   the process.
//! * **Collector handoff** — the collector installed on the calling
//!   thread (see `tracing::current_collector`) is re-installed on each
//!   worker, so per-partition spans land in the same timing store as the
//!   rest of the query.
//!
//! [`partition_by_hash`] and [`morsels`] are the two job-shaping helpers
//! the parallel kernels share: hash partitioning keeps equal keys in the
//! same partition (joins, grouping, pivoting), morsels keep row order
//! (selection, projection).

use crate::error::{ExecError, Result};
use gpivot_storage::Row;
use std::hash::{Hash, Hasher};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// A scoped-thread pool of a fixed width. Threads are spawned per
/// [`WorkerPool::run`] call (scoped, so jobs may borrow from the caller)
/// and joined before it returns; the pool itself is just configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool { threads: 1 }
    }
}

impl WorkerPool {
    /// A pool that runs jobs on `threads` workers (clamped to ≥ 1).
    /// `threads == 1` runs every job inline on the calling thread.
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// Worker width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` over `jobs`, returning outputs in job order regardless of
    /// which worker ran which job. `op` labels the operator in
    /// [`ExecError::WorkerPanic`] if a job panics. If several jobs fail,
    /// the lowest-indexed job's error is returned (deterministic).
    pub fn run<T, R, F>(&self, op: &'static str, jobs: Vec<T>, f: F) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> Result<R> + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(n);
        let mut slots: Vec<Option<Result<R>>> = std::iter::repeat_with(|| None).take(n).collect();

        if workers <= 1 {
            // Inline path: same job order, same panic isolation, no threads.
            for (i, job) in jobs.into_iter().enumerate() {
                slots[i] = Some(run_caught(op, &f, job));
            }
        } else {
            let collector = tracing::current_collector();
            let mut buckets: Vec<Vec<(usize, T)>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, job) in jobs.into_iter().enumerate() {
                buckets[i % workers].push((i, job));
            }
            std::thread::scope(|s| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        let collector = collector.clone();
                        let f = &f;
                        s.spawn(move || {
                            let _guard = collector.map(tracing::push_collector);
                            bucket
                                .into_iter()
                                .map(|(i, job)| (i, run_caught(op, f, job)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    // Jobs are individually caught; a bucket-level join
                    // error would mean a panic outside the isolation
                    // boundary. Leave its slots empty and classify below.
                    if let Ok(pairs) = h.join() {
                        for (i, r) in pairs {
                            slots[i] = Some(r);
                        }
                    }
                }
            });
        }

        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot {
                Some(Ok(r)) => out.push(r),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(ExecError::WorkerPanic {
                        op,
                        message: "worker died outside panic isolation".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Like [`WorkerPool::run`], but times each job and reconciles the
    /// durations with the span store: every job reports a
    /// `partition_span` sub-span from its worker, and the parent `span`
    /// records the **max** partition duration — the operator's critical
    /// path — on the calling thread, so per-operator self-times stay
    /// comparable between the sequential and parallel kernels.
    pub fn run_timed<T, R, F>(
        &self,
        op: &'static str,
        span: &'static str,
        partition_span: &'static str,
        jobs: Vec<T>,
        f: F,
    ) -> Result<Vec<R>>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> Result<R> + Sync,
    {
        let timed = self.run(op, jobs, |job| {
            let start = Instant::now();
            let r = f(job)?;
            let elapsed = start.elapsed();
            tracing::record(partition_span, elapsed);
            Ok((r, elapsed))
        })?;
        let critical_path = timed
            .iter()
            .map(|(_, d)| *d)
            .max()
            .unwrap_or(Duration::ZERO);
        tracing::record(span, critical_path);
        Ok(timed.into_iter().map(|(r, _)| r).collect())
    }
}

fn run_caught<T, R, F>(op: &'static str, f: &F, job: T) -> Result<R>
where
    F: Fn(T) -> Result<R>,
{
    match catch_unwind(AssertUnwindSafe(|| f(job))) {
        Ok(r) => r,
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(ExecError::WorkerPanic { op, message })
        }
    }
}

/// Partition row indices by the hash of the `key_idx` columns. Equal key
/// tuples always land in the same partition, so hash joins, grouping and
/// pivoting are correct per-partition with no cross-partition merge. Uses
/// [`std::collections::hash_map::DefaultHasher`] with its fixed default
/// keys — NOT a `RandomState` — so the partitioning (and therefore the
/// merged output order) is identical across processes and thread counts.
///
/// With an empty `key_idx` (cross join, global aggregate) every row hashes
/// identically and the whole input degenerates to one partition, which is
/// exactly the sequential kernel.
pub fn partition_by_hash(rows: &[Row], key_idx: &[usize], partitions: usize) -> Vec<Vec<usize>> {
    let partitions = partitions.max(1);
    let mut parts: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for (i, row) in rows.iter().enumerate() {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for &k in key_idx {
            row[k].hash(&mut h);
        }
        parts[(h.finish() % partitions as u64) as usize].push(i);
    }
    parts
}

/// Split `0..n` into contiguous ranges of at most `morsel_rows` rows.
/// Concatenating per-morsel outputs in morsel order reproduces the
/// sequential row order exactly.
pub fn morsels(n: usize, morsel_rows: usize) -> Vec<Range<usize>> {
    let step = morsel_rows.max(1);
    (0..n).step_by(step).map(|s| s..(s + step).min(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::row;
    use std::sync::Arc;

    #[test]
    fn run_preserves_job_order_across_widths() {
        let jobs: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = jobs.iter().map(|i| i * 2).collect();
        for threads in [1, 2, 8] {
            let out = WorkerPool::new(threads)
                .run("Test", jobs.clone(), |i| Ok(i * 2))
                .unwrap();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn panic_in_job_is_isolated_and_classified() {
        for threads in [1, 4] {
            let err = WorkerPool::new(threads)
                .run("GPivot", vec![0, 1, 2, 3], |i| {
                    if i == 2 {
                        panic!("poisoned partition {i}");
                    }
                    Ok(i)
                })
                .unwrap_err();
            match err {
                ExecError::WorkerPanic { op, message } => {
                    assert_eq!(op, "GPivot");
                    assert!(message.contains("poisoned partition 2"), "{message}");
                }
                other => panic!("expected WorkerPanic, got {other:?}"),
            }
        }
    }

    #[test]
    fn lowest_indexed_error_wins() {
        let err = WorkerPool::new(4)
            .run("Join", (0..16).collect::<Vec<usize>>(), |i| {
                if i >= 3 {
                    Err(ExecError::WorkerPanic {
                        op: "Join",
                        message: format!("job {i}"),
                    })
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert!(matches!(
            err,
            ExecError::WorkerPanic { ref message, .. } if message == "job 3"
        ));
    }

    #[test]
    fn run_timed_records_partition_spans_and_critical_path() {
        let sub = tracing::TimingSubscriber::shared();
        tracing::with_collector(sub.clone(), || {
            WorkerPool::new(2)
                .run_timed("Join", "op.Join", "op.Join.partition", vec![1u64, 2, 3], Ok)
                .unwrap();
        });
        assert_eq!(sub.histogram("op.Join.partition").unwrap().count(), 3);
        let parent = sub.histogram("op.Join").unwrap();
        assert_eq!(parent.count(), 1);
        // The parent self-time is the slowest partition, so it can never
        // exceed the partition family's max.
        assert!(parent.max() <= sub.histogram("op.Join.partition").unwrap().max());
    }

    #[test]
    fn partition_by_hash_is_stable_and_covers_all_rows() {
        let rows = vec![row![1, "a"], row![2, "b"], row![1, "c"], row![3, "d"]];
        let parts = partition_by_hash(&rows, &[0], 4);
        let a = partition_by_hash(&rows, &[0], 4);
        assert_eq!(parts, a, "fixed-key hashing must be reproducible");
        let mut all: Vec<usize> = parts.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        // Equal keys co-locate.
        let parts = partition_by_hash(&rows, &[0], 4);
        let find = |i: usize| parts.iter().position(|p| p.contains(&i)).unwrap();
        assert_eq!(find(0), find(2));
    }

    #[test]
    fn empty_key_degenerates_to_one_partition() {
        let rows = vec![row![1], row![2], row![3]];
        let parts = partition_by_hash(&rows, &[], 8);
        let nonempty: Vec<_> = parts.iter().filter(|p| !p.is_empty()).collect();
        assert_eq!(nonempty.len(), 1);
        assert_eq!(nonempty[0].len(), 3);
    }

    #[test]
    fn morsels_tile_the_range_in_order() {
        assert_eq!(morsels(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(morsels(10, 4), vec![0..4, 4..8, 8..10]);
        let flat: Vec<usize> = morsels(1000, 7).into_iter().flatten().collect();
        assert_eq!(flat, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn collector_handoff_reaches_worker_threads() {
        let sub = tracing::TimingSubscriber::shared();
        let pool = WorkerPool::new(4);
        tracing::with_collector(sub.clone(), || {
            pool.run("Test", (0..8).collect::<Vec<usize>>(), |i| {
                tracing::record("op.Test.partition", std::time::Duration::from_micros(1));
                Ok(i)
            })
            .unwrap();
        });
        assert_eq!(sub.histogram("op.Test.partition").unwrap().count(), 8);
        let _ = Arc::strong_count(&sub);
    }
}
