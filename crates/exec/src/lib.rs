//! # gpivot-exec
//!
//! A batch (operator-at-a-time) executor for GPIVOT algebra plans.
//!
//! The executor evaluates a [`gpivot_algebra::Plan`] against any
//! [`TableProvider`] — usually a [`gpivot_storage::Catalog`], or an
//! [`Overlay`] that the maintenance engine uses to make delta tables and
//! hypothetical post-update states visible under temporary names without
//! copying the base catalog.
//!
//! Operator implementations:
//!
//! * selection / projection — bound-expression evaluation ([`engine`]);
//! * joins — hash equi-join with inner / left-outer / full-outer variants
//!   and residual predicates ([`join`]);
//! * grouping — hash aggregation with SQL NULL semantics ([`group`]);
//! * GPIVOT / GUNPIVOT — hash-based pivoting ([`pivot`]); the executor
//!   *enforces* the paper's applicability condition that `(K, A1..Am)` is a
//!   key by rejecting duplicate pivot cells at runtime;
//! * bag union / difference ([`engine`]).
//!
//! Large inputs take hash-partitioned (Join/GroupBy/GPivot) or
//! morsel-parallel (Select/Project) kernels on a scoped-thread
//! [`WorkerPool`]; results are bit-identical across thread counts
//! because the partitioning is data-dependent only and partition outputs
//! merge in partition-index order ([`pool`], [`engine`]).
//!
//! Join, GroupBy, and GPIVOT each exist in two interchangeable forms: the
//! row-at-a-time reference kernels above and vectorized kernels
//! ([`columnar`]) that run over a table's cached [`gpivot_storage::Chunk`]
//! (typed column vectors, dictionary codes, validity bitmaps). The
//! columnar kernels are bit-identical to the row kernels by construction
//! and are selected by default ([`ExecOptions::columnar`]).

// Executor errors surface as `ExecError` to the maintenance layer; a
// panic here would take down a refresh epoch. `unwrap`/`expect` are
// denied outside unit tests (the same discipline as gpivot-serve).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod columnar;
pub mod engine;
pub mod error;
pub mod group;
pub mod join;
pub mod pivot;
pub mod pool;
pub mod provider;

pub use engine::{ExecContext, ExecOptions, ExecTrace, Executor, TraceEntry};
pub use error::{ExecError, Result};
pub use pool::WorkerPool;
pub use provider::{Overlay, TableProvider};
