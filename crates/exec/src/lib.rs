//! # gpivot-exec
//!
//! A batch (operator-at-a-time) executor for GPIVOT algebra plans.
//!
//! The executor evaluates a [`gpivot_algebra::Plan`] against any
//! [`TableProvider`] — usually a [`gpivot_storage::Catalog`], or an
//! [`Overlay`] that the maintenance engine uses to make delta tables and
//! hypothetical post-update states visible under temporary names without
//! copying the base catalog.
//!
//! Operator implementations:
//!
//! * selection / projection — bound-expression evaluation ([`engine`]);
//! * joins — hash equi-join with inner / left-outer / full-outer variants
//!   and residual predicates ([`join`]);
//! * grouping — hash aggregation with SQL NULL semantics ([`group`]);
//! * GPIVOT / GUNPIVOT — hash-based pivoting ([`pivot`]); the executor
//!   *enforces* the paper's applicability condition that `(K, A1..Am)` is a
//!   key by rejecting duplicate pivot cells at runtime;
//! * bag union / difference ([`engine`]).

pub mod engine;
pub mod error;
pub mod group;
pub mod join;
pub mod pivot;
pub mod provider;

pub use engine::{ExecTrace, Executor, TraceEntry};
pub use error::{ExecError, Result};
pub use provider::{Overlay, TableProvider};
