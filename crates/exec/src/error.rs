//! Executor errors.

use gpivot_algebra::AlgebraError;
use gpivot_storage::StorageError;
use std::fmt;

/// Errors raised during plan execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Schema/validation error from the algebra layer.
    Algebra(AlgebraError),
    /// Storage error (unknown table, key violation, ...).
    Storage(StorageError),
    /// Two source rows mapped to the same pivot cell — the input violated
    /// the `(K, A1..Am)` key requirement of GPIVOT (§2.1 of the paper).
    DuplicatePivotCell { key: String, group: String },
    /// A numeric aggregate received a non-null value it cannot interpret
    /// numerically (e.g. `AVG` over a string column). NULLs are skipped by
    /// every aggregate; anything else must be numeric — silently dropping
    /// it would make AVG disagree with SUM/COUNT over the same column.
    AggregateTypeMismatch {
        /// The aggregate function (`AVG`, ...).
        func: &'static str,
        /// Rendering of the offending input value.
        value: String,
    },
    /// A panic escaped a partition job inside a parallel operator kernel.
    /// The worker pool isolates it with `catch_unwind`, so one poisoned
    /// partition fails the query with this (transient-classified) error
    /// instead of hanging the epoch or aborting the process.
    WorkerPanic {
        /// The operator whose partition panicked (`Join`, `GPivot`, ...).
        op: &'static str,
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Algebra(e) => write!(f, "algebra error: {e}"),
            ExecError::Storage(e) => write!(f, "storage error: {e}"),
            ExecError::DuplicatePivotCell { key, group } => write!(
                f,
                "duplicate pivot cell for key {key}, group {group}: input violates the (K, A1..Am) key requirement"
            ),
            ExecError::AggregateTypeMismatch { func, value } => write!(
                f,
                "{func} over a non-numeric non-null value {value}: only NULLs are skipped by aggregates"
            ),
            ExecError::WorkerPanic { op, message } => {
                write!(f, "panic in a {op} partition worker: {message}")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Algebra(e) => Some(e),
            ExecError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for ExecError {
    fn from(e: AlgebraError) -> Self {
        ExecError::Algebra(e)
    }
}

impl From<StorageError> for ExecError {
    fn from(e: StorageError) -> Self {
        ExecError::Storage(e)
    }
}

/// Result alias for execution.
pub type Result<T> = std::result::Result<T, ExecError>;
