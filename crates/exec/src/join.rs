//! Hash equi-joins: inner, left-outer, full-outer, with residual predicates.
//!
//! NULL join keys never match (SQL semantics); for outer joins, a row
//! counts as *matched* only if some probe pair also passes the residual
//! predicate — unmatched rows are padded with `⊥` on the other side, which
//! is exactly what the paper's outer-join-based pivot definition and update
//! propagation rules (Fig. 23: "left outer-join between delta and view")
//! expect.

use crate::error::Result;
use crate::pool::{partition_by_hash, WorkerPool};
use gpivot_algebra::{BoundExpr, JoinKind};
use gpivot_storage::{Row, Schema, Table};
use std::collections::HashMap;
use std::sync::Arc;

/// Join the rows of `left` at positions `lidx` against the rows of
/// `right` at positions `ridx` — the single-partition core both the
/// sequential and the hash-partitioned kernels run. Output order is
/// fully determined by the index lists: matches in `lidx` order (build
/// candidates in `ridx` order), then, for full-outer, unmatched right
/// rows in `ridx` order.
#[allow(clippy::too_many_arguments)]
fn join_partition(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    left_on: &[usize],
    right_on: &[usize],
    residual: Option<&BoundExpr>,
    lidx: &[usize],
    ridx: &[usize],
) -> Vec<Row> {
    // Build side: right.
    let mut build: HashMap<Row, Vec<usize>> = HashMap::new();
    for &ri in ridx {
        let row = &right.rows()[ri];
        let key = row.project(right_on);
        if key.iter().any(|v| v.is_null()) {
            continue; // NULL keys never join
        }
        build.entry(key).or_default().push(ri);
    }

    let mut right_matched = vec![
        false;
        if kind == JoinKind::FullOuter {
            right.len()
        } else {
            0
        }
    ];
    let mut out: Vec<Row> = Vec::new();
    let n_right = right.schema().arity();
    let n_left = left.schema().arity();

    for &li in lidx {
        let lrow = &left.rows()[li];
        let key = lrow.project(left_on);
        let mut matched = false;
        if !key.iter().any(|v| v.is_null()) {
            if let Some(candidates) = build.get(&key) {
                for &ri in candidates {
                    let joined = lrow.concat(&right.rows()[ri]);
                    let pass = residual.map(|p| p.holds(&joined)).unwrap_or(true);
                    if pass {
                        matched = true;
                        if kind == JoinKind::FullOuter {
                            right_matched[ri] = true;
                        }
                        out.push(joined);
                    }
                }
            }
        }
        if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            out.push(lrow.pad_nulls(n_right));
        }
    }

    if kind == JoinKind::FullOuter {
        for &ri in ridx {
            if !right_matched[ri] {
                let mut v = vec![gpivot_storage::Value::Null; n_left];
                v.extend(right.rows()[ri].iter().cloned());
                out.push(Row::new(v));
            }
        }
    }

    out
}

/// Execute a hash equi-join sequentially.
pub fn hash_join(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    left_on: &[usize],
    right_on: &[usize],
    residual: Option<&BoundExpr>,
    out_schema: Arc<Schema>,
) -> Result<Table> {
    let lidx: Vec<usize> = (0..left.len()).collect();
    let ridx: Vec<usize> = (0..right.len()).collect();
    let out = join_partition(left, right, kind, left_on, right_on, residual, &lidx, &ridx);
    Ok(Table::bag(out_schema, out))
}

/// Execute a hash equi-join partitioned by the hash of the join keys.
///
/// Both sides are split into `partitions` buckets with the same hash
/// function, so equal keys always meet in the same bucket and each bucket
/// is an independent join: matching, residual filtering and outer padding
/// are all per-bucket-correct. Bucket outputs are concatenated in
/// partition-index order — the partitioning depends only on the data (a
/// fixed-key hash), never on the thread count, so the result is
/// bit-identical across pool widths.
///
/// Note this kernel's row *order* differs from [`hash_join`]'s (grouped by
/// partition rather than global left order); the engine picks a kernel by
/// input size alone, so any given query always takes the same path.
#[allow(clippy::too_many_arguments)]
pub fn hash_join_partitioned(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    left_on: &[usize],
    right_on: &[usize],
    residual: Option<&BoundExpr>,
    out_schema: Arc<Schema>,
    pool: &WorkerPool,
    partitions: usize,
) -> Result<Table> {
    let lparts = partition_by_hash(left.rows(), left_on, partitions);
    let rparts = partition_by_hash(right.rows(), right_on, partitions);
    let jobs: Vec<(Vec<usize>, Vec<usize>)> = lparts.into_iter().zip(rparts).collect();
    let outs = pool.run_timed(
        "Join",
        "op.Join",
        "op.Join.partition",
        jobs,
        |(lidx, ridx)| {
            Ok(join_partition(
                left, right, kind, left_on, right_on, residual, &lidx, &ridx,
            ))
        },
    )?;
    Ok(Table::bag(out_schema, outs.into_iter().flatten().collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::Expr;
    use gpivot_storage::{row, DataType, Value};

    fn t(cols: &[(&str, DataType)], rows: Vec<Row>) -> Table {
        Table::bag(Arc::new(Schema::from_pairs(cols).unwrap()), rows)
    }

    fn out_schema() -> Arc<Schema> {
        Arc::new(
            Schema::from_pairs(&[
                ("a", DataType::Int),
                ("x", DataType::Str),
                ("b", DataType::Int),
                ("y", DataType::Str),
            ])
            .unwrap(),
        )
    }

    fn left() -> Table {
        t(
            &[("a", DataType::Int), ("x", DataType::Str)],
            vec![row![1, "l1"], row![2, "l2"], row![3, "l3"]],
        )
    }

    fn right() -> Table {
        t(
            &[("b", DataType::Int), ("y", DataType::Str)],
            vec![row![1, "r1"], row![1, "r1b"], row![4, "r4"]],
        )
    }

    #[test]
    fn inner_join_matches_all_pairs() {
        let out = hash_join(
            &left(),
            &right(),
            JoinKind::Inner,
            &[0],
            &[0],
            None,
            out_schema(),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let rows = out.sorted_rows();
        assert_eq!(rows[0], row![1, "l1", 1, "r1"]);
        assert_eq!(rows[1], row![1, "l1", 1, "r1b"]);
    }

    #[test]
    fn left_outer_pads_unmatched() {
        let out = hash_join(
            &left(),
            &right(),
            JoinKind::LeftOuter,
            &[0],
            &[0],
            None,
            out_schema(),
        )
        .unwrap();
        assert_eq!(out.len(), 4); // 2 matches + rows 2,3 padded
        let padded: Vec<_> = out.iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(padded.len(), 2);
    }

    #[test]
    fn full_outer_pads_both_sides() {
        let out = hash_join(
            &left(),
            &right(),
            JoinKind::FullOuter,
            &[0],
            &[0],
            None,
            out_schema(),
        )
        .unwrap();
        // 2 matches + 2 unmatched left + 1 unmatched right
        assert_eq!(out.len(), 5);
        let right_pad: Vec<_> = out.iter().filter(|r| r[0].is_null()).collect();
        assert_eq!(right_pad.len(), 1);
        assert_eq!(right_pad[0][3], Value::str("r4"));
    }

    #[test]
    fn null_keys_never_match() {
        let l = t(
            &[("a", DataType::Int), ("x", DataType::Str)],
            vec![Row::new(vec![Value::Null, Value::str("l")])],
        );
        let out = hash_join(
            &l,
            &right(),
            JoinKind::Inner,
            &[0],
            &[0],
            None,
            out_schema(),
        )
        .unwrap();
        assert!(out.is_empty());
        // ...but a left-outer join still keeps the row.
        let out = hash_join(
            &l,
            &right(),
            JoinKind::LeftOuter,
            &[0],
            &[0],
            None,
            out_schema(),
        )
        .unwrap();
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn residual_limits_matches_and_affects_outer() {
        // join on a=b with residual y='r1b'
        let residual = Expr::col("y")
            .eq(Expr::lit("r1b"))
            .bind(&out_schema())
            .unwrap();
        let out = hash_join(
            &left(),
            &right(),
            JoinKind::LeftOuter,
            &[0],
            &[0],
            Some(&residual),
            out_schema(),
        )
        .unwrap();
        // key 1 matches only r1b; keys 2,3 padded
        assert_eq!(out.len(), 3);
        let matched: Vec<_> = out.iter().filter(|r| !r[2].is_null()).collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0][3], Value::str("r1b"));
    }

    #[test]
    fn partitioned_join_agrees_with_sequential_and_is_thread_invariant() {
        let n = 200;
        let l = t(
            &[("a", DataType::Int), ("x", DataType::Str)],
            (0..n).map(|i| row![i % 17, format!("l{i}")]).collect(),
        );
        let r = t(
            &[("b", DataType::Int), ("y", DataType::Str)],
            (0..n).map(|i| row![i % 13, format!("r{i}")]).collect(),
        );
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::FullOuter] {
            let seq = hash_join(&l, &r, kind, &[0], &[0], None, out_schema()).unwrap();
            let mut orders = Vec::new();
            for threads in [1, 2, 8] {
                let par = hash_join_partitioned(
                    &l,
                    &r,
                    kind,
                    &[0],
                    &[0],
                    None,
                    out_schema(),
                    &crate::pool::WorkerPool::new(threads),
                    16,
                )
                .unwrap();
                assert!(par.bag_eq(&seq), "{kind:?} threads={threads}");
                orders.push(par.rows().to_vec());
            }
            // Bit-identical ordering across pool widths.
            assert_eq!(orders[0], orders[1], "{kind:?}");
            assert_eq!(orders[1], orders[2], "{kind:?}");
        }
    }

    #[test]
    fn empty_on_is_cross_join() {
        let out = hash_join(
            &left(),
            &right(),
            JoinKind::Inner,
            &[],
            &[],
            None,
            out_schema(),
        )
        .unwrap();
        assert_eq!(out.len(), 9);
    }
}
