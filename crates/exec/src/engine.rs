//! The plan dispatcher: recursively evaluates a [`Plan`] bottom-up.
//!
//! An [`Executor`] is configured once — `Executor::new().with_threads(4)`
//! — and carries an [`ExecContext`]: the worker pool, partition counts and
//! morsel size every operator kernel consults. [`Executor::run`] returns
//! just the result table; [`Executor::run_traced`] additionally returns an
//! [`ExecTrace`] — a per-operator row-count profile rendered like
//! `EXPLAIN ANALYZE`, which the examples use to show where maintenance
//! plans spend their rows.
//!
//! **Determinism.** Results are bit-identical across thread counts: the
//! choice between the sequential and hash-partitioned kernel of an
//! operator depends only on the input size ([`ExecOptions::parallel_threshold`]),
//! the partition count is fixed configuration ([`ExecOptions::partitions`],
//! never derived from the thread count), partitioning uses a fixed-key
//! hash, and partition outputs merge in partition-index order. Threads
//! only change which worker runs which partition — see DESIGN.md
//! §"Parallel execution".

use crate::columnar::{
    gpivot_columnar, gpivot_columnar_partitioned, hash_group_by_columnar,
    hash_group_by_columnar_partitioned, hash_join_columnar, hash_join_columnar_partitioned,
};
use crate::error::Result;
use crate::group::{hash_group_by, hash_group_by_partitioned};
use crate::join::{hash_join, hash_join_partitioned};
use crate::pivot::{gpivot, gpivot_partitioned, gunpivot};
use crate::pool::{morsels, WorkerPool};
use crate::provider::{ProviderSchemas, TableProvider};
use gpivot_algebra::Plan;
use gpivot_storage::{Row, Table};
use std::collections::HashMap;

/// One operator's entry in an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Nesting depth in the plan tree.
    pub depth: usize,
    /// Operator label (`op_name`).
    pub op: &'static str,
    /// Rows produced by this operator.
    pub rows_out: usize,
}

/// An `EXPLAIN ANALYZE`-style profile: operators in plan order with their
/// output cardinalities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    pub entries: Vec<TraceEntry>,
}

impl ExecTrace {
    /// Total rows produced across all operators (a proxy for work done).
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows_out).sum()
    }

    /// Render indented, one operator per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{}{} → {} rows",
                "  ".repeat(e.depth),
                e.op,
                e.rows_out
            );
        }
        out
    }
}

impl std::fmt::Display for ExecTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Tuning knobs for one [`Executor`] / [`ExecContext`].
///
/// The default thread count honors the `GPIVOT_EXEC_THREADS` environment
/// variable (falling back to 1), so the CI thread matrix and deployments
/// can widen every executor in the process without touching call sites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOptions {
    /// Worker threads for partitioned kernels (1 = run partitions inline).
    pub threads: usize,
    /// Rows per morsel for the order-preserving Select/Project split.
    pub morsel_rows: usize,
    /// Fixed hash-partition count for Join/GroupBy/GPivot. Deliberately
    /// **not** derived from `threads`: the partitioning (and with it the
    /// merged output order) must be identical across thread counts.
    pub partitions: usize,
    /// Inputs with fewer rows than this stay on the sequential kernels.
    /// Data-dependent only — never compared against the thread count.
    pub parallel_threshold: usize,
    /// Run Join/GroupBy/GPivot on the vectorized [`crate::columnar`]
    /// kernels over each table's cached columnar [`gpivot_storage::Chunk`]
    /// (the default) instead of the row-at-a-time reference kernels.
    /// Results are bit-identical either way; the default honors the
    /// `GPIVOT_EXEC_COLUMNAR` environment variable (`0`/`false`/`off`
    /// select the row kernels).
    pub columnar: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        let threads = std::env::var("GPIVOT_EXEC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1);
        let columnar = std::env::var("GPIVOT_EXEC_COLUMNAR")
            .map(|s| {
                let s = s.trim().to_ascii_lowercase();
                !matches!(s.as_str(), "0" | "false" | "off")
            })
            .unwrap_or(true);
        ExecOptions {
            threads,
            morsel_rows: 4096,
            partitions: 16,
            parallel_threshold: 1024,
            columnar,
        }
    }
}

/// Everything a plan evaluation carries with it: the resolved
/// [`ExecOptions`] and the [`WorkerPool`] the partitioned kernels submit
/// jobs to. The pool re-installs the calling thread's tracing collector
/// on every worker, so per-partition spans land in the caller's store.
#[derive(Debug, Clone)]
pub struct ExecContext {
    opts: ExecOptions,
    pool: WorkerPool,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext::new(ExecOptions::default())
    }
}

impl ExecContext {
    /// Build a context from options (the pool width follows
    /// `opts.threads`).
    pub fn new(opts: ExecOptions) -> Self {
        let pool = WorkerPool::new(opts.threads);
        ExecContext { opts, pool }
    }

    /// The resolved options.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// The worker pool partitioned kernels run on.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Should an operator over `input_rows` rows take the partitioned
    /// kernel? Purely data-dependent (see the determinism note on
    /// [`ExecOptions::parallel_threshold`]).
    fn partitioned(&self, input_rows: usize) -> bool {
        self.opts.partitions > 1 && input_rows >= self.opts.parallel_threshold
    }
}

/// Batch plan executor: an [`ExecContext`] plus the recursive dispatcher.
/// All data comes from the provider; the executor itself holds only
/// configuration, so it is cheap to clone and share.
#[derive(Debug, Clone, Default)]
pub struct Executor {
    ctx: ExecContext,
}

impl Executor {
    /// An executor with default options (thread count from
    /// `GPIVOT_EXEC_THREADS`, else 1).
    pub fn new() -> Self {
        Executor::default()
    }

    /// An executor with explicit options.
    pub fn with_options(opts: ExecOptions) -> Self {
        Executor {
            ctx: ExecContext::new(opts),
        }
    }

    /// Set the worker-thread count (1 = inline).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.ctx.opts.threads = threads.max(1);
        self.ctx.pool = WorkerPool::new(self.ctx.opts.threads);
        self
    }

    /// Set the Select/Project morsel size.
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.ctx.opts.morsel_rows = morsel_rows.max(1);
        self
    }

    /// Set the fixed hash-partition count.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.ctx.opts.partitions = partitions.max(1);
        self
    }

    /// Set the minimum input size for the partitioned kernels.
    pub fn with_parallel_threshold(mut self, rows: usize) -> Self {
        self.ctx.opts.parallel_threshold = rows;
        self
    }

    /// Choose between the vectorized columnar kernels (`true`, default)
    /// and the row-at-a-time reference kernels (`false`) for
    /// Join/GroupBy/GPivot. Output is bit-identical either way.
    pub fn with_columnar(mut self, columnar: bool) -> Self {
        self.ctx.opts.columnar = columnar;
        self
    }

    /// The execution context this executor evaluates plans under.
    pub fn context(&self) -> &ExecContext {
        &self.ctx
    }

    /// Evaluate `plan` against `provider`, returning the result as a bag
    /// table whose schema (including key metadata) comes from schema
    /// inference.
    pub fn run<P: TableProvider>(&self, plan: &Plan, provider: &P) -> Result<Table> {
        let mut trace = None;
        self.eval(plan, provider, 0, &mut trace)
    }

    /// Like [`Executor::run`], also returning the per-operator trace.
    pub fn run_traced<P: TableProvider>(
        &self,
        plan: &Plan,
        provider: &P,
    ) -> Result<(Table, ExecTrace)> {
        let mut trace = Some(ExecTrace::default());
        let table = self.eval(plan, provider, 0, &mut trace)?;
        let mut trace = trace.unwrap_or_default();
        // Entries were pushed post-order (children first); reversing puts
        // each parent before its children (for binary operators the right
        // subtree then lists before the left one).
        trace.entries.reverse();
        Ok((table, trace))
    }

    fn eval<P: TableProvider>(
        &self,
        plan: &Plan,
        provider: &P,
        depth: usize,
        trace: &mut Option<ExecTrace>,
    ) -> Result<Table> {
        let schemas = ProviderSchemas(provider);
        let ctx = &self.ctx;
        // Each operator's kernel work runs under an `op.*` span entered
        // only after its children have been evaluated, so the recorded
        // durations are per-operator self-times, not inclusive subtree
        // times (see DESIGN.md §"Observability"). Partitioned kernels skip
        // the RAII span and instead record `op.*` as the max partition
        // duration plus an `op.*.partition` sub-span per partition — the
        // self-time stays the operator's critical path, comparable with
        // the sequential reading.
        let result: Result<Table> = match plan {
            Plan::Scan { table } => {
                let _s = tracing::span("op.Scan").enter();
                let t = provider.get_table(table)?;
                // Share the base table's row storage instead of copying
                // O(|base|) rows per execution (copy-on-write `Arc`) —
                // and its cached columnar chunk, so repeated executions
                // over an unchanged base table vectorize it only once.
                Ok(t.as_bag())
            }

            Plan::Select { input, predicate } => {
                let child = self.eval(input, provider, depth + 1, trace)?;
                if ctx.partitioned(child.len()) {
                    let bound = predicate.bind(child.schema())?;
                    let jobs = morsels(child.len(), ctx.opts.morsel_rows);
                    let outs = ctx.pool.run_timed(
                        "Select",
                        "op.Select",
                        "op.Select.partition",
                        jobs,
                        |range| {
                            Ok(child.rows()[range]
                                .iter()
                                .filter(|r| bound.holds(r))
                                .cloned()
                                .collect::<Vec<Row>>())
                        },
                    )?;
                    Ok(Table::bag(
                        child.schema().clone(),
                        outs.into_iter().flatten().collect(),
                    ))
                } else {
                    let _s = tracing::span("op.Select").enter();
                    let bound = predicate.bind(child.schema())?;
                    let rows = child
                        .rows()
                        .iter()
                        .filter(|r| bound.holds(r))
                        .cloned()
                        .collect();
                    Ok(Table::bag(child.schema().clone(), rows))
                }
            }

            Plan::Project { input, items } => {
                let child = self.eval(input, provider, depth + 1, trace)?;
                let out_schema = plan.schema(&schemas)?;
                let bound: Vec<_> = items
                    .iter()
                    .map(|(e, _)| e.bind(child.schema()))
                    .collect::<gpivot_algebra::Result<_>>()?;
                if ctx.partitioned(child.len()) {
                    let jobs = morsels(child.len(), ctx.opts.morsel_rows);
                    let outs = ctx.pool.run_timed(
                        "Project",
                        "op.Project",
                        "op.Project.partition",
                        jobs,
                        |range| {
                            Ok(child.rows()[range]
                                .iter()
                                .map(|r| Row::new(bound.iter().map(|b| b.eval(r)).collect()))
                                .collect::<Vec<Row>>())
                        },
                    )?;
                    Ok(Table::bag(out_schema, outs.into_iter().flatten().collect()))
                } else {
                    let _s = tracing::span("op.Project").enter();
                    let rows = child
                        .rows()
                        .iter()
                        .map(|r| Row::new(bound.iter().map(|b| b.eval(r)).collect()))
                        .collect();
                    Ok(Table::bag(out_schema, rows))
                }
            }

            Plan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => {
                let l = self.eval(left, provider, depth + 1, trace)?;
                let r = self.eval(right, provider, depth + 1, trace)?;
                let out_schema = plan.schema(&schemas)?;
                let left_on: Vec<usize> = on
                    .iter()
                    .map(|(lc, _)| l.schema().index_of(lc))
                    .collect::<gpivot_storage::Result<_>>()?;
                let right_on: Vec<usize> = on
                    .iter()
                    .map(|(_, rc)| r.schema().index_of(rc))
                    .collect::<gpivot_storage::Result<_>>()?;
                let bound_res = residual.as_ref().map(|e| e.bind(&out_schema)).transpose()?;
                match (ctx.partitioned(l.len() + r.len()), ctx.opts.columnar) {
                    (true, true) => hash_join_columnar_partitioned(
                        &l,
                        &r,
                        *kind,
                        &left_on,
                        &right_on,
                        bound_res.as_ref(),
                        out_schema,
                        &ctx.pool,
                        ctx.opts.partitions,
                    ),
                    (true, false) => hash_join_partitioned(
                        &l,
                        &r,
                        *kind,
                        &left_on,
                        &right_on,
                        bound_res.as_ref(),
                        out_schema,
                        &ctx.pool,
                        ctx.opts.partitions,
                    ),
                    (false, true) => {
                        let _s = tracing::span("op.Join").enter();
                        hash_join_columnar(
                            &l,
                            &r,
                            *kind,
                            &left_on,
                            &right_on,
                            bound_res.as_ref(),
                            out_schema,
                        )
                    }
                    (false, false) => {
                        let _s = tracing::span("op.Join").enter();
                        hash_join(
                            &l,
                            &r,
                            *kind,
                            &left_on,
                            &right_on,
                            bound_res.as_ref(),
                            out_schema,
                        )
                    }
                }
            }

            Plan::GroupBy {
                input,
                group_by,
                aggs,
            } => {
                let child = self.eval(input, provider, depth + 1, trace)?;
                let out_schema = plan.schema(&schemas)?;
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|g| child.schema().index_of(g))
                    .collect::<gpivot_storage::Result<_>>()?;
                let agg_inputs: Vec<usize> = aggs
                    .iter()
                    .map(|a| {
                        if a.func == gpivot_algebra::AggFunc::CountStar {
                            Ok(usize::MAX)
                        } else {
                            child.schema().index_of(&a.input)
                        }
                    })
                    .collect::<gpivot_storage::Result<_>>()?;
                match (ctx.partitioned(child.len()), ctx.opts.columnar) {
                    (true, true) => hash_group_by_columnar_partitioned(
                        &child,
                        &group_idx,
                        aggs,
                        &agg_inputs,
                        out_schema,
                        &ctx.pool,
                        ctx.opts.partitions,
                    ),
                    (true, false) => hash_group_by_partitioned(
                        &child,
                        &group_idx,
                        aggs,
                        &agg_inputs,
                        out_schema,
                        &ctx.pool,
                        ctx.opts.partitions,
                    ),
                    (false, true) => {
                        let _s = tracing::span("op.GroupBy").enter();
                        hash_group_by_columnar(&child, &group_idx, aggs, &agg_inputs, out_schema)
                    }
                    (false, false) => {
                        let _s = tracing::span("op.GroupBy").enter();
                        hash_group_by(&child, &group_idx, aggs, &agg_inputs, out_schema)
                    }
                }
            }

            Plan::Union { left, right } => {
                let l = self.eval(left, provider, depth + 1, trace)?;
                let r = self.eval(right, provider, depth + 1, trace)?;
                let _s = tracing::span("op.Union").enter();
                let out_schema = plan.schema(&schemas)?;
                let mut rows = l.rows().to_vec();
                rows.extend(r.rows().iter().cloned());
                Ok(Table::bag(out_schema, rows))
            }

            Plan::Diff { left, right } => {
                let l = self.eval(left, provider, depth + 1, trace)?;
                let r = self.eval(right, provider, depth + 1, trace)?;
                let _s = tracing::span("op.Diff").enter();
                let out_schema = plan.schema(&schemas)?;
                // Bag difference: subtract up to multiplicity.
                let mut counts: HashMap<&Row, usize> = HashMap::new();
                for row in r.iter() {
                    *counts.entry(row).or_insert(0) += 1;
                }
                let mut rows = Vec::with_capacity(l.len().saturating_sub(r.len()));
                for row in l.iter() {
                    match counts.get_mut(row) {
                        Some(c) if *c > 0 => *c -= 1,
                        _ => rows.push(row.clone()),
                    }
                }
                Ok(Table::bag(out_schema, rows))
            }

            Plan::GPivot { input, spec } => {
                let child = self.eval(input, provider, depth + 1, trace)?;
                let out_schema = plan.schema(&schemas)?;
                match (ctx.partitioned(child.len()), ctx.opts.columnar) {
                    (true, true) => gpivot_columnar_partitioned(
                        &child,
                        spec,
                        out_schema,
                        &ctx.pool,
                        ctx.opts.partitions,
                    ),
                    (true, false) => {
                        gpivot_partitioned(&child, spec, out_schema, &ctx.pool, ctx.opts.partitions)
                    }
                    (false, true) => {
                        let _s = tracing::span("op.GPivot").enter();
                        gpivot_columnar(&child, spec, out_schema)
                    }
                    (false, false) => {
                        let _s = tracing::span("op.GPivot").enter();
                        gpivot(&child, spec, out_schema)
                    }
                }
            }

            Plan::GUnpivot { input, spec } => {
                let child = self.eval(input, provider, depth + 1, trace)?;
                let _s = tracing::span("op.GUnpivot").enter();
                let out_schema = plan.schema(&schemas)?;
                gunpivot(&child, spec, out_schema)
            }
        };
        let result = result?;
        if let Some(t) = trace.as_mut() {
            t.entries.push(TraceEntry {
                depth,
                op: plan.op_name(),
                rows_out: result.len(),
            });
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{AggSpec, Expr, PivotSpec, PlanBuilder};
    use gpivot_storage::{row, Catalog, DataType, Schema, Value};
    use std::sync::Arc;

    /// Figure 2's Payment/Product scenario, cut down.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let payment = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Payment", DataType::Str),
                    ("Price", DataType::Int),
                ],
                &["ID", "Payment"],
            )
            .unwrap(),
        );
        c.register(
            "payment",
            Table::from_rows(
                payment,
                vec![
                    row![1, "Credit", 180],
                    row![1, "ByAir", 20],
                    row![2, "Credit", 300],
                    row![3, "ByAir", 50],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let product = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("PID", DataType::Int),
                    ("Manu", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["PID"],
            )
            .unwrap(),
        );
        c.register(
            "product",
            Table::from_rows(
                product,
                vec![
                    row![1, "Sony", "TV"],
                    row![2, "Sony", "VCR"],
                    row![3, "Panasonic", "TV"],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn scan_select_project() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment")
            .select(Expr::col("Price").gt(Expr::lit(100)))
            .project_cols(&["ID", "Price"])
            .build();
        let out = Executor::new().run(&plan, &c).unwrap();
        assert_eq!(out.sorted_rows(), vec![row![1, 180], row![2, 300]]);
    }

    #[test]
    fn pivot_then_join_pipeline() {
        let c = catalog();
        let spec = PivotSpec::simple(
            "Payment",
            "Price",
            vec![Value::str("Credit"), Value::str("ByAir")],
        );
        let plan = PlanBuilder::scan("payment")
            .gpivot(spec)
            .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
            .build();
        let out = Executor::new().run(&plan, &c).unwrap();
        assert_eq!(out.len(), 3);
        let r1 = out.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        // ID, Credit**Price, ByAir**Price, PID, Manu, Type
        assert_eq!(r1[1], Value::Int(180));
        assert_eq!(r1[2], Value::Int(20));
        assert_eq!(r1[4], Value::str("Sony"));
        let r2 = out.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert!(r2[2].is_null());
    }

    #[test]
    fn group_by_over_join() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment")
            .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
            .group_by(&["Manu"], vec![AggSpec::sum("Price", "total")])
            .build();
        let out = Executor::new().run(&plan, &c).unwrap();
        assert_eq!(
            out.sorted_rows(),
            vec![row!["Panasonic", 50], row!["Sony", 500]]
        );
    }

    #[test]
    fn union_and_diff_bag_semantics() {
        let c = catalog();
        let u = PlanBuilder::scan("payment")
            .union(PlanBuilder::scan("payment"))
            .build();
        assert_eq!(Executor::new().run(&u, &c).unwrap().len(), 8);
        let d = PlanBuilder::from_plan(u.clone())
            .diff(PlanBuilder::scan("payment"))
            .build();
        let out = Executor::new().run(&d, &c).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn execute_traced_profiles_operators() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment")
            .select(Expr::col("Price").gt(Expr::lit(100)))
            .gpivot(PivotSpec::simple(
                "Payment",
                "Price",
                vec![Value::str("Credit"), Value::str("ByAir")],
            ))
            .build();
        let (table, trace) = Executor::new().run_traced(&plan, &c).unwrap();
        // Plan order: GPivot (depth 0), Select (1), Scan (2).
        let ops: Vec<&str> = trace.entries.iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["GPivot", "Select", "Scan"]);
        assert_eq!(trace.entries[2].rows_out, 4); // scan
        assert_eq!(trace.entries[1].rows_out, 2); // price > 100
        assert_eq!(trace.entries[0].rows_out, table.len());
        assert!(trace.render().contains("Scan → 4 rows"));
        assert_eq!(trace.total_rows(), 4 + 2 + table.len());
        // Untraced execution agrees.
        let plain = Executor::new().run(&plan, &c).unwrap();
        assert!(plain.bag_eq(&table));
    }

    #[test]
    fn scan_shares_base_table_rows_without_copy() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment").build();
        let out = Executor::new().run(&plan, &c).unwrap();
        let base = c.get_table("payment").unwrap();
        // Regression: Scan used to clone every base row per execution.
        // The result must point at the very same row allocation.
        assert!(
            Arc::ptr_eq(&out.shared_rows(), &base.shared_rows()),
            "Scan copied the base table instead of sharing it"
        );
        // Two executions share the same storage too.
        let again = Executor::new().run(&plan, &c).unwrap();
        assert!(Arc::ptr_eq(&out.shared_rows(), &again.shared_rows()));
        // And the same cached columnar chunk: vectorizing the base table
        // in one execution pays for every later one.
        assert!(Arc::ptr_eq(&out.chunk(), &base.chunk()));
    }

    /// The columnar kernels produce bit-identical rows in bit-identical
    /// order to the row kernels, end to end through the engine, at both
    /// sequential and partitioned sizes.
    #[test]
    fn columnar_and_row_kernels_are_bit_identical_end_to_end() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment")
            .gpivot(PivotSpec::simple(
                "Payment",
                "Price",
                vec![Value::str("Credit"), Value::str("ByAir")],
            ))
            .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
            .group_by(&["Manu"], vec![AggSpec::sum("Credit**Price", "total")])
            .build();
        // Small input: sequential kernels.
        let rowk = Executor::new().with_columnar(false).run(&plan, &c).unwrap();
        let colk = Executor::new().with_columnar(true).run(&plan, &c).unwrap();
        assert_eq!(colk.rows(), rowk.rows());
        // Wide input: partitioned kernels, across thread counts.
        let mut c = Catalog::new();
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Payment", DataType::Str),
                    ("Price", DataType::Int),
                ],
                &["ID", "Payment"],
            )
            .unwrap(),
        );
        let rows: Vec<Row> = (0..3000)
            .map(|i| {
                row![
                    i / 2,
                    if i % 2 == 0 { "Credit" } else { "ByAir" },
                    (i * 37) % 500
                ]
            })
            .collect();
        c.register("payment", Table::from_rows(schema, rows).unwrap())
            .unwrap();
        let plan = PlanBuilder::scan("payment")
            .gpivot(PivotSpec::simple(
                "Payment",
                "Price",
                vec![Value::str("Credit"), Value::str("ByAir")],
            ))
            .build();
        let rowk = Executor::new().with_columnar(false).run(&plan, &c).unwrap();
        for threads in [1, 4] {
            let colk = Executor::new()
                .with_columnar(true)
                .with_threads(threads)
                .run(&plan, &c)
                .unwrap();
            assert_eq!(colk.rows(), rowk.rows(), "threads={threads}");
        }
    }

    /// Wide inputs (≥ parallel_threshold) produce bit-identical rows in
    /// bit-identical order at every pool width, and agree bag-wise with a
    /// purely sequential executor.
    #[test]
    fn parallel_execution_is_thread_invariant_end_to_end() {
        let mut c = Catalog::new();
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Payment", DataType::Str),
                    ("Price", DataType::Int),
                ],
                &["ID", "Payment"],
            )
            .unwrap(),
        );
        let rows: Vec<Row> = (0..2000)
            .map(|i| {
                row![
                    i / 2,
                    if i % 2 == 0 { "Credit" } else { "ByAir" },
                    (i * 37) % 500
                ]
            })
            .collect();
        c.register("payment", Table::from_rows(schema, rows).unwrap())
            .unwrap();
        let plan = PlanBuilder::scan("payment")
            .select(Expr::col("Price").gt(Expr::lit(10)))
            .gpivot(PivotSpec::simple(
                "Payment",
                "Price",
                vec![Value::str("Credit"), Value::str("ByAir")],
            ))
            .build();
        let sequential = Executor::new()
            .with_parallel_threshold(usize::MAX)
            .run(&plan, &c)
            .unwrap();
        let mut outputs = Vec::new();
        for threads in [1, 2, 8] {
            let out = Executor::new()
                .with_threads(threads)
                .run(&plan, &c)
                .unwrap();
            assert!(out.bag_eq(&sequential), "threads={threads}");
            outputs.push(out.rows().to_vec());
        }
        assert_eq!(outputs[0], outputs[1]);
        assert_eq!(outputs[1], outputs[2]);
    }

    /// Parallel operators reconcile with the span store: one `op.X`
    /// parent reading (the max partition duration) plus an
    /// `op.X.partition` sub-span per partition.
    #[test]
    fn parallel_spans_reconcile_max_of_partitions() {
        let mut c = Catalog::new();
        let schema =
            Arc::new(Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]).unwrap());
        let rows: Vec<Row> = (0..4000).map(|i| row![i % 97, i]).collect();
        c.register("t", Table::from_rows(schema, rows).unwrap())
            .unwrap();
        let plan = PlanBuilder::scan("t")
            .group_by(&["g"], vec![AggSpec::sum("v", "s")])
            .build();
        let exec = Executor::new().with_threads(2).with_partitions(8);
        let sub = tracing::TimingSubscriber::shared();
        tracing::with_collector(sub.clone(), || {
            exec.run(&plan, &c).unwrap();
        });
        let parent = sub.histogram("op.GroupBy").unwrap();
        let parts = sub.histogram("op.GroupBy.partition").unwrap();
        assert_eq!(parent.count(), 1, "exactly one parent self-time reading");
        assert_eq!(parts.count(), 8, "one sub-span per partition");
        assert!(
            parent.max() <= parts.max(),
            "parent self-time is the max partition duration"
        );
    }

    #[test]
    fn full_view_of_figure_2_shape() {
        // GPIVOT(payment) ⋈ product, then GROUPBY(Manu,Type), then pivot
        // the sums by Type — the paper's Figure 2 view.
        let c = catalog();
        let lower = PlanBuilder::scan("payment")
            .gpivot(PivotSpec::simple(
                "Payment",
                "Price",
                vec![Value::str("Credit"), Value::str("ByAir")],
            ))
            .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
            .group_by(
                &["Manu", "Type"],
                vec![
                    AggSpec::sum("Credit**Price", "CreditSum"),
                    AggSpec::sum("ByAir**Price", "ByAirSum"),
                ],
            );
        let top = lower
            .gpivot(PivotSpec::new(
                vec!["Type"],
                vec!["CreditSum", "ByAirSum"],
                vec![vec![Value::str("TV")], vec![Value::str("VCR")]],
            ))
            .build();
        let out = Executor::new().run(&top, &c).unwrap();
        // Manu, TV**CreditSum, TV**ByAirSum, VCR**CreditSum, VCR**ByAirSum
        assert_eq!(out.schema().arity(), 5);
        let sony = out.iter().find(|r| r[0] == Value::str("Sony")).unwrap();
        assert_eq!(sony[1], Value::Int(180));
        assert_eq!(sony[2], Value::Int(20));
        assert_eq!(sony[3], Value::Int(300));
        assert!(sony[4].is_null());
    }
}
