//! The plan dispatcher: recursively evaluates a [`Plan`] bottom-up.
//!
//! [`Executor::execute`] returns just the result table;
//! [`Executor::execute_traced`] additionally returns an [`ExecTrace`] — a
//! per-operator row-count profile rendered like `EXPLAIN ANALYZE`, which
//! the examples use to show where maintenance plans spend their rows.

use crate::error::Result;
use crate::group::hash_group_by;
use crate::join::hash_join;
use crate::pivot::{gpivot, gunpivot};
use crate::provider::{ProviderSchemas, TableProvider};
use gpivot_algebra::Plan;
use gpivot_storage::{Row, Table};
use std::collections::HashMap;

/// One operator's entry in an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Nesting depth in the plan tree.
    pub depth: usize,
    /// Operator label (`op_name`).
    pub op: &'static str,
    /// Rows produced by this operator.
    pub rows_out: usize,
}

/// An `EXPLAIN ANALYZE`-style profile: operators in plan order with their
/// output cardinalities.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecTrace {
    pub entries: Vec<TraceEntry>,
}

impl ExecTrace {
    /// Total rows produced across all operators (a proxy for work done).
    pub fn total_rows(&self) -> usize {
        self.entries.iter().map(|e| e.rows_out).sum()
    }

    /// Render indented, one operator per line.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{}{} → {} rows",
                "  ".repeat(e.depth),
                e.op,
                e.rows_out
            );
        }
        out
    }
}

impl std::fmt::Display for ExecTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Batch plan executor. Stateless — all inputs come from the provider.
#[derive(Debug, Clone, Copy, Default)]
pub struct Executor;

impl Executor {
    /// Evaluate `plan` against `provider`, returning the result as a bag
    /// table whose schema (including key metadata) comes from schema
    /// inference.
    pub fn execute<P: TableProvider>(plan: &Plan, provider: &P) -> Result<Table> {
        let mut trace = None;
        Self::execute_impl(plan, provider, 0, &mut trace)
    }

    /// Like [`Executor::execute`], also returning the per-operator trace.
    pub fn execute_traced<P: TableProvider>(
        plan: &Plan,
        provider: &P,
    ) -> Result<(Table, ExecTrace)> {
        let mut trace = Some(ExecTrace::default());
        let table = Self::execute_impl(plan, provider, 0, &mut trace)?;
        let mut trace = trace.unwrap_or_default();
        // Entries were pushed post-order (children first); reversing puts
        // each parent before its children (for binary operators the right
        // subtree then lists before the left one).
        trace.entries.reverse();
        Ok((table, trace))
    }

    fn execute_impl<P: TableProvider>(
        plan: &Plan,
        provider: &P,
        depth: usize,
        trace: &mut Option<ExecTrace>,
    ) -> Result<Table> {
        let schemas = ProviderSchemas(provider);
        // Each operator's kernel work runs under an `op.*` span entered
        // only after its children have been evaluated, so the recorded
        // durations are per-operator self-times, not inclusive subtree
        // times (see DESIGN.md §"Observability").
        let result: Result<Table> = match plan {
            Plan::Scan { table } => {
                let _s = tracing::span("op.Scan").enter();
                let t = provider.get_table(table)?;
                Ok(Table::bag(t.schema().clone(), t.rows().to_vec()))
            }

            Plan::Select { input, predicate } => {
                let child = Self::execute_impl(input, provider, depth + 1, trace)?;
                let _s = tracing::span("op.Select").enter();
                let bound = predicate.bind(child.schema())?;
                let rows = child
                    .rows()
                    .iter()
                    .filter(|r| bound.holds(r))
                    .cloned()
                    .collect();
                Ok(Table::bag(child.schema().clone(), rows))
            }

            Plan::Project { input, items } => {
                let child = Self::execute_impl(input, provider, depth + 1, trace)?;
                let _s = tracing::span("op.Project").enter();
                let out_schema = plan.schema(&schemas)?;
                let bound: Vec<_> = items
                    .iter()
                    .map(|(e, _)| e.bind(child.schema()))
                    .collect::<gpivot_algebra::Result<_>>()?;
                let rows = child
                    .rows()
                    .iter()
                    .map(|r| Row::new(bound.iter().map(|b| b.eval(r)).collect()))
                    .collect();
                Ok(Table::bag(out_schema, rows))
            }

            Plan::Join {
                left,
                right,
                kind,
                on,
                residual,
            } => {
                let l = Self::execute_impl(left, provider, depth + 1, trace)?;
                let r = Self::execute_impl(right, provider, depth + 1, trace)?;
                let _s = tracing::span("op.Join").enter();
                let out_schema = plan.schema(&schemas)?;
                let left_on: Vec<usize> = on
                    .iter()
                    .map(|(lc, _)| l.schema().index_of(lc))
                    .collect::<gpivot_storage::Result<_>>()?;
                let right_on: Vec<usize> = on
                    .iter()
                    .map(|(_, rc)| r.schema().index_of(rc))
                    .collect::<gpivot_storage::Result<_>>()?;
                let bound_res = residual.as_ref().map(|e| e.bind(&out_schema)).transpose()?;
                hash_join(
                    &l,
                    &r,
                    *kind,
                    &left_on,
                    &right_on,
                    bound_res.as_ref(),
                    out_schema,
                )
            }

            Plan::GroupBy {
                input,
                group_by,
                aggs,
            } => {
                let child = Self::execute_impl(input, provider, depth + 1, trace)?;
                let _s = tracing::span("op.GroupBy").enter();
                let out_schema = plan.schema(&schemas)?;
                let group_idx: Vec<usize> = group_by
                    .iter()
                    .map(|g| child.schema().index_of(g))
                    .collect::<gpivot_storage::Result<_>>()?;
                let agg_inputs: Vec<usize> = aggs
                    .iter()
                    .map(|a| {
                        if a.func == gpivot_algebra::AggFunc::CountStar {
                            Ok(usize::MAX)
                        } else {
                            child.schema().index_of(&a.input)
                        }
                    })
                    .collect::<gpivot_storage::Result<_>>()?;
                hash_group_by(&child, &group_idx, aggs, &agg_inputs, out_schema)
            }

            Plan::Union { left, right } => {
                let l = Self::execute_impl(left, provider, depth + 1, trace)?;
                let r = Self::execute_impl(right, provider, depth + 1, trace)?;
                let _s = tracing::span("op.Union").enter();
                let out_schema = plan.schema(&schemas)?;
                let mut rows = l.rows().to_vec();
                rows.extend(r.rows().iter().cloned());
                Ok(Table::bag(out_schema, rows))
            }

            Plan::Diff { left, right } => {
                let l = Self::execute_impl(left, provider, depth + 1, trace)?;
                let r = Self::execute_impl(right, provider, depth + 1, trace)?;
                let _s = tracing::span("op.Diff").enter();
                let out_schema = plan.schema(&schemas)?;
                // Bag difference: subtract up to multiplicity.
                let mut counts: HashMap<&Row, usize> = HashMap::new();
                for row in r.iter() {
                    *counts.entry(row).or_insert(0) += 1;
                }
                let mut rows = Vec::with_capacity(l.len().saturating_sub(r.len()));
                for row in l.iter() {
                    match counts.get_mut(row) {
                        Some(c) if *c > 0 => *c -= 1,
                        _ => rows.push(row.clone()),
                    }
                }
                Ok(Table::bag(out_schema, rows))
            }

            Plan::GPivot { input, spec } => {
                let child = Self::execute_impl(input, provider, depth + 1, trace)?;
                let _s = tracing::span("op.GPivot").enter();
                let out_schema = plan.schema(&schemas)?;
                gpivot(&child, spec, out_schema)
            }

            Plan::GUnpivot { input, spec } => {
                let child = Self::execute_impl(input, provider, depth + 1, trace)?;
                let _s = tracing::span("op.GUnpivot").enter();
                let out_schema = plan.schema(&schemas)?;
                gunpivot(&child, spec, out_schema)
            }
        };
        let result = result?;
        if let Some(t) = trace.as_mut() {
            t.entries.push(TraceEntry {
                depth,
                op: plan.op_name(),
                rows_out: result.len(),
            });
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::{AggSpec, Expr, PivotSpec, PlanBuilder};
    use gpivot_storage::{row, Catalog, DataType, Schema, Value};
    use std::sync::Arc;

    /// Figure 2's Payment/Product scenario, cut down.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let payment = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("ID", DataType::Int),
                    ("Payment", DataType::Str),
                    ("Price", DataType::Int),
                ],
                &["ID", "Payment"],
            )
            .unwrap(),
        );
        c.register(
            "payment",
            Table::from_rows(
                payment,
                vec![
                    row![1, "Credit", 180],
                    row![1, "ByAir", 20],
                    row![2, "Credit", 300],
                    row![3, "ByAir", 50],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let product = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("PID", DataType::Int),
                    ("Manu", DataType::Str),
                    ("Type", DataType::Str),
                ],
                &["PID"],
            )
            .unwrap(),
        );
        c.register(
            "product",
            Table::from_rows(
                product,
                vec![
                    row![1, "Sony", "TV"],
                    row![2, "Sony", "VCR"],
                    row![3, "Panasonic", "TV"],
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn scan_select_project() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment")
            .select(Expr::col("Price").gt(Expr::lit(100)))
            .project_cols(&["ID", "Price"])
            .build();
        let out = Executor::execute(&plan, &c).unwrap();
        assert_eq!(out.sorted_rows(), vec![row![1, 180], row![2, 300]]);
    }

    #[test]
    fn pivot_then_join_pipeline() {
        let c = catalog();
        let spec = PivotSpec::simple(
            "Payment",
            "Price",
            vec![Value::str("Credit"), Value::str("ByAir")],
        );
        let plan = PlanBuilder::scan("payment")
            .gpivot(spec)
            .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
            .build();
        let out = Executor::execute(&plan, &c).unwrap();
        assert_eq!(out.len(), 3);
        let r1 = out.iter().find(|r| r[0] == Value::Int(1)).unwrap();
        // ID, Credit**Price, ByAir**Price, PID, Manu, Type
        assert_eq!(r1[1], Value::Int(180));
        assert_eq!(r1[2], Value::Int(20));
        assert_eq!(r1[4], Value::str("Sony"));
        let r2 = out.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert!(r2[2].is_null());
    }

    #[test]
    fn group_by_over_join() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment")
            .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
            .group_by(&["Manu"], vec![AggSpec::sum("Price", "total")])
            .build();
        let out = Executor::execute(&plan, &c).unwrap();
        assert_eq!(
            out.sorted_rows(),
            vec![row!["Panasonic", 50], row!["Sony", 500]]
        );
    }

    #[test]
    fn union_and_diff_bag_semantics() {
        let c = catalog();
        let u = PlanBuilder::scan("payment")
            .union(PlanBuilder::scan("payment"))
            .build();
        assert_eq!(Executor::execute(&u, &c).unwrap().len(), 8);
        let d = PlanBuilder::from_plan(u.clone())
            .diff(PlanBuilder::scan("payment"))
            .build();
        let out = Executor::execute(&d, &c).unwrap();
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn execute_traced_profiles_operators() {
        let c = catalog();
        let plan = PlanBuilder::scan("payment")
            .select(Expr::col("Price").gt(Expr::lit(100)))
            .gpivot(PivotSpec::simple(
                "Payment",
                "Price",
                vec![Value::str("Credit"), Value::str("ByAir")],
            ))
            .build();
        let (table, trace) = Executor::execute_traced(&plan, &c).unwrap();
        // Plan order: GPivot (depth 0), Select (1), Scan (2).
        let ops: Vec<&str> = trace.entries.iter().map(|e| e.op).collect();
        assert_eq!(ops, vec!["GPivot", "Select", "Scan"]);
        assert_eq!(trace.entries[2].rows_out, 4); // scan
        assert_eq!(trace.entries[1].rows_out, 2); // price > 100
        assert_eq!(trace.entries[0].rows_out, table.len());
        assert!(trace.render().contains("Scan → 4 rows"));
        assert_eq!(trace.total_rows(), 4 + 2 + table.len());
        // Untraced execution agrees.
        let plain = Executor::execute(&plan, &c).unwrap();
        assert!(plain.bag_eq(&table));
    }

    #[test]
    fn full_view_of_figure_2_shape() {
        // GPIVOT(payment) ⋈ product, then GROUPBY(Manu,Type), then pivot
        // the sums by Type — the paper's Figure 2 view.
        let c = catalog();
        let lower = PlanBuilder::scan("payment")
            .gpivot(PivotSpec::simple(
                "Payment",
                "Price",
                vec![Value::str("Credit"), Value::str("ByAir")],
            ))
            .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
            .group_by(
                &["Manu", "Type"],
                vec![
                    AggSpec::sum("Credit**Price", "CreditSum"),
                    AggSpec::sum("ByAir**Price", "ByAirSum"),
                ],
            );
        let top = lower
            .gpivot(PivotSpec::new(
                vec!["Type"],
                vec!["CreditSum", "ByAirSum"],
                vec![vec![Value::str("TV")], vec![Value::str("VCR")]],
            ))
            .build();
        let out = Executor::execute(&top, &c).unwrap();
        // Manu, TV**CreditSum, TV**ByAirSum, VCR**CreditSum, VCR**ByAirSum
        assert_eq!(out.schema().arity(), 5);
        let sony = out.iter().find(|r| r[0] == Value::str("Sony")).unwrap();
        assert_eq!(sony[1], Value::Int(180));
        assert_eq!(sony[2], Value::Int(20));
        assert_eq!(sony[3], Value::Int(300));
        assert!(sony[4].is_null());
    }
}
