//! Oracle tests for the executor: the hash-based operators are checked
//! against naive reference implementations (nested loops, brute-force
//! grouping, definition-level pivoting via Eq. 1/3's outer joins) on
//! randomized inputs.

use gpivot_algebra::plan::{PivotSpec, UnpivotSpec};
use gpivot_algebra::{AggSpec, JoinKind, Plan};
use gpivot_exec::Executor;
use gpivot_storage::{Catalog, DataType, Row, Schema, Table, Value};
use proptest::prelude::prop_oneof;
use proptest::prelude::{prop, prop_assert_eq, proptest, Just};
use proptest::strategy::Strategy as _;
use std::collections::HashMap;
use std::sync::Arc;

fn arb_val() -> impl proptest::strategy::Strategy<Value = Value> {
    prop_oneof![Just(Value::Null), (-5i64..15).prop_map(Value::Int),]
}

/// Random left/right tables over small domains (to force key collisions).
fn arb_tables() -> impl proptest::strategy::Strategy<Value = (Vec<Row>, Vec<Row>)> {
    let left = prop::collection::vec((0i64..8, arb_val()), 0..20).prop_map(|rows| {
        rows.into_iter()
            .map(|(k, v)| Row::new(vec![Value::Int(k), v]))
            .collect::<Vec<_>>()
    });
    let right = prop::collection::vec((0i64..8, -5i64..15), 0..20).prop_map(|rows| {
        rows.into_iter()
            .map(|(k, v)| Row::new(vec![Value::Int(k), Value::Int(v)]))
            .collect::<Vec<_>>()
    });
    (left, right)
}

fn join_catalog(left: Vec<Row>, right: Vec<Row>) -> Catalog {
    let ls = Arc::new(Schema::from_pairs(&[("lk", DataType::Int), ("lv", DataType::Int)]).unwrap());
    let rs = Arc::new(Schema::from_pairs(&[("rk", DataType::Int), ("rv", DataType::Int)]).unwrap());
    let mut c = Catalog::new();
    c.register("l", Table::bag(ls, left)).unwrap();
    c.register("r", Table::bag(rs, right)).unwrap();
    c
}

/// Naive nested-loop join reference with SQL NULL-key semantics.
fn naive_join(left: &[Row], right: &[Row], kind: JoinKind) -> Vec<Row> {
    let mut out = Vec::new();
    let mut right_matched = vec![false; right.len()];
    for l in left {
        let mut matched = false;
        for (ri, r) in right.iter().enumerate() {
            if l[0].sql_eq(&r[0]) == Some(true) {
                matched = true;
                right_matched[ri] = true;
                out.push(l.concat(r));
            }
        }
        if !matched && matches!(kind, JoinKind::LeftOuter | JoinKind::FullOuter) {
            out.push(l.pad_nulls(2));
        }
    }
    if kind == JoinKind::FullOuter {
        for (ri, r) in right.iter().enumerate() {
            if !right_matched[ri] {
                let mut v = vec![Value::Null, Value::Null];
                v.extend(r.iter().cloned());
                out.push(Row::new(v));
            }
        }
    }
    out
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

proptest! {
    #[test]
    fn hash_join_matches_nested_loop((left, right) in arb_tables()) {
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::FullOuter] {
            let c = join_catalog(left.clone(), right.clone());
            let plan = Plan::Join {
                left: Box::new(Plan::scan("l")),
                right: Box::new(Plan::scan("r")),
                kind,
                on: vec![("lk".into(), "rk".into())],
                residual: None,
            };
            let got = Executor::new().run(&plan, &c).unwrap();
            let want = naive_join(&left, &right, kind);
            prop_assert_eq!(
                sorted(got.rows().to_vec()),
                sorted(want),
                "join kind {:?}",
                kind
            );
        }
    }

    #[test]
    fn hash_group_by_matches_brute_force(
        rows in prop::collection::vec((0i64..6, arb_val()), 0..25)
    ) {
        let schema = Arc::new(
            Schema::from_pairs(&[("g", DataType::Int), ("v", DataType::Int)]).unwrap(),
        );
        let data: Vec<Row> = rows
            .iter()
            .map(|(g, v)| Row::new(vec![Value::Int(*g), v.clone()]))
            .collect();
        let mut c = Catalog::new();
        c.register("t", Table::bag(schema, data.clone())).unwrap();
        let plan = Plan::scan("t").group_by(
            &["g"],
            vec![
                AggSpec::sum("v", "s"),
                AggSpec::count("v", "c"),
                AggSpec::count_star("n"),
                AggSpec::min("v", "lo"),
                AggSpec::max("v", "hi"),
            ],
        );
        let got = Executor::new().run(&plan, &c).unwrap();

        // Brute force.
        let mut groups: HashMap<i64, Vec<&Value>> = HashMap::new();
        for r in &data {
            groups.entry(r[0].as_i64().unwrap()).or_default().push(&r[1]);
        }
        let mut want = Vec::new();
        for (g, vals) in groups {
            let non_null: Vec<i64> = vals.iter().filter_map(|v| v.as_i64()).collect();
            let sum = if non_null.is_empty() {
                Value::Null
            } else {
                Value::Int(non_null.iter().sum())
            };
            let lo = non_null.iter().min().map(|&v| Value::Int(v)).unwrap_or(Value::Null);
            let hi = non_null.iter().max().map(|&v| Value::Int(v)).unwrap_or(Value::Null);
            want.push(Row::new(vec![
                Value::Int(g),
                sum,
                Value::Int(non_null.len() as i64),
                Value::Int(vals.len() as i64),
                lo,
                hi,
            ]));
        }
        prop_assert_eq!(sorted(got.rows().to_vec()), sorted(want));
    }

    /// GPIVOT against the definitional reference: group rows by K and place
    /// each listed, non-all-⊥ row's measures into its cell.
    #[test]
    fn gpivot_matches_definition(
        rows in prop::collection::btree_set((0i64..8, 0usize..4), 0..20),
        vals in prop::collection::vec(arb_val(), 20),
    ) {
        const ATTRS: [&str; 4] = ["a", "b", "c", "d"];
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[("k", DataType::Int), ("a", DataType::Str), ("v", DataType::Int)],
                &["k", "a"],
            )
            .unwrap(),
        );
        let data: Vec<Row> = rows
            .iter()
            .zip(&vals)
            .map(|((k, ai), v)| {
                Row::new(vec![Value::Int(*k), Value::str(ATTRS[*ai]), v.clone()])
            })
            .collect();
        let mut c = Catalog::new();
        c.register("t", Table::from_rows(schema, data.clone()).unwrap())
            .unwrap();
        // Pivot the first three attrs only ('d' stays unlisted).
        let spec = PivotSpec::simple(
            "a",
            "v",
            vec![Value::str("a"), Value::str("b"), Value::str("c")],
        );
        let got = Executor::new().run(&Plan::scan("t").gpivot(spec), &c).unwrap();

        // Reference: brute force by definition.
        let mut cells: HashMap<i64, [Value; 3]> = HashMap::new();
        for r in &data {
            let attr = r[1].as_str().unwrap().to_string();
            let Some(gi) = ["a", "b", "c"].iter().position(|x| *x == attr) else {
                continue;
            };
            if r[2].is_null() {
                continue; // all-⊥ measures contribute nothing
            }
            cells.entry(r[0].as_i64().unwrap()).or_insert_with(|| {
                [Value::Null, Value::Null, Value::Null]
            })[gi] = r[2].clone();
        }
        let want: Vec<Row> = cells
            .into_iter()
            .map(|(k, cs)| {
                let mut v = vec![Value::Int(k)];
                v.extend(cs);
                Row::new(v)
            })
            .collect();
        prop_assert_eq!(sorted(got.rows().to_vec()), sorted(want));
    }

    /// GUNPIVOT(GPIVOT(V)) == σ(listed ∧ non-⊥)(V) on random data — the
    /// executable form of Eq. 9.
    #[test]
    fn pivot_roundtrip_oracle(
        rows in prop::collection::btree_set((0i64..8, 0usize..4), 0..20),
        vals in prop::collection::vec(arb_val(), 20),
    ) {
        const ATTRS: [&str; 4] = ["a", "b", "c", "d"];
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[("k", DataType::Int), ("a", DataType::Str), ("v", DataType::Int)],
                &["k", "a"],
            )
            .unwrap(),
        );
        let data: Vec<Row> = rows
            .iter()
            .zip(&vals)
            .map(|((k, ai), v)| {
                Row::new(vec![Value::Int(*k), Value::str(ATTRS[*ai]), v.clone()])
            })
            .collect();
        let mut c = Catalog::new();
        c.register("t", Table::from_rows(schema, data.clone()).unwrap())
            .unwrap();
        let spec = PivotSpec::simple(
            "a",
            "v",
            vec![Value::str("a"), Value::str("b"), Value::str("c")],
        );
        let plan = Plan::scan("t")
            .gpivot(spec.clone())
            .gunpivot(UnpivotSpec::reversing(&spec));
        let got = Executor::new().run(&plan, &c).unwrap();
        let want: Vec<Row> = data
            .iter()
            .filter(|r| {
                matches!(r[1].as_str(), Some("a" | "b" | "c")) && !r[2].is_null()
            })
            .cloned()
            .collect();
        prop_assert_eq!(sorted(got.rows().to_vec()), sorted(want));
    }
}

#[test]
fn residual_join_oracle() {
    // Residual predicates restrict matches (checked against nested loop).
    let left: Vec<Row> = (0..6)
        .map(|i| Row::new(vec![Value::Int(i % 3), Value::Int(i)]))
        .collect();
    let right: Vec<Row> = (0..6)
        .map(|i| Row::new(vec![Value::Int(i % 3), Value::Int(10 - i)]))
        .collect();
    let c = join_catalog(left.clone(), right.clone());
    let residual = gpivot_algebra::Expr::col("lv").lt(gpivot_algebra::Expr::col("rv"));
    let plan = Plan::Join {
        left: Box::new(Plan::scan("l")),
        right: Box::new(Plan::scan("r")),
        kind: JoinKind::Inner,
        on: vec![("lk".into(), "rk".into())],
        residual: Some(residual),
    };
    let got = Executor::new().run(&plan, &c).unwrap();
    let want: Vec<Row> = left
        .iter()
        .flat_map(|l| {
            right.iter().filter_map(move |r| {
                if l[0] == r[0] && l[1].compare(&r[1]) == Some(std::cmp::Ordering::Less) {
                    Some(l.concat(r))
                } else {
                    None
                }
            })
        })
        .collect();
    assert_eq!(sorted(got.rows().to_vec()), sorted(want));
}
