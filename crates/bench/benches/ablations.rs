//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **apply-mode** — §2.3's claim that in-place MERGE updates beat
//!   delete + re-insert: `PivotUpdate` vs `InsertDelete` on a *pure pivot*
//!   view (no joins), isolating the apply phase.
//! * **pivot-combine** — §4.2's claim that the combination rules also help
//!   plain query execution: one combined GPIVOT vs two stacked GPIVOTs.
//! * **select-strategy** — Fig. 29's combined σ/GPIVOT rules vs the Eq. 7
//!   select-pushdown alternative at a fixed delta fraction.
//! * **scale** — `PivotUpdate` refresh cost across database scale factors
//!   at a fixed delta fraction (incremental cost should track delta size,
//!   not database size, until the per-run fixed costs dominate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpivot_algebra::{PivotSpec, Plan, PlanBuilder};
use gpivot_bench::{bench_catalog, PreparedView, Workload};
use gpivot_core::Strategy;
use gpivot_exec::Executor;
use gpivot_storage::Value;
use gpivot_tpch::views;

/// Pure pivot view over lineitem (no joins): isolates the apply phase.
fn pure_pivot_view() -> Plan {
    PlanBuilder::scan("lineitem")
        .project_cols(&["l_orderkey", "l_linenumber", "l_extendedprice"])
        .gpivot(views::line_pivot_spec())
        .build()
}

fn ablation_apply_mode(c: &mut Criterion) {
    let catalog = bench_catalog(0.5);
    let mut group = c.benchmark_group("ablation_apply_mode");
    group.sample_size(10);
    for strategy in [Strategy::InsertDelete, Strategy::PivotUpdate] {
        let prepared = PreparedView::new(catalog.clone(), pure_pivot_view(), strategy).unwrap();
        // Update-heavy workload: the shape §2.3 says separates the modes.
        let deltas = Workload::InsertUpdates.deltas(&catalog, 0.01, 7);
        group.bench_function(BenchmarkId::new(strategy.id(), "update-1%"), |b| {
            b.iter(|| prepared.timed_run(&deltas).unwrap());
        });
    }
    group.finish();
}

fn ablation_pivot_combine(c: &mut Criterion) {
    // Execute a two-dimensional crosstab either as two stacked pivots or as
    // the combined GPIVOT (Eq. 6).
    let catalog = bench_catalog(0.5);
    let inner = PivotSpec::simple(
        "l_linenumber",
        "l_extendedprice",
        vec![Value::Int(1), Value::Int(2), Value::Int(3)],
    );
    let outer = PivotSpec::new(
        vec!["o_year"],
        inner.output_col_names(),
        vec![
            vec![Value::Int(1994)],
            vec![Value::Int(1995)],
            vec![Value::Int(1996)],
        ],
    );
    let base = || {
        PlanBuilder::scan("lineitem")
            .project_cols(&["l_orderkey", "l_linenumber", "l_extendedprice"])
            .join(
                PlanBuilder::scan("orders"),
                vec![("l_orderkey", "o_orderkey")],
            )
            .project_cols(&["l_orderkey", "o_year", "l_linenumber", "l_extendedprice"])
            .build()
    };
    let stacked = base().gpivot(inner.clone()).gpivot(outer.clone());
    let combined =
        base().gpivot(gpivot_core::combine::compose_specs(&inner, &outer).expect("composable"));

    let mut group = c.benchmark_group("ablation_pivot_combine");
    group.sample_size(10);
    group.bench_function("stacked", |b| {
        b.iter(|| Executor::new().run(&stacked, &catalog).unwrap());
    });
    group.bench_function("combined", |b| {
        b.iter(|| Executor::new().run(&combined, &catalog).unwrap());
    });
    group.finish();
}

fn ablation_select_strategy(c: &mut Criterion) {
    let catalog = bench_catalog(0.5);
    let plan = views::view2(views::VIEW2_THRESHOLD);
    let mut group = c.benchmark_group("ablation_select_strategy");
    group.sample_size(10);
    for strategy in [Strategy::SelectPushdownUpdate, Strategy::SelectPivotUpdate] {
        let prepared = PreparedView::new(catalog.clone(), plan.clone(), strategy).unwrap();
        let deltas = Workload::Delete.deltas(&catalog, 0.01, 7);
        group.bench_function(BenchmarkId::new(strategy.id(), "delete-1%"), |b| {
            b.iter(|| prepared.timed_run(&deltas).unwrap());
        });
    }
    group.finish();
}

fn ablation_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scale");
    group.sample_size(10);
    for scale in [0.25, 0.5, 1.0] {
        let catalog = bench_catalog(scale);
        let prepared =
            PreparedView::new(catalog.clone(), views::view1(), Strategy::PivotUpdate).unwrap();
        let deltas = Workload::Delete.deltas(&catalog, 0.01, 7);
        group.bench_function(
            BenchmarkId::new("pivot-update", format!("sf{scale}")),
            |b| {
                b.iter(|| prepared.timed_run(&deltas).unwrap());
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_apply_mode,
    ablation_pivot_combine,
    ablation_select_strategy,
    ablation_scale
);
criterion_main!(benches);
