//! Criterion bench regenerating Figure 34 of the paper.
//! See `gpivot_bench::figure_specs` for the figure's view, workload and
//! strategy set; run `cargo run -p gpivot-bench --bin figures -- 34`
//! for the paper-style printed series.

fn main() {
    gpivot_bench::criterion_common::run_figure_bench(34);
}
