//! Serve-layer throughput bench: ingest + epoch refresh over the paper's
//! three TPC-H view families (registered twice each, so the worker pool has
//! six propagate jobs per epoch), comparing worker-pool sizes 1 vs N.
//!
//! Reported per worker count: total refresh wall-clock, view-refreshes/sec,
//! coalesced delta rows/sec, and propagated rows/sec.

use gpivot_serve::{IngestOptions, ServeConfig, ViewService};
use gpivot_storage::Catalog;
use gpivot_tpch::views::{view1, view2, view3, VIEW2_THRESHOLD};
use gpivot_tpch::workload;
use std::time::Duration;

const SCALE: f64 = 0.2;
const EPOCHS: u64 = 6;

struct RunStats {
    views_refreshed: u64,
    delta_rows: u64,
    rows_propagated: u64,
    refresh_time: Duration,
}

fn run(workers: usize, catalog: &Catalog) -> RunStats {
    let svc = ViewService::new(
        catalog.clone(),
        ServeConfig::builder().workers(workers).build().unwrap(),
    );
    for (name, plan) in [
        ("view1_a", view1()),
        ("view1_b", view1()),
        ("view2_a", view2(VIEW2_THRESHOLD)),
        ("view2_b", view2(VIEW2_THRESHOLD)),
        ("view3_a", view3()),
        ("view3_b", view3()),
    ] {
        svc.register_view(name, plan).expect("view registers");
    }

    // A mirror catalog lets each epoch's workload be generated against the
    // current base state (workload generators sample live keys).
    let mut mirror = catalog.clone();
    for e in 0..EPOCHS {
        let seed = 0x5EE0 + e;
        let batch = match e % 3 {
            0 => workload::mixed_batch(&mirror, 0.02, seed),
            1 => workload::insert_new_rows(&mirror, 0.02, seed),
            _ => workload::delete_fraction(&mirror, "lineitem", 0.01, seed),
        };
        for table in batch.tables() {
            let delta = batch.delta(table).expect("table in batch");
            svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                .expect("ingest succeeds");
            mirror.apply_delta(table, delta).expect("mirror applies");
        }
        svc.refresh_epoch().expect("epoch succeeds");
    }

    let m = svc.metrics();
    assert_eq!(m.epochs, EPOCHS);
    assert_eq!(m.epochs_failed, 0);
    RunStats {
        views_refreshed: m.per_view.values().map(|v| v.refreshes).sum(),
        delta_rows: m.delta_rows,
        rows_propagated: m.rows_propagated,
        refresh_time: m.refresh_time,
    }
}

fn per_sec(count: u64, elapsed: Duration) -> f64 {
    count as f64 / elapsed.as_secs_f64().max(1e-9)
}

fn main() {
    let catalog = gpivot_bench::bench_catalog(SCALE);
    // Always compare against a real pool even on single-core CI boxes.
    let n = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .clamp(4, 8);
    println!(
        "serve_throughput: {EPOCHS} epochs x 6 views, tpch scale {SCALE}, \
         worker-pool sizes 1 vs {n}"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>16}",
        "workers", "refresh_ms", "views/sec", "delta rows/s", "propagated/s"
    );
    let mut sizes = vec![1usize];
    if n > 1 {
        sizes.push(n);
    }
    for workers in sizes {
        let s = run(workers, &catalog);
        println!(
            "{:>8} {:>12.1} {:>12.1} {:>14.0} {:>16.0}",
            workers,
            s.refresh_time.as_secs_f64() * 1e3,
            per_sec(s.views_refreshed, s.refresh_time),
            per_sec(s.delta_rows, s.refresh_time),
            per_sec(s.rows_propagated, s.refresh_time),
        );
    }
}
