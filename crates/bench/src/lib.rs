//! # gpivot-bench
//!
//! Shared scaffolding for regenerating the paper's evaluation (§7).
//!
//! Every figure in the paper's evaluation section is a *maintenance cost vs.
//! delta fraction* plot comparing refresh strategies on one of three views.
//! [`PreparedView`] packages a catalog + compiled materialized view so a
//! single maintenance run can be timed in isolation (view compilation and
//! initial materialization are not part of the measured refresh, matching
//! the paper's setup where the view already exists); [`FigureSpec`] declares
//! a figure's view, workload and strategy set; [`run_figure`] produces the
//! measured series.

pub mod criterion_common;

use gpivot_core::maintain::view::MaterializedView;
use gpivot_core::{SourceDeltas, Strategy};
use gpivot_storage::Catalog;
use gpivot_tpch::{
    delete_fraction, generate, insert_new_rows, insert_updates_only, views, TpchConfig,
};
use std::time::{Duration, Instant};

/// Delta fractions (of `lineitem`) swept by every figure, mirroring the
/// paper's x-axis of "percentage of change on the Lineitem table".
pub const FRACTIONS: [f64; 5] = [0.001, 0.005, 0.01, 0.02, 0.05];

/// Default scale factor for the harness (1.0 ≈ 15k orders / ~40k lineitems;
/// the laptop-scale stand-in for the paper's TPC-H SF 1.0).
pub const DEFAULT_SCALE: f64 = 1.0;

/// Build the benchmark catalog at a scale factor.
pub fn bench_catalog(scale: f64) -> Catalog {
    generate(&TpchConfig {
        empty_order_fraction: 0.25,
        ..TpchConfig::scale(scale)
    })
}

/// The workload shapes of §7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Delete a fraction of lineitem (Figures 33, 37, 40).
    Delete,
    /// Inserts that only update existing view rows (Figure 34).
    InsertUpdates,
    /// Inserts that only create new view rows (Figures 35, 38*, 41).
    InsertNew,
}

impl Workload {
    /// Generate the deltas for this workload at a fraction.
    pub fn deltas(&self, catalog: &Catalog, fraction: f64, seed: u64) -> SourceDeltas {
        match self {
            Workload::Delete => delete_fraction(catalog, "lineitem", fraction, seed),
            Workload::InsertUpdates => insert_updates_only(catalog, fraction, seed),
            Workload::InsertNew => insert_new_rows(catalog, fraction, seed),
        }
    }

    /// Label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Delete => "delete",
            Workload::InsertUpdates => "insert(update-only)",
            Workload::InsertNew => "insert(new-rows)",
        }
    }
}

/// A catalog + compiled materialized view, ready for timed refreshes.
pub struct PreparedView {
    catalog: Catalog,
    view: MaterializedView,
}

impl PreparedView {
    /// Compile + materialize (untimed).
    pub fn new(
        catalog: Catalog,
        plan: gpivot_algebra::Plan,
        strategy: Strategy,
    ) -> gpivot_core::Result<Self> {
        let view = MaterializedView::create("bench", plan, strategy, &catalog)?;
        Ok(PreparedView { catalog, view })
    }

    /// The pre-state catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Rows currently materialized.
    pub fn view_len(&self) -> usize {
        self.view.len()
    }

    /// One timed maintenance run on a fresh copy of the view (the catalog
    /// stays at the pre-state, so runs are independent and repeatable).
    pub fn timed_run(&self, deltas: &SourceDeltas) -> gpivot_core::Result<Duration> {
        let mut view = self.view.clone();
        let start = Instant::now();
        view.maintain(&self.catalog, deltas)?;
        Ok(start.elapsed())
    }

    /// Untimed run returning the refreshed view copy (for verification).
    pub fn run(&self, deltas: &SourceDeltas) -> gpivot_core::Result<MaterializedView> {
        let mut view = self.view.clone();
        view.maintain(&self.catalog, deltas)?;
        Ok(view)
    }
}

/// Declaration of one paper figure.
pub struct FigureSpec {
    /// Figure number in the paper.
    pub figure: u32,
    /// Human title.
    pub title: &'static str,
    /// View plan factory.
    pub view: fn() -> gpivot_algebra::Plan,
    /// Workload shape.
    pub workload: Workload,
    /// Strategies compared, in the paper's order.
    pub strategies: &'static [Strategy],
}

/// All evaluation figures of the paper, in order.
pub fn figure_specs() -> Vec<FigureSpec> {
    use Strategy::*;
    fn v1() -> gpivot_algebra::Plan {
        views::view1()
    }
    fn v2() -> gpivot_algebra::Plan {
        views::view2(views::VIEW2_THRESHOLD)
    }
    fn v3() -> gpivot_algebra::Plan {
        views::view3()
    }
    vec![
        FigureSpec {
            figure: 33,
            title: "View (1), deletion: recompute vs insert/delete vs update rules",
            view: v1,
            workload: Workload::Delete,
            strategies: &[Recompute, InsertDelete, PivotUpdate],
        },
        FigureSpec {
            figure: 34,
            title: "View (1), insertion causing only view updates",
            view: v1,
            workload: Workload::InsertUpdates,
            strategies: &[Recompute, InsertDelete, PivotUpdate],
        },
        FigureSpec {
            figure: 35,
            title: "View (1), insertion causing only view inserts",
            view: v1,
            workload: Workload::InsertNew,
            strategies: &[Recompute, InsertDelete, PivotUpdate],
        },
        FigureSpec {
            figure: 37,
            title: "View (2), deletion: + select-pushdown vs combined σ/GPIVOT rules",
            view: v2,
            workload: Workload::Delete,
            strategies: &[
                Recompute,
                InsertDelete,
                SelectPushdownUpdate,
                SelectPivotUpdate,
            ],
        },
        FigureSpec {
            figure: 38,
            title: "View (2), insertion",
            view: v2,
            workload: Workload::InsertNew,
            strategies: &[
                Recompute,
                InsertDelete,
                SelectPushdownUpdate,
                SelectPivotUpdate,
            ],
        },
        FigureSpec {
            figure: 40,
            title: "View (3), deletion: recompute vs GROUPBY-insdel vs combined rules",
            view: v3,
            workload: Workload::Delete,
            strategies: &[Recompute, GroupByInsDel, GroupPivotUpdate],
        },
        FigureSpec {
            figure: 41,
            title: "View (3), insertion",
            view: v3,
            workload: Workload::InsertNew,
            strategies: &[Recompute, GroupByInsDel, GroupPivotUpdate],
        },
    ]
}

/// One measured series cell.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub fraction: f64,
    pub strategy: Strategy,
    pub duration: Duration,
    pub delta_rows: u64,
}

/// Run one figure: for each fraction × strategy, the median of `repeats`
/// timed maintenance runs.
pub fn run_figure(
    spec: &FigureSpec,
    catalog: &Catalog,
    fractions: &[f64],
    repeats: usize,
) -> gpivot_core::Result<Vec<Measurement>> {
    let mut out = Vec::new();
    for strategy in spec.strategies {
        let prepared = PreparedView::new(catalog.clone(), (spec.view)(), *strategy)?;
        for &fraction in fractions {
            let deltas = spec
                .workload
                .deltas(catalog, fraction, 0xF16 + spec.figure as u64);
            let mut times: Vec<Duration> = (0..repeats.max(1))
                .map(|_| prepared.timed_run(&deltas))
                .collect::<gpivot_core::Result<_>>()?;
            times.sort();
            out.push(Measurement {
                fraction,
                strategy: *strategy,
                duration: times[times.len() / 2],
                delta_rows: deltas.total_changes(),
            });
        }
    }
    Ok(out)
}

/// Render measurements as CSV (`figure,workload,fraction,strategy,ms,delta_rows`)
/// for plotting.
pub fn render_csv(spec: &FigureSpec, measurements: &[Measurement]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("figure,workload,fraction,strategy,ms,delta_rows\n");
    for m in measurements {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.4},{}",
            spec.figure,
            spec.workload.label(),
            m.fraction,
            m.strategy.id(),
            m.duration.as_secs_f64() * 1e3,
            m.delta_rows,
        );
    }
    out
}

/// Render measurements as the paper-style series table (rows = fractions,
/// columns = strategies, cells = seconds).
pub fn render_table(spec: &FigureSpec, measurements: &[Measurement]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Figure {}: {}", spec.figure, spec.title);
    let _ = writeln!(
        out,
        "workload: {}, x-axis: fraction of lineitem changed",
        spec.workload.label()
    );
    let _ = write!(out, "{:>10}", "fraction");
    for s in spec.strategies {
        let _ = write!(out, " {:>24}", s.id());
    }
    let _ = writeln!(out);
    let mut fractions: Vec<f64> = measurements.iter().map(|m| m.fraction).collect();
    fractions.sort_by(|a, b| a.total_cmp(b));
    fractions.dedup();
    for f in fractions {
        let _ = write!(out, "{:>9.2}%", f * 100.0);
        for s in spec.strategies {
            let m = measurements
                .iter()
                .find(|m| m.fraction == f && m.strategy == *s)
                .expect("measured");
            let _ = write!(out, " {:>22.3}ms", m.duration.as_secs_f64() * 1e3);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_view_timed_run_is_repeatable() {
        let catalog = bench_catalog(0.02);
        let p = PreparedView::new(catalog.clone(), views::view1(), Strategy::PivotUpdate).unwrap();
        let deltas = Workload::Delete.deltas(&catalog, 0.01, 1);
        let before = p.view_len();
        let _ = p.timed_run(&deltas).unwrap();
        // The prepared view itself is untouched between runs.
        assert_eq!(p.view_len(), before);
    }

    #[test]
    fn figure_specs_cover_all_seven_figures() {
        let figs: Vec<u32> = figure_specs().iter().map(|s| s.figure).collect();
        assert_eq!(figs, vec![33, 34, 35, 37, 38, 40, 41]);
    }

    #[test]
    fn csv_rendering() {
        let catalog = bench_catalog(0.02);
        let specs = figure_specs();
        let m = run_figure(&specs[0], &catalog, &[0.01], 1).unwrap();
        let csv = render_csv(&specs[0], &m);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "figure,workload,fraction,strategy,ms,delta_rows"
        );
        assert_eq!(csv.lines().count(), 1 + m.len());
        assert!(csv.contains("33,delete,0.01,recompute,"));
    }

    #[test]
    fn run_figure_smoke() {
        let catalog = bench_catalog(0.02);
        let specs = figure_specs();
        let m = run_figure(&specs[0], &catalog, &[0.01], 1).unwrap();
        assert_eq!(m.len(), 3); // three strategies × one fraction
        let table = render_table(&specs[0], &m);
        assert!(table.contains("Figure 33"));
        assert!(table.contains("recompute"));
    }
}
