//! Criterion glue shared by the per-figure bench targets.
//!
//! Each paper figure becomes one Criterion benchmark group; within it,
//! every (strategy, delta-fraction) cell is one benchmark. Compilation and
//! initial materialization happen once per strategy outside the measured
//! loop; each sample refreshes a fresh clone of the materialized view, so
//! samples are independent.

use crate::{FigureSpec, PreparedView, Workload};
use criterion::{BenchmarkId, Criterion};
use gpivot_storage::Catalog;

/// Delta fractions benchmarked per figure (a subset of the full sweep to
/// keep Criterion runtimes reasonable).
pub const BENCH_FRACTIONS: [f64; 3] = [0.005, 0.01, 0.05];

/// Scale factor for Criterion runs.
pub const BENCH_SCALE: f64 = 0.5;

/// Register one figure's benchmarks.
pub fn bench_figure(c: &mut Criterion, spec: &FigureSpec, catalog: &Catalog) {
    let mut group = c.benchmark_group(format!("fig{}", spec.figure));
    group.sample_size(10);
    for &strategy in spec.strategies {
        let prepared = PreparedView::new(catalog.clone(), (spec.view)(), strategy)
            .expect("strategy applicable to this figure's view");
        for &fraction in &BENCH_FRACTIONS {
            let deltas = spec
                .workload
                .deltas(catalog, fraction, 0xBE * spec.figure as u64);
            group.bench_with_input(
                BenchmarkId::new(strategy.id(), format!("{:.1}%", fraction * 100.0)),
                &deltas,
                |b, deltas| {
                    b.iter(|| prepared.timed_run(deltas).expect("maintenance succeeds"));
                },
            );
        }
    }
    group.finish();
}

/// Entry point used by each per-figure bench target.
pub fn run_figure_bench(figure: u32) {
    let mut criterion = Criterion::default().configure_from_args();
    let catalog = crate::bench_catalog(BENCH_SCALE);
    let specs = crate::figure_specs();
    let spec = specs
        .iter()
        .find(|s| s.figure == figure)
        .expect("known figure");
    bench_figure(&mut criterion, spec, &catalog);
    criterion.final_summary();
}

// (Workload is re-exported from the crate root for the ablation bench.)
#[allow(unused_imports)]
use Workload as _;
