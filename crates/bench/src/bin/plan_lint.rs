//! Static plan lint over every shipped view definition.
//!
//! Runs the `gpivot-analyze` analyzer over the paper's three TPC-H
//! evaluation views and the plans the bundled examples register
//! (Figure 1's ItemInfo pivot, Figure 2's payment crosstab), then emits
//! one JSON document with the per-plan reports. The CI `plan-lint` job
//! gates on the exit code: any `Error`-severity diagnostic fails the run.
//!
//! ```text
//! plan-lint [--out PATH] [--quiet]
//!
//!   --out    output path (default PLAN_LINT.json)
//!   --quiet  suppress the rendered per-plan trees on stderr
//! ```

use gpivot_algebra::{PivotSpec, Plan, PlanBuilder};
use gpivot_analyze::{analyze, AnalysisReport};
use gpivot_storage::{Catalog, DataType, Schema, Table, Value};
use gpivot_tpch::{gen, views};
use std::fmt::Write as _;
use std::sync::Arc;

fn main() {
    let mut out_path = String::from("PLAN_LINT.json");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: plan-lint [--out PATH] [--quiet]");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    // Schema-only catalogs: the analyzer only reads schemas, so empty
    // tables are enough — no data generation.
    let tpch = tpch_catalog();
    let examples = example_catalog();

    let cases: Vec<(&str, Plan, &Catalog)> = vec![
        ("tpch/view1", views::view1(), &tpch),
        ("tpch/view2", views::view2(views::VIEW2_THRESHOLD), &tpch),
        ("tpch/view3", views::view3(), &tpch),
        ("examples/quickstart", quickstart_view(), &examples),
        ("examples/auction_crosstab", figure2_view(), &examples),
    ];

    let mut plans_json = String::new();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    let mut first = true;
    for (name, plan, catalog) in &cases {
        let report: AnalysisReport = analyze(plan, *catalog);
        let errors = report.errors().count();
        let warnings = report.warnings().count();
        total_errors += errors;
        total_warnings += warnings;
        eprintln!(
            "{name}: {} nodes, {} pivots, {errors} errors, {warnings} warnings",
            report.node_count, report.pivot_count,
        );
        if !quiet && !report.is_clean() {
            eprintln!("{}", report.render(plan));
        }
        if !first {
            plans_json.push_str(",\n");
        }
        first = false;
        let _ = write!(
            plans_json,
            "    {{\"name\": \"{name}\", \"report\": {}}}",
            report.to_json()
        );
    }

    let doc = format!(
        "{{\n  \"bench\": \"plan_lint\",\n  \"plan_count\": {},\n  \
         \"total_errors\": {total_errors},\n  \"total_warnings\": {total_warnings},\n  \
         \"clean\": {},\n  \"plans\": [\n{plans_json}\n  ]\n}}\n",
        cases.len(),
        total_errors == 0,
    );
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| die(&format!("write {out_path}: {e}")));
    eprintln!("wrote {out_path}");
    if total_errors > 0 {
        eprintln!("plan lint FAILED: {total_errors} error-severity diagnostics");
        std::process::exit(1);
    }
}

/// The TPC-H table schemas the evaluation views read, with no rows.
fn tpch_catalog() -> Catalog {
    let mut c = Catalog::new();
    for (name, schema) in [
        ("customer", gen::customer_schema()),
        ("orders", gen::orders_schema()),
        ("lineitem", gen::lineitem_schema()),
        ("part", gen::part_schema()),
    ] {
        c.register(name, Table::new(schema))
            .unwrap_or_else(|e| die(&format!("register {name}: {e}")));
    }
    c
}

/// Schemas for the plans the examples register (Figure 1 / Figure 2).
fn example_catalog() -> Catalog {
    let iteminfo = Schema::from_pairs_keyed(
        &[
            ("AuctionID", DataType::Int),
            ("Attribute", DataType::Str),
            ("Value", DataType::Str),
        ],
        &["AuctionID", "Attribute"],
    )
    .expect("iteminfo schema");
    let payment = Schema::from_pairs_keyed(
        &[
            ("ID", DataType::Int),
            ("Payment", DataType::Str),
            ("Price", DataType::Int),
        ],
        &["ID", "Payment"],
    )
    .expect("payment schema");
    let product = Schema::from_pairs_keyed(
        &[
            ("PID", DataType::Int),
            ("Manu", DataType::Str),
            ("Type", DataType::Str),
        ],
        &["PID"],
    )
    .expect("product schema");
    let mut c = Catalog::new();
    for (name, schema) in [
        ("iteminfo", iteminfo),
        ("payment", payment),
        ("product", product),
    ] {
        c.register(name, Table::new(Arc::new(schema)))
            .unwrap_or_else(|e| die(&format!("register {name}: {e}")));
    }
    c
}

/// The quickstart example's view: Figure 1's ItemInfo pivot.
fn quickstart_view() -> Plan {
    Plan::scan("iteminfo").gpivot(PivotSpec::simple(
        "Attribute",
        "Value",
        vec![Value::str("Manufacturer"), Value::str("Type")],
    ))
}

/// The auction_crosstab example's view: Figure 2's two-level crosstab.
fn figure2_view() -> Plan {
    PlanBuilder::scan("payment")
        .gpivot(PivotSpec::simple(
            "Payment",
            "Price",
            vec![Value::str("Credit"), Value::str("ByAir")],
        ))
        .join(PlanBuilder::scan("product"), vec![("ID", "PID")])
        .group_by(
            &["Manu", "Type"],
            vec![
                gpivot_algebra::AggSpec::sum("Credit**Price", "CreditSum"),
                gpivot_algebra::AggSpec::sum("ByAir**Price", "ByAirSum"),
            ],
        )
        .gpivot(PivotSpec::new(
            vec!["Type"],
            vec!["CreditSum", "ByAirSum"],
            vec![vec![Value::str("TV")], vec![Value::str("VCR")]],
        ))
        .build()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}
