//! Regenerate the paper's evaluation figures (§7) as printed series.
//!
//! ```text
//! figures [FIG ...] [--scale SF] [--repeats N] [--verify] [--csv]
//!
//!   FIG        figure number(s): 33 34 35 37 38 40 41 (default: all)
//!   --scale    generator scale factor (default 1.0 ≈ 15k orders)
//!   --repeats  timed runs per cell, median reported (default 3)
//!   --verify   additionally check every strategy against recomputation
//!   --csv      emit CSV rows instead of the paper-style tables
//! ```

use gpivot_bench::{
    bench_catalog, figure_specs, render_csv, render_table, run_figure, PreparedView, DEFAULT_SCALE,
    FRACTIONS,
};
use gpivot_core::Strategy;

fn main() {
    let mut figures: Vec<u32> = Vec::new();
    let mut scale = DEFAULT_SCALE;
    let mut repeats = 3usize;
    let mut verify = false;
    let mut csv = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a number"));
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--repeats needs an integer"));
            }
            "--verify" => verify = true,
            "--csv" => csv = true,
            "--help" | "-h" => {
                println!("usage: figures [FIG ...] [--scale SF] [--repeats N] [--verify] [--csv]");
                return;
            }
            other => match other.parse::<u32>() {
                Ok(f) => figures.push(f),
                Err(_) => die(&format!("unknown argument `{other}`")),
            },
        }
    }

    let specs = figure_specs();
    let selected: Vec<_> = specs
        .iter()
        .filter(|s| figures.is_empty() || figures.contains(&s.figure))
        .collect();
    if selected.is_empty() {
        die("no matching figures; valid: 33 34 35 37 38 40 41");
    }

    eprintln!("generating TPC-H-shaped data at scale {scale} ...");
    let catalog = bench_catalog(scale);
    eprintln!(
        "  lineitem: {} rows, orders: {} rows, customer: {} rows",
        catalog.table("lineitem").map(|t| t.len()).unwrap_or(0),
        catalog.table("orders").map(|t| t.len()).unwrap_or(0),
        catalog.table("customer").map(|t| t.len()).unwrap_or(0),
    );

    for spec in selected {
        eprintln!(
            "running figure {} ({} strategies × {} fractions, {} repeats) ...",
            spec.figure,
            spec.strategies.len(),
            FRACTIONS.len(),
            repeats
        );
        let measurements = run_figure(spec, &catalog, &FRACTIONS, repeats)
            .unwrap_or_else(|e| die(&format!("figure {}: {e}", spec.figure)));
        if csv {
            print!("{}", render_csv(spec, &measurements));
        } else {
            println!("{}", render_table(spec, &measurements));
        }

        if verify {
            verify_figure(spec, &catalog);
        }
    }
}

fn verify_figure(spec: &gpivot_bench::FigureSpec, catalog: &gpivot_storage::Catalog) {
    for &strategy in spec.strategies {
        let deltas = spec.workload.deltas(catalog, 0.01, 99);
        let prepared = PreparedView::new(catalog.clone(), (spec.view)(), strategy)
            .unwrap_or_else(|e| die(&format!("prepare {strategy}: {e}")));
        let refreshed = prepared
            .run(&deltas)
            .unwrap_or_else(|e| die(&format!("refresh {strategy}: {e}")));
        // Compare against recomputation on the post-state.
        let recompute =
            PreparedView::new(catalog.clone(), (spec.view)(), strategy).expect("prepare recompute");
        let _ = recompute;
        let mut post = catalog.clone();
        for t in deltas.tables() {
            post.apply_delta(t, deltas.delta(t).unwrap()).unwrap();
        }
        let fresh = gpivot_exec::Executor::new()
            .run(&refreshed_plan(&refreshed), &post)
            .unwrap();
        assert!(
            refreshed.table().bag_eq(&fresh),
            "figure {} strategy {strategy} diverged",
            spec.figure
        );
        eprintln!("  verified: {strategy}");
    }
    let _ = Strategy::ALL;
}

fn refreshed_plan(view: &gpivot_core::maintain::view::MaterializedView) -> gpivot_algebra::Plan {
    view.normalized().plan.clone()
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}
