//! Per-phase maintenance profile over the paper's three evaluation views.
//!
//! For each view family × workload (insert-new-rows and delete), runs the
//! view's best incremental strategy and full recomputation through the
//! complete refresh cycle (propagate + apply + stage + commit) with a
//! [`tracing::TimingSubscriber`] installed, and emits one JSON document
//! with per-phase p50/p95/max wall-clock timings and the
//! incremental-vs-recompute speedup. A second section times the
//! recompute-strategy refresh (the path that runs whole plans on the
//! executor) on 1 thread vs `--threads` threads — the intra-query
//! parallelism numbers for the partitioned kernels. A third section
//! (`sql_serve`) times the SQL frontend: parsing each paper view's dialect
//! text, answering the query from the matching materialized view via the
//! rewriter, and the fallback of executing the same plan against the base
//! tables (the rewrite-miss path). A fourth section (`recovery`) profiles
//! the durability layer: checkpoint write time, restore-from-checkpoint
//! time, write-ahead-log tail replay time, and end-to-end cold-recovery
//! time for a durable service holding the three views plus several
//! committed epochs. A fifth section (`columnar`) compares the
//! row-at-a-time reference kernels against the vectorized columnar
//! kernels (`Executor::with_columnar`) on the recompute-refresh path, per
//! view × insert/delete workload — the two engines produce bit-identical
//! results, so this is a pure kernel-speed comparison. A sixth section
//! (`sharding`) profiles the scale-out serve tier: the three views
//! registered on a [`ShardedService`] at 1/2/4 shards (all three are
//! proven shard-safe by the analyzer, so they place sharded), fed the
//! same churn-heavy epochs, reporting per-epoch ingest fan-out and
//! refresh medians, the N-shard speedup over the single-shard baseline,
//! and how many heavy keys the skew handler promoted along the way.
//!
//! ```text
//! profile [--smoke] [--out PATH] [--scale SF] [--repeats N] [--threads N]
//!
//!   --smoke    tiny data + few repeats (CI gate: seconds, not minutes)
//!   --out      output path (default BENCH_pr9.json)
//!   --scale    override the generator scale factor
//!   --repeats  override timed runs per cell (median reported)
//!   --threads  worker threads for the parallel comparison (default 4)
//! ```

use gpivot_bench::{bench_catalog, Workload};
use gpivot_core::{SourceDeltas, Strategy, ViewManager};
use gpivot_exec::Executor;
use gpivot_sql::{parse_query, GpivotService, SqlOutcome};
use gpivot_storage::Catalog;
use gpivot_tpch::views;
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tracing::TimingSubscriber;

/// One view family: the paper's evaluation views with their best
/// incremental strategy (the one each figure shows winning).
struct Family {
    name: &'static str,
    plan: fn() -> gpivot_algebra::Plan,
    incremental: Strategy,
}

const FAMILIES: [Family; 3] = [
    Family {
        name: "view1",
        plan: views::view1,
        incremental: Strategy::PivotUpdate,
    },
    Family {
        name: "view2",
        plan: view2_plan,
        incremental: Strategy::SelectPivotUpdate,
    },
    Family {
        name: "view3",
        plan: views::view3,
        incremental: Strategy::GroupPivotUpdate,
    },
];

fn view2_plan() -> gpivot_algebra::Plan {
    views::view2(views::VIEW2_THRESHOLD)
}

/// The phase spans the maintenance layer emits, in refresh-cycle order.
const PHASES: [&str; 4] = [
    "maintain.propagate",
    "maintain.apply",
    "maintain.stage",
    "maintain.commit",
];

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_pr9.json");
    let mut scale: Option<f64> = None;
    let mut repeats: Option<usize> = None;
    let mut threads = 4usize;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--scale" => {
                scale = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--scale needs a number")),
                );
            }
            "--repeats" => {
                repeats = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| die("--repeats needs an integer")),
                );
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs an integer"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: profile [--smoke] [--out PATH] [--scale SF] [--repeats N] [--threads N]"
                );
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let scale = scale.unwrap_or(if smoke { 0.02 } else { 0.2 });
    let repeats = repeats.unwrap_or(if smoke { 2 } else { 5 });
    let fraction = 0.01;

    eprintln!("generating TPC-H-shaped data at scale {scale} ...");
    let catalog = bench_catalog(scale);
    eprintln!(
        "  lineitem: {} rows; {} repeats per cell, delta fraction {fraction}",
        catalog.table("lineitem").map(|t| t.len()).unwrap_or(0),
        repeats,
    );

    let mut results = String::new();
    let mut first = true;
    for family in &FAMILIES {
        for (workload, wl_name) in [
            (Workload::InsertNew, "insert"),
            (Workload::Delete, "delete"),
        ] {
            let deltas = workload.deltas(&catalog, fraction, 0xBEEF);
            eprintln!(
                "profiling {} / {wl_name} ({} delta rows) ...",
                family.name,
                deltas.total_changes()
            );
            let inc = run_cell(&catalog, family, family.incremental, &deltas, repeats);
            let rec = run_cell(&catalog, family, Strategy::Recompute, &deltas, repeats);
            let speedup = if inc.median.as_secs_f64() > 0.0 {
                rec.median.as_secs_f64() / inc.median.as_secs_f64()
            } else {
                f64::MAX
            };
            eprintln!(
                "  incremental {:.3}ms vs recompute {:.3}ms -> {speedup:.2}x",
                ms(inc.median),
                ms(rec.median)
            );

            if !first {
                results.push_str(",\n");
            }
            first = false;
            let _ = write!(
                results,
                "    {{\n      \"view\": \"{}\",\n      \"workload\": \"{wl_name}\",\n      \
                 \"strategy\": \"{}\",\n      \"delta_rows\": {},\n      \
                 \"incremental_ms\": {:.4},\n      \"recompute_ms\": {:.4},\n      \
                 \"speedup\": {:.4},\n      \"phases\": {{\n{}\n      }}\n    }}",
                family.name,
                family.incremental.id(),
                deltas.total_changes(),
                ms(inc.median),
                ms(rec.median),
                speedup,
                phases_json(&inc.timings),
            );
        }
    }

    // Intra-query parallelism: recompute-strategy refreshes (whole plans on
    // the executor) at 1 thread vs `threads` threads, same workload.
    let mut parallel = String::new();
    let mut first_par = true;
    for family in &FAMILIES {
        let deltas = Workload::InsertNew.deltas(&catalog, fraction, 0xBEEF);
        eprintln!(
            "parallel refresh {} (1 vs {threads} threads) ...",
            family.name
        );
        let one = run_parallel_cell(&catalog, family, &deltas, repeats, 1);
        let many = run_parallel_cell(&catalog, family, &deltas, repeats, threads);
        let speedup = if many.as_secs_f64() > 0.0 {
            one.as_secs_f64() / many.as_secs_f64()
        } else {
            f64::MAX
        };
        eprintln!(
            "  1 thread {:.3}ms vs {threads} threads {:.3}ms -> {speedup:.2}x",
            ms(one),
            ms(many)
        );
        if !first_par {
            parallel.push_str(",\n");
        }
        first_par = false;
        let _ = write!(
            parallel,
            "    {{\n      \"view\": \"{}\",\n      \"threads\": {threads},\n      \
             \"refresh_1t_ms\": {:.4},\n      \"refresh_nt_ms\": {:.4},\n      \
             \"parallel_speedup\": {speedup:.4}\n    }}",
            family.name,
            ms(one),
            ms(many),
        );
    }

    // Row vs columnar kernels: recompute-strategy refreshes (whole plans —
    // Join/GroupBy/GPivot — on the executor) with the row-at-a-time
    // reference kernels vs the vectorized columnar kernels, per view ×
    // workload. Output is bit-identical either way (the equivalence suite
    // pins that), so the ratio is pure kernel speed.
    let mut columnar = String::new();
    let mut first_col = true;
    for family in &FAMILIES {
        for (workload, wl_name) in [
            (Workload::InsertNew, "insert"),
            (Workload::Delete, "delete"),
        ] {
            let deltas = workload.deltas(&catalog, fraction, 0xBEEF);
            eprintln!(
                "columnar refresh {} / {wl_name} (row vs columnar) ...",
                family.name
            );
            let rowk = run_columnar_cell(&catalog, family, &deltas, repeats, false);
            let colk = run_columnar_cell(&catalog, family, &deltas, repeats, true);
            let speedup = if colk.as_secs_f64() > 0.0 {
                rowk.as_secs_f64() / colk.as_secs_f64()
            } else {
                f64::MAX
            };
            eprintln!(
                "  row {:.3}ms vs columnar {:.3}ms -> {speedup:.2}x",
                ms(rowk),
                ms(colk)
            );
            if !first_col {
                columnar.push_str(",\n");
            }
            first_col = false;
            let _ = write!(
                columnar,
                "    {{\n      \"view\": \"{}\",\n      \"workload\": \"{wl_name}\",\n      \
                 \"row_ms\": {:.4},\n      \"columnar_ms\": {:.4},\n      \
                 \"columnar_speedup\": {speedup:.4}\n    }}",
                family.name,
                ms(rowk),
                ms(colk),
            );
        }
    }

    // SQL serve path: register the three views through the SQL frontend,
    // then time (a) parsing the view's own dialect text, (b) answering that
    // query from the materialized view via the rewriter, and (c) running
    // the same plan against the base tables — the rewrite-miss fallback.
    let mut sql_serve = String::new();
    let svc = GpivotService::new(catalog.clone());
    for family in &FAMILIES {
        let ddl = format!(
            "CREATE MATERIALIZED VIEW {} AS {}",
            family.name,
            (family.plan)().to_sql_dialect()
        );
        svc.execute_sql(&ddl)
            .unwrap_or_else(|e| die(&format!("create {} via sql: {e}", family.name)));
    }
    let mut first_sql = true;
    for family in &FAMILIES {
        let sql = (family.plan)().to_sql_dialect();
        eprintln!("sql serve {} (view vs base tables) ...", family.name);
        let parse_med = median(repeats, || {
            let t0 = Instant::now();
            let _ = parse_query(&sql)
                .unwrap_or_else(|e| die(&format!("parse {} dialect: {e}", family.name)));
            t0.elapsed()
        });
        let view_med = median(repeats, || {
            let t0 = Instant::now();
            match svc.execute_sql(&sql) {
                Ok(SqlOutcome::Rows { used_view, .. }) => {
                    if used_view.as_deref() != Some(family.name) {
                        die(&format!("rewrite missed view {}", family.name));
                    }
                }
                other => die(&format!("sql serve {}: {other:?}", family.name)),
            }
            t0.elapsed()
        });
        let plan = parse_query(&sql)
            .unwrap_or_else(|e| die(&format!("parse {} dialect: {e}", family.name)));
        let base_med = median(repeats, || {
            let snapshot = svc.service().snapshot();
            let manager = snapshot.manager();
            let t0 = Instant::now();
            manager
                .executor()
                .run(&plan, manager.catalog())
                .unwrap_or_else(|e| die(&format!("base execute {}: {e}", family.name)));
            t0.elapsed()
        });
        let speedup = if view_med.as_secs_f64() > 0.0 {
            base_med.as_secs_f64() / view_med.as_secs_f64()
        } else {
            f64::MAX
        };
        eprintln!(
            "  parse {:.3}ms; from view {:.3}ms vs base {:.3}ms -> {speedup:.2}x",
            ms(parse_med),
            ms(view_med),
            ms(base_med)
        );
        if !first_sql {
            sql_serve.push_str(",\n");
        }
        first_sql = false;
        let _ = write!(
            sql_serve,
            "    {{\n      \"view\": \"{}\",\n      \"parse_ms\": {:.4},\n      \
             \"serve_from_view_ms\": {:.4},\n      \"base_execute_ms\": {:.4},\n      \
             \"serve_speedup\": {speedup:.4}\n    }}",
            family.name,
            ms(parse_med),
            ms(view_med),
            ms(base_med),
        );
    }

    // Durability: checkpoint write, restore-from-checkpoint, log-tail
    // replay, and cold recovery over a durable service holding the three
    // views plus several committed epochs. `restore_ms` opens a directory
    // whose log tail is empty (checkpoint only); `cold_recovery_ms` opens
    // one with `tail_epochs` un-checkpointed epochs in the log, so the
    // difference is the replay cost.
    let recovery = profile_recovery(&catalog, smoke, repeats, fraction);

    // Scale-out serve tier: the three views on a sharded service at
    // 1/2/4 shards, same churn workload per epoch.
    let sharding = profile_sharding(&catalog, repeats, fraction);

    // The parallel numbers only mean something relative to the host: on a
    // single-core machine extra threads are pure overhead and the speedup
    // degenerates to ≤1.0.
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = format!(
        "{{\n  \"bench\": \"pr9_profile\",\n  \"mode\": \"{}\",\n  \"scale\": {scale},\n  \
         \"fraction\": {fraction},\n  \"repeats\": {repeats},\n  \"host_cpus\": {host_cpus},\n  \
         \"results\": [\n{results}\n  ],\n  \
         \"parallel\": [\n{parallel}\n  ],\n  \
         \"columnar\": [\n{columnar}\n  ],\n  \
         \"sql_serve\": [\n{sql_serve}\n  ],\n  \
         \"recovery\": {recovery},\n  \
         \"sharding\": {sharding}\n}}\n",
        if smoke { "smoke" } else { "full" },
    );
    std::fs::write(&out_path, &doc).unwrap_or_else(|e| die(&format!("write {out_path}: {e}")));
    eprintln!("wrote {out_path}");
}

/// Median refresh-cycle time plus the phase timings of one strategy cell.
struct Cell {
    median: Duration,
    timings: std::sync::Arc<TimingSubscriber>,
}

/// Run `repeats` full refresh cycles (maintain + stage + commit) of one
/// view/strategy against pristine clones, collecting phase spans.
fn run_cell(
    catalog: &Catalog,
    family: &Family,
    strategy: Strategy,
    deltas: &SourceDeltas,
    repeats: usize,
) -> Cell {
    let mut mgr = ViewManager::new(catalog.clone());
    mgr.register_view_with("v", (family.plan)(), strategy)
        .unwrap_or_else(|e| die(&format!("compile {}/{strategy}: {e}", family.name)));
    let timings = TimingSubscriber::shared();
    let mut times: Vec<Duration> = Vec::with_capacity(repeats);
    for _ in 0..repeats.max(1) {
        // Each repeat starts from the pristine pre-state (manager clone),
        // so runs are independent and the phase samples comparable.
        let mut m = mgr.clone();
        let took = tracing::with_collector(timings.clone(), || {
            let t0 = Instant::now();
            m.maintain_view("v", deltas)
                .unwrap_or_else(|e| die(&format!("maintain {}/{strategy}: {e}", family.name)));
            let staged = m
                .stage_commit(deltas)
                .unwrap_or_else(|e| die(&format!("stage {}/{strategy}: {e}", family.name)));
            m.apply_staged(staged);
            t0.elapsed()
        });
        times.push(took);
    }
    times.sort();
    Cell {
        median: times[times.len() / 2],
        timings,
    }
}

/// Median full-recompute refresh time of one view on `threads` executor
/// threads.
fn run_parallel_cell(
    catalog: &Catalog,
    family: &Family,
    deltas: &SourceDeltas,
    repeats: usize,
    threads: usize,
) -> Duration {
    let mut mgr =
        ViewManager::new(catalog.clone()).with_exec(Executor::new().with_threads(threads));
    mgr.register_view_with("v", (family.plan)(), Strategy::Recompute)
        .unwrap_or_else(|e| die(&format!("compile {}/recompute: {e}", family.name)));
    let mut times: Vec<Duration> = Vec::with_capacity(repeats);
    for _ in 0..repeats.max(1) {
        let mut m = mgr.clone();
        let t0 = Instant::now();
        m.maintain_view("v", deltas)
            .unwrap_or_else(|e| die(&format!("maintain {}/recompute: {e}", family.name)));
        times.push(t0.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// Median full-recompute refresh time of one view on the row kernels
/// (`columnar = false`) or the vectorized columnar kernels (`true`),
/// single-threaded so the comparison isolates the kernel, not the pool.
fn run_columnar_cell(
    catalog: &Catalog,
    family: &Family,
    deltas: &SourceDeltas,
    repeats: usize,
    columnar: bool,
) -> Duration {
    let mut mgr =
        ViewManager::new(catalog.clone()).with_exec(Executor::new().with_columnar(columnar));
    mgr.register_view_with("v", (family.plan)(), Strategy::Recompute)
        .unwrap_or_else(|e| die(&format!("compile {}/recompute: {e}", family.name)));
    let mut times: Vec<Duration> = Vec::with_capacity(repeats);
    for _ in 0..repeats.max(1) {
        let mut m = mgr.clone();
        let t0 = Instant::now();
        m.maintain_view("v", deltas)
            .unwrap_or_else(|e| die(&format!("maintain {}/recompute: {e}", family.name)));
        times.push(t0.elapsed());
    }
    times.sort();
    times[times.len() / 2]
}

/// Profile the durability layer and return the `"recovery"` JSON object.
///
/// Builds a durable service in a temp directory, registers the three paper
/// views, commits a few insert epochs, and times: checkpoint writes on the
/// warmed state, reopening a directory with an empty log tail (pure
/// checkpoint restore), and reopening one whose tail holds `tail_epochs`
/// un-checkpointed epochs (cold recovery = restore + replay). Each epoch's
/// delta is generated against a shadow catalog that has absorbed the
/// previous ones, so the deltas stay valid as the base tables advance.
fn profile_recovery(catalog: &Catalog, smoke: bool, repeats: usize, fraction: f64) -> String {
    use gpivot_serve::{IngestOptions, ServeConfig, ViewService};
    let parse = |sql: &str| parse_query(sql).map_err(|e| e.to_string());
    let cfg = ServeConfig::default();
    let base = std::env::temp_dir().join(format!("gpivot-profile-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cold_dir = base.join("cold");
    let restore_dir = base.join("restore");

    let (pre_epochs, tail_epochs) = if smoke { (1u64, 2u64) } else { (2, 4) };
    eprintln!("recovery profile ({pre_epochs} checkpointed + {tail_epochs} tail epochs) ...");
    let (svc, _) = ViewService::open(&cold_dir, catalog.clone(), cfg.clone(), &parse)
        .unwrap_or_else(|e| die(&format!("recovery bootstrap: {e}")));
    for family in &FAMILIES {
        svc.register_view(family.name, (family.plan)())
            .unwrap_or_else(|e| die(&format!("recovery register {}: {e}", family.name)));
    }
    let mut shadow = catalog.clone();
    let mut commit_epoch = |seed: u64| {
        let deltas = Workload::InsertNew.deltas(&shadow, fraction, seed);
        for table in deltas.tables().map(str::to_string).collect::<Vec<_>>() {
            let delta = deltas.delta(&table).cloned().unwrap_or_default();
            shadow
                .apply_delta(&table, &delta)
                .unwrap_or_else(|e| die(&format!("recovery shadow apply: {e}")));
            svc.ingest_with(&table, delta, IngestOptions::blocking())
                .unwrap_or_else(|e| die(&format!("recovery ingest: {e}")));
        }
        svc.refresh_epoch()
            .unwrap_or_else(|e| die(&format!("recovery refresh: {e}")));
    };
    for i in 0..pre_epochs {
        commit_epoch(0xD00D + i);
    }
    // Checkpoint writes on the warmed state; each call rotates the log, so
    // the tail epochs below land after the final checkpoint.
    let mut ckpt_bytes = 0u64;
    let ckpt_med = median(repeats, || {
        let t0 = Instant::now();
        ckpt_bytes = svc
            .checkpoint()
            .unwrap_or_else(|e| die(&format!("recovery checkpoint: {e}")));
        t0.elapsed()
    });
    for i in 0..tail_epochs {
        commit_epoch(0xFEED + i);
    }
    // An equivalent directory with no log tail: restore cost alone.
    svc.save_to(&restore_dir)
        .unwrap_or_else(|e| die(&format!("recovery save_to: {e}")));
    drop(svc);

    let open_med = |dir: &std::path::Path| {
        median(repeats, || {
            let t0 = Instant::now();
            let (s, _) = ViewService::open(dir, catalog.clone(), cfg.clone(), &parse)
                .unwrap_or_else(|e| die(&format!("recovery reopen {}: {e}", dir.display())));
            let took = t0.elapsed();
            drop(s);
            took
        })
    };
    let restore = open_med(&restore_dir);
    let cold = open_med(&cold_dir);
    let (_svc, report) = ViewService::open(&cold_dir, catalog.clone(), cfg, &parse)
        .unwrap_or_else(|e| die(&format!("recovery report open: {e}")));
    let replay = cold.saturating_sub(restore);
    eprintln!(
        "  checkpoint {:.3}ms ({ckpt_bytes} bytes); restore {:.3}ms vs cold {:.3}ms \
         (replay ~{:.3}ms over {} records / {} epochs)",
        ms(ckpt_med),
        ms(restore),
        ms(cold),
        ms(replay),
        report.replayed_records,
        report.replayed_epochs,
    );
    let _ = std::fs::remove_dir_all(&base);
    format!(
        "{{\n    \"views\": {},\n    \"checkpointed_epochs\": {pre_epochs},\n    \
         \"tail_epochs\": {tail_epochs},\n    \"checkpoint_write_ms\": {:.4},\n    \
         \"checkpoint_bytes\": {ckpt_bytes},\n    \"restore_ms\": {:.4},\n    \
         \"log_replay_ms\": {:.4},\n    \"cold_recovery_ms\": {:.4},\n    \
         \"replayed_records\": {},\n    \"replayed_epochs\": {}\n  }}",
        FAMILIES.len(),
        ms(ckpt_med),
        ms(restore),
        ms(replay),
        ms(cold),
        report.replayed_records,
        report.replayed_epochs,
    )
}

/// Profile the sharded serve tier and return the `"sharding"` JSON object.
///
/// For each shard count, builds a [`ShardedService`] over a clone of the
/// bench catalog, registers the three paper views (all shard-safe, so
/// they place sharded whenever N > 1), then commits `repeats` epochs of
/// insert-plus-order-churn deltas — churn hammers a few custkeys, so with
/// a low heavy-key threshold the skew handler promotes keys mid-run —
/// timing the ingest fan-out and the parallel shard refresh per epoch.
/// `scaleout_speedup` is each N's median refresh over the 1-shard
/// baseline's.
fn profile_sharding(catalog: &Catalog, repeats: usize, fraction: f64) -> String {
    use gpivot_serve::{IngestOptions, ServeConfig, ShardedService};
    use gpivot_tpch::workload;

    const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
    const HEAVY_KEY_THRESHOLD: u64 = 4;

    let mut rows = String::new();
    let mut baseline_refresh: Option<Duration> = None;
    for shards in SHARD_COUNTS {
        eprintln!("sharded serve tier at {shards} shard(s) ...");
        let cfg = ServeConfig::builder()
            .workers(2)
            .shards(shards)
            .heavy_key_threshold(HEAVY_KEY_THRESHOLD)
            .build()
            .unwrap_or_else(|e| die(&format!("sharding config: {e}")));
        let svc = ShardedService::new(catalog.clone(), cfg);
        for family in &FAMILIES {
            svc.register_view(family.name, (family.plan)())
                .unwrap_or_else(|e| die(&format!("sharding register {}: {e}", family.name)));
        }
        let sharded_views = FAMILIES
            .iter()
            .filter(|f| svc.placement(f.name).is_some_and(|p| p.is_sharded()))
            .count();

        let mut shadow = catalog.clone();
        let mut ingest_times: Vec<Duration> = Vec::with_capacity(repeats);
        let mut refresh_times: Vec<Duration> = Vec::with_capacity(repeats);
        for i in 0..repeats.max(1) as u64 {
            let mut deltas = workload::insert_new_rows(&shadow, fraction, 0xACE0 + i);
            let churn = workload::order_churn(&shadow, fraction, 0xACE0 + i);
            for table in churn.tables().map(str::to_string).collect::<Vec<_>>() {
                deltas.absorb_delta(&table, churn.delta(&table).cloned().unwrap_or_default());
            }
            let tables: Vec<String> = deltas.tables().map(str::to_string).collect();
            let t0 = Instant::now();
            for table in &tables {
                let delta = deltas.delta(table).cloned().unwrap_or_default();
                svc.ingest_with(table, delta.clone(), IngestOptions::blocking())
                    .unwrap_or_else(|e| die(&format!("sharding ingest {table}: {e}")));
                shadow
                    .apply_delta(table, &delta)
                    .unwrap_or_else(|e| die(&format!("sharding shadow apply: {e}")));
            }
            ingest_times.push(t0.elapsed());
            let t1 = Instant::now();
            svc.refresh_epoch()
                .unwrap_or_else(|e| die(&format!("sharding refresh: {e}")));
            refresh_times.push(t1.elapsed());
        }
        ingest_times.sort();
        refresh_times.sort();
        let ingest = ingest_times[ingest_times.len() / 2];
        let refresh = refresh_times[refresh_times.len() / 2];
        let heavy = svc.heavy_keys().len();
        let base = *baseline_refresh.get_or_insert(refresh);
        let speedup = if refresh.as_secs_f64() > 0.0 {
            base.as_secs_f64() / refresh.as_secs_f64()
        } else {
            f64::MAX
        };
        eprintln!(
            "  ingest {:.3}ms, refresh {:.3}ms ({speedup:.2}x vs 1 shard), \
             {sharded_views}/3 views sharded, {heavy} heavy keys promoted",
            ms(ingest),
            ms(refresh)
        );
        if shards != SHARD_COUNTS[0] {
            rows.push_str(",\n");
        }
        let _ = write!(
            rows,
            "      {{\n        \"shards\": {shards},\n        \
             \"sharded_views\": {sharded_views},\n        \
             \"ingest_ms\": {:.4},\n        \"refresh_ms\": {:.4},\n        \
             \"scaleout_speedup\": {speedup:.4},\n        \
             \"heavy_keys_promoted\": {heavy}\n      }}",
            ms(ingest),
            ms(refresh),
        );
    }
    format!(
        "{{\n    \"shard_counts\": [1, 2, 4],\n    \
         \"heavy_key_threshold\": {HEAVY_KEY_THRESHOLD},\n    \
         \"epochs\": {},\n    \"results\": [\n{rows}\n    ]\n  }}",
        repeats.max(1),
    )
}

/// The `"phases"` JSON object body: one entry per maintenance phase with
/// count and p50/p95/max/total in milliseconds.
fn phases_json(sub: &TimingSubscriber) -> String {
    let mut out = String::new();
    let mut first = true;
    for phase in PHASES {
        let Some(h) = sub.histogram(phase) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "        \"{phase}\": {{\"count\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
             \"max_ms\": {:.4}, \"total_ms\": {:.4}}}",
            h.count(),
            ms(h.p50()),
            ms(h.p95()),
            ms(h.max()),
            ms(h.total()),
        );
    }
    out
}

/// Median of `repeats` timed runs of `f` (at least one).
fn median(repeats: usize, mut f: impl FnMut() -> Duration) -> Duration {
    let mut times: Vec<Duration> = (0..repeats.max(1)).map(|_| f()).collect();
    times.sort();
    times[times.len() / 2]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}
