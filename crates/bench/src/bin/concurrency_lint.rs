//! Lock-order / guard-discipline lint over the real workspace source.
//!
//! Runs the `gpivot-concurrency` walker over every `crates/*/src/**/*.rs`
//! file, builds the lock-acquisition graph, and emits one JSON document
//! (`CONCURRENCY_LINT.json`) with the graph and the GP03x findings. The
//! CI `concurrency-lint` job gates on the exit code: any `Error`-severity
//! finding (a lock-order cycle, a read→write upgrade, a mutex reacquired
//! while held) fails the run.
//!
//! ```text
//! concurrency-lint [--root PATH] [--out PATH] [--quiet]
//!
//!   --root   workspace checkout to scan (default: this binary's workspace)
//!   --out    output path (default CONCURRENCY_LINT.json)
//!   --quiet  suppress the rendered findings on stderr
//! ```

use gpivot_concurrency::{lint_workspace, Severity};
use std::path::PathBuf;

fn main() {
    let mut out_path = String::from("CONCURRENCY_LINT.json");
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| die("--out needs a path")),
            "--root" => {
                root = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--root needs a path")),
                ))
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: concurrency-lint [--root PATH] [--out PATH] [--quiet]");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    // Default to the workspace this binary was built from: bench lives at
    // <root>/crates/bench.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|e| die(&format!("resolve workspace root: {e}")))
    });

    let report = lint_workspace(&root).unwrap_or_else(|e| die(&format!("scan {root:?}: {e}")));

    eprintln!(
        "concurrency-lint: {} files, {} functions, {} locks, {} edges",
        report.files_scanned,
        report.functions_scanned,
        report.locks.len(),
        report.edges.len()
    );
    let errors = report.errors();
    let warns = report.count(Severity::Warn);
    let infos = report.count(Severity::Info);
    eprintln!("concurrency-lint: {errors} errors, {warns} warnings, {infos} infos");
    if !quiet {
        for f in &report.findings {
            eprintln!("  {f}");
        }
    }

    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| die(&format!("write {out_path}: {e}")));
    eprintln!("wrote {out_path}");
    if errors > 0 {
        eprintln!("concurrency lint FAILED: {errors} error-severity findings");
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}
