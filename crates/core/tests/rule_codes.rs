//! Every rewrite rule's runtime rejection carries a stable analyzer
//! diagnostic code — no orphan free-form reasons. For the obstructions the
//! static analyzer can see (cells in predicates, join conditions, dropped
//! columns, non-⊥-respecting aggregates, outer joins), the runtime code
//! must agree with what `gpivot_analyze::analyze` reports on the same
//! plan.

use gpivot_algebra::{AggSpec, Expr, PivotSpec, Plan, SchemaProvider};
use gpivot_analyze::{analyze, DiagCode};
use gpivot_core::rewrite::{pullup, pushdown, transpose, unpivot_rules};
use gpivot_core::CoreError;
use gpivot_storage::{Catalog, DataType, Schema, Table, Value};
use std::sync::Arc;

fn catalog() -> Catalog {
    let t = Schema::from_pairs_keyed(
        &[
            ("id", DataType::Int),
            ("attr", DataType::Str),
            ("val", DataType::Int),
        ],
        &["id", "attr"],
    )
    .unwrap();
    let u = Schema::from_pairs_keyed(&[("uid", DataType::Int), ("x", DataType::Int)], &["uid"])
        .unwrap();
    let mut c = Catalog::new();
    c.register("t", Table::new(Arc::new(t))).unwrap();
    c.register("u", Table::new(Arc::new(u))).unwrap();
    c
}

fn spec() -> PivotSpec {
    PivotSpec::simple("attr", "val", vec![Value::str("a"), Value::str("b")])
}

/// The encoded name of the first pivoted cell.
fn cell() -> String {
    gpivot_algebra::encode_pivot_col(&[Value::str("a")], "val")
}

type Rule = fn(&Plan, &Catalog) -> gpivot_core::Result<Plan>;

/// All rewrite rules, by name.
fn all_rules() -> Vec<(&'static str, Rule)> {
    vec![
        ("pullup_through_select", pullup::pullup_through_select),
        (
            "push_select_below_pivot_selfjoin",
            pullup::push_select_below_pivot_selfjoin,
        ),
        ("pullup_through_join", pullup::pullup_through_join),
        ("pullup_through_project", pullup::pullup_through_project),
        ("pullup_through_group_by", pullup::pullup_through_group_by),
        ("cancel_pivot_unpivot", pullup::cancel_pivot_unpivot),
        ("swap_unpivot_below_pivot", pullup::swap_unpivot_below_pivot),
        ("pushdown_through_select", pushdown::pushdown_through_select),
        ("pushdown_through_join", pushdown::pushdown_through_join),
        (
            "pushdown_through_group_by",
            pushdown::pushdown_through_group_by,
        ),
        ("cancel_unpivot_pivot", pushdown::cancel_unpivot_pivot),
        (
            "hoist_select_through_join",
            transpose::hoist_select_through_join,
        ),
        (
            "hoist_project_through_join",
            transpose::hoist_project_through_join,
        ),
        ("select_through_project", transpose::select_through_project),
        (
            "groupby_through_project",
            transpose::groupby_through_project,
        ),
        ("pivot_through_rename", transpose::pivot_through_rename),
        (
            "push_select_below_unpivot",
            unpivot_rules::push_select_below_unpivot,
        ),
        (
            "pull_unpivot_above_join",
            unpivot_rules::pull_unpivot_above_join,
        ),
        (
            "pull_unpivot_above_group_by",
            unpivot_rules::pull_unpivot_above_group_by,
        ),
        (
            "push_unpivot_below_select",
            unpivot_rules::push_unpivot_below_select,
        ),
        (
            "push_unpivot_below_group_by",
            unpivot_rules::push_unpivot_below_group_by,
        ),
    ]
}

/// Unwrap a rule rejection into its diagnostic code.
fn rejection_code(result: gpivot_core::Result<Plan>, rule_name: &str) -> DiagCode {
    match result {
        Err(CoreError::RuleNotApplicable { code, .. }) => code,
        other => panic!("{rule_name}: expected RuleNotApplicable, got {other:?}"),
    }
}

/// Every rule rejects a plain table scan with the shape-mismatch code —
/// and therefore with *a* stable code: none of the 21 rules can produce
/// an unclassified rejection.
#[test]
fn every_rule_rejects_with_a_stable_code() {
    let c = catalog();
    let scan = Plan::scan("t");
    for (name, rule) in all_rules() {
        let code = rejection_code(rule(&scan, &c), name);
        assert_eq!(
            code,
            DiagCode::Gp020RuleShapeMismatch,
            "{name}: a bare scan is a shape mismatch"
        );
        assert!(
            DiagCode::ALL.contains(&code),
            "{name}: code {code} not in the registry"
        );
    }
}

/// A predicate over pivoted cells blocks pullup with GP011 — the same
/// code the analyzer reports statically for that plan.
#[test]
fn select_over_cells_agrees_with_analyzer() {
    let c = catalog();
    let plan = Plan::scan("t")
        .gpivot(spec())
        .select(Expr::col(cell()).is_null());
    assert_eq!(
        rejection_code(pullup::pullup_through_select(&plan, &c), "pullup-select"),
        DiagCode::Gp011SelectOverCells,
    );
    assert_eq!(
        rejection_code(
            pullup::push_select_below_pivot_selfjoin(&plan, &c),
            "select-selfjoin-pushdown",
        ),
        DiagCode::Gp011SelectOverCells,
    );
    let report = analyze(&plan, &c);
    assert!(
        report.codes().contains(&DiagCode::Gp011SelectOverCells),
        "analyzer must flag the same obstruction: {report:?}"
    );
}

/// A join condition on pivoted cells blocks pullup with GP013, matching
/// the analyzer.
#[test]
fn join_on_cells_agrees_with_analyzer() {
    let c = catalog();
    let plan = Plan::scan("t")
        .gpivot(spec())
        .join(Plan::scan("u"), vec![(cell().as_str(), "uid")]);
    assert_eq!(
        rejection_code(pullup::pullup_through_join(&plan, &c), "pullup-join"),
        DiagCode::Gp013JoinOnCells,
    );
    let report = analyze(&plan, &c);
    assert!(
        report.codes().contains(&DiagCode::Gp013JoinOnCells),
        "analyzer must flag the same obstruction: {report:?}"
    );
}

/// An outer join above a pivot blocks pullup with GP014, matching the
/// analyzer.
#[test]
fn outer_join_agrees_with_analyzer() {
    let c = catalog();
    let plan = Plan::Join {
        left: Box::new(Plan::scan("t").gpivot(spec())),
        right: Box::new(Plan::scan("u")),
        kind: gpivot_algebra::JoinKind::LeftOuter,
        on: vec![("id".into(), "uid".into())],
        residual: None,
    };
    assert_eq!(
        rejection_code(pullup::pullup_through_join(&plan, &c), "pullup-join"),
        DiagCode::Gp014OuterJoin,
    );
    let report = analyze(&plan, &c);
    assert!(
        report.codes().contains(&DiagCode::Gp014OuterJoin),
        "analyzer must flag the same obstruction: {report:?}"
    );
}

/// A projection dropping pivoted cells blocks pullup with GP012, matching
/// the analyzer.
#[test]
fn project_drops_cells_agrees_with_analyzer() {
    let c = catalog();
    let plan = Plan::scan("t")
        .gpivot(spec())
        .project(vec![(Expr::col("id"), "id".to_string())]);
    assert_eq!(
        rejection_code(pullup::pullup_through_project(&plan, &c), "pullup-project"),
        DiagCode::Gp012ProjectDropsCells,
    );
    let report = analyze(&plan, &c);
    assert!(
        report.codes().contains(&DiagCode::Gp012ProjectDropsCells),
        "analyzer must flag the same obstruction: {report:?}"
    );
}

/// A non-⊥-respecting aggregate (COUNT) over pivoted cells blocks the
/// Eq. 8 pullup with GP015, matching the analyzer.
#[test]
fn count_aggregate_agrees_with_analyzer() {
    let c = catalog();
    let plan = Plan::scan("t")
        .gpivot(spec())
        .group_by(&["id"], vec![AggSpec::count(cell(), "n")]);
    assert_eq!(
        rejection_code(pullup::pullup_through_group_by(&plan, &c), "pullup-groupby"),
        DiagCode::Gp015AggNotBottomRespecting,
    );
    let report = analyze(&plan, &c);
    assert!(
        report
            .codes()
            .contains(&DiagCode::Gp015AggNotBottomRespecting),
        "analyzer must flag the same obstruction: {report:?}"
    );
}

/// The rejection Display carries the code so log lines are greppable.
#[test]
fn rejection_display_carries_the_code() {
    let c = catalog();
    let err = pullup::pullup_through_select(&Plan::scan("t"), &c).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("[GP020]"), "missing code in: {msg}");
}

/// Catalog implements SchemaProvider — sanity anchor for the `Rule` fn
/// type used above.
#[test]
fn catalog_is_a_schema_provider() {
    fn assert_provider<P: SchemaProvider>(_p: &P) {}
    assert_provider(&catalog());
}
