//! Tests for the rule-based query optimizer — the "dual purpose" use of the
//! rewriting rules (§1): every optimization step must strictly improve the
//! cost proxy while preserving query results.

use gpivot_algebra::{Expr, PivotSpec, Plan, UnpivotSpec};
use gpivot_core::rewrite::optimizer::optimize;
use gpivot_exec::Executor;
use gpivot_storage::{row, Catalog, DataType, Schema, Table, Value};
use std::sync::Arc;

fn catalog() -> Catalog {
    let schema = Schema::from_pairs_keyed(
        &[
            ("Country", DataType::Str),
            ("Manu", DataType::Str),
            ("Type", DataType::Str),
            ("Price", DataType::Int),
        ],
        &["Country", "Manu", "Type"],
    )
    .unwrap();
    let sales = Table::from_rows(
        Arc::new(schema),
        vec![
            row!["USA", "Sony", "TV", 100],
            row!["USA", "Sony", "VCR", 150],
            row!["USA", "Panasonic", "TV", 120],
            row!["Japan", "Sony", "TV", 90],
        ],
    )
    .unwrap();
    let mut c = Catalog::new();
    c.register("sales", sales).unwrap();
    c
}

fn assert_preserves(plan: &Plan, optimized: &Plan, c: &Catalog) {
    let a = Executor::new().run(plan, c).unwrap();
    let b = Executor::new().run(optimized, c).unwrap();
    assert_eq!(a.schema().column_names(), b.schema().column_names());
    assert_eq!(a.sorted_rows(), b.sorted_rows());
}

#[test]
fn cancels_pivot_unpivot_roundtrip() {
    let c = catalog();
    let spec = PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")]);
    let plan = Plan::scan("sales")
        .gpivot(spec.clone())
        .gunpivot(UnpivotSpec::reversing(&spec));
    let (optimized, log) = optimize(&plan, &c);
    assert_eq!(optimized.pivot_count(), 0, "pivot pair must cancel");
    assert!(log.iter().any(|r| r.contains("Eq. 9")));
    assert_preserves(&plan, &optimized, &c);
}

#[test]
fn cancels_unpivot_pivot_roundtrip() {
    let c = catalog();
    let spec = PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")]);
    // wide → narrow → wide again: the (GUNPIVOT, GPIVOT) pair cancels.
    let plan = Plan::scan("sales")
        .gpivot(spec.clone())
        .gunpivot(UnpivotSpec::reversing(&spec))
        .gpivot(spec.clone());
    let (optimized, _log) = optimize(&plan, &c);
    assert_eq!(
        optimized.pivot_count(),
        1,
        "only the producing pivot remains"
    );
    assert_preserves(&plan, &optimized, &c);
}

#[test]
fn combines_stacked_pivots() {
    let c = catalog();
    let inner = PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")]);
    let outer = PivotSpec::new(
        vec!["Manu"],
        inner.output_col_names(),
        vec![vec![Value::str("Sony")], vec![Value::str("Panasonic")]],
    );
    let plan = Plan::scan("sales").gpivot(inner).gpivot(outer);
    let (optimized, log) = optimize(&plan, &c);
    assert_eq!(optimized.pivot_count(), 1);
    assert!(log.iter().any(|r| r.contains("Eq. 6")));
    assert_preserves(&plan, &optimized, &c);
}

#[test]
fn pushes_selection_below_pivot() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .select(Expr::col("Country").eq(Expr::lit("USA")))
        .gpivot(PivotSpec::simple(
            "Type",
            "Price",
            vec![Value::str("TV"), Value::str("VCR")],
        ));
    // The K-atom selection can commute above the pivot (deeper selections
    // are *penalized less*; the optimizer prefers selections near leaves,
    // which this plan already has — so optimize() should keep it).
    let (optimized, _) = optimize(&plan, &c);
    assert_preserves(&plan, &optimized, &c);
}

#[test]
fn optimizer_terminates_and_never_regresses() {
    let c = catalog();
    let spec = PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")]);
    let plans = vec![
        Plan::scan("sales"),
        Plan::scan("sales").gpivot(spec.clone()),
        Plan::scan("sales")
            .gpivot(spec.clone())
            .select(Expr::col("TV**Price").gt(Expr::lit(100))),
        Plan::scan("sales")
            .gpivot(spec.clone())
            .gunpivot(UnpivotSpec::reversing(&spec)),
    ];
    for plan in plans {
        let (optimized, _) = optimize(&plan, &c);
        assert!(optimized.pivot_count() <= plan.pivot_count());
        assert_preserves(&plan, &optimized, &c);
    }
}
