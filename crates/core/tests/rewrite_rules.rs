//! Equivalence tests for every rewriting rule (§4–§5): each rule is applied
//! to a concrete plan and both the original and the rewritten plan are
//! executed on real data — the rewrite must preserve the bag of results
//! (after the rule's documented column reordering, if any).

use gpivot_algebra::{
    AggSpec, Expr, JoinKind, PivotSpec, Plan, PlanBuilder, UnpivotGroup, UnpivotSpec,
};
use gpivot_core::rewrite::pullup::{
    cancel_pivot_unpivot, pullup_through_group_by, pullup_through_join, pullup_through_project,
    pullup_through_select, push_select_below_pivot_selfjoin, swap_unpivot_below_pivot,
};
use gpivot_core::rewrite::pushdown::{
    cancel_unpivot_pivot, pushdown_through_group_by, pushdown_through_join, pushdown_through_select,
};
use gpivot_core::rewrite::transpose::{
    groupby_through_project, hoist_select_through_join, pivot_through_rename,
};
use gpivot_core::rewrite::unpivot_rules::{
    pull_unpivot_above_group_by, pull_unpivot_above_join, push_select_below_unpivot,
    push_unpivot_below_group_by, push_unpivot_below_select,
};
use gpivot_exec::Executor;
use gpivot_storage::{row, Catalog, DataType, Schema, Table, Value};
use std::sync::Arc;

/// Sales data used across the §5 examples (Figures 9–21).
fn catalog() -> Catalog {
    let sales_schema = Schema::from_pairs_keyed(
        &[
            ("Country", DataType::Str),
            ("Manu", DataType::Str),
            ("Type", DataType::Str),
            ("Price", DataType::Int),
            ("Quantity", DataType::Int),
        ],
        &["Country", "Manu", "Type"],
    )
    .unwrap();
    let sales = Table::from_rows(
        Arc::new(sales_schema),
        vec![
            row!["USA", "Sony", "TV", 220, 10],
            row!["USA", "Sony", "VCR", 150, 5],
            row!["USA", "Panasonic", "TV", 120, 8],
            row!["Japan", "Sony", "TV", 90, 3],
            row!["Japan", "Panasonic", "VCR", 80, 2],
            row!["Germany", "Panasonic", "TV", 300, 9],
            row!["France", "Sony", "VCR", 40, 1],
        ],
    )
    .unwrap();

    let region_schema = Schema::from_pairs_keyed(
        &[("r_country", DataType::Str), ("r_zone", DataType::Str)],
        &["r_country"],
    )
    .unwrap();
    let regions = Table::from_rows(
        Arc::new(region_schema),
        vec![
            row!["USA", "AMER"],
            row!["Japan", "APAC"],
            row!["Germany", "EMEA"],
            row!["France", "EMEA"],
        ],
    )
    .unwrap();

    let mut c = Catalog::new();
    c.register("sales", sales).unwrap();
    c.register("regions", regions).unwrap();
    c
}

fn sony_pana_tv_vcr() -> PivotSpec {
    PivotSpec::cross(
        vec!["Manu", "Type"],
        vec!["Price", "Quantity"],
        vec![
            vec![Value::str("Sony"), Value::str("Panasonic")],
            vec![Value::str("TV"), Value::str("VCR")],
        ],
    )
}

fn type_pivot() -> PivotSpec {
    PivotSpec::simple("Type", "Price", vec![Value::str("TV"), Value::str("VCR")])
}

/// Execute both plans; assert same column names and same bag of rows.
fn assert_equivalent(original: &Plan, rewritten: &Plan, c: &Catalog, what: &str) {
    let a = Executor::new().run(original, c).unwrap();
    let b = Executor::new().run(rewritten, c).unwrap();
    assert_eq!(
        a.schema().column_names(),
        b.schema().column_names(),
        "{what}: column names changed\noriginal:\n{original}\nrewritten:\n{rewritten}"
    );
    // Compare names + row bags (not declared types: CASE/NULL expressions
    // introduced by the rules legitimately widen column types to `Any`).
    assert_eq!(
        a.sorted_rows(),
        b.sorted_rows(),
        "{what}: contents changed\noriginal:\n{original}=>\n{a}\nrewritten:\n{rewritten}=>\n{b}"
    );
}

// ───────────────────────────── §5.1 pullups ─────────────────────────────

#[test]
fn pullup_select_on_k_columns_figure_9() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .gpivot(sony_pana_tv_vcr())
        .select(Expr::col("Country").eq(Expr::lit("USA")));
    let rewritten = pullup_through_select(&plan, &c).unwrap();
    assert!(matches!(rewritten, Plan::GPivot { .. }));
    assert_equivalent(&plan, &rewritten, &c, "pullup-select");
}

#[test]
fn pullup_select_refuses_pivoted_columns() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .gpivot(sony_pana_tv_vcr())
        .select(Expr::col("Sony**TV**Price").gt(Expr::lit(200)));
    assert!(pullup_through_select(&plan, &c).is_err());
}

#[test]
fn eq7_selfjoin_pushdown_single_cell() {
    // Figure 9's σ(Sony**TV**Price > 200).
    let c = catalog();
    let plan = Plan::scan("sales")
        .gpivot(sony_pana_tv_vcr())
        .select(Expr::col("Sony**TV**Price").gt(Expr::lit(200)));
    let rewritten = push_select_below_pivot_selfjoin(&plan, &c).unwrap();
    assert!(
        matches!(rewritten, Plan::GPivot { .. }),
        "pivot must top the result"
    );
    assert_equivalent(&plan, &rewritten, &c, "Eq. 7 single cell");
}

#[test]
fn eq7_selfjoin_pushdown_two_cells() {
    // σ over two different pivoted cells: Sony TV cheaper than Panasonic TV.
    let c = catalog();
    let plan = Plan::scan("sales")
        .gpivot(sony_pana_tv_vcr())
        .select(Expr::col("Sony**TV**Price").lt(Expr::col("Panasonic**TV**Price")));
    let rewritten = push_select_below_pivot_selfjoin(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 7 cell pair");
}

#[test]
fn eq7_conjunction_with_k_atom() {
    let c = catalog();
    let plan = Plan::scan("sales").gpivot(sony_pana_tv_vcr()).select(
        Expr::col("Sony**TV**Price")
            .gt(Expr::lit(50))
            .and(Expr::col("Country").ne(Expr::lit("France"))),
    );
    let rewritten = push_select_below_pivot_selfjoin(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 7 conjunction");
}

#[test]
fn pullup_join_figure_10() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .gpivot(type_pivot())
        .join(Plan::scan("regions"), vec![("Country", "r_country")]);
    let rewritten = pullup_through_join(&plan, &c).unwrap();
    // Wrapped in the order-restoring projection over the pivot.
    assert_eq!(rewritten.pivot_count(), 1);
    assert_equivalent(&plan, &rewritten, &c, "pullup-join");
}

#[test]
fn pullup_join_pivot_on_right() {
    let c = catalog();
    let plan = Plan::Join {
        left: Box::new(Plan::scan("regions")),
        right: Box::new(Plan::scan("sales").gpivot(type_pivot())),
        kind: JoinKind::Inner,
        on: vec![("r_country".into(), "Country".into())],
        residual: None,
    };
    let rewritten = pullup_through_join(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "pullup-join (right)");
}

#[test]
fn pullup_join_refuses_pivoted_join_columns() {
    let c = catalog();
    // Join on a pivoted cell: §5.1.3's self-join case, refused here.
    let plan = Plan::Join {
        left: Box::new(Plan::scan("sales").gpivot(type_pivot())),
        right: Box::new(Plan::scan("regions")),
        kind: JoinKind::Inner,
        on: vec![("TV**Price".into(), "r_country".into())],
        residual: None,
    };
    assert!(pullup_through_join(&plan, &c).is_err());
}

#[test]
fn pullup_project_refuses_dropping_k_columns() {
    // §5.1.2 / Fig. 8: the pivot output's key is K itself, so a projection
    // that drops any K column (here Quantity) loses the key — pushing it
    // below the pivot would coarsen the pivot's grouping. Witness the
    // non-equivalence: (USA, Sony) has two rows with different quantities,
    // which the pushed-down form would merge.
    let c = catalog();
    let plan = Plan::scan("sales").gpivot(type_pivot()).project_cols(&[
        "Country",
        "Manu",
        "TV**Price",
        "VCR**Price",
    ]);
    assert!(pullup_through_project(&plan, &c).is_err());

    // And indeed the naive pushdown is NOT equivalent:
    let naive = Plan::scan("sales")
        .project_cols(&["Country", "Manu", "Type", "Price"])
        .gpivot(type_pivot());
    let a = Executor::new().run(&plan, &c).unwrap();
    let b = Executor::new().run(&naive, &c).unwrap();
    assert_ne!(a.sorted_rows(), b.sorted_rows());
}

#[test]
fn pullup_project_refuses_dropping_cells() {
    let c = catalog();
    // §5.1.2: π¬VCR(GPIVOT[TV,VCR]) ≠ GPIVOT[TV].
    let plan = Plan::scan("sales").gpivot(type_pivot()).project_cols(&[
        "Country",
        "Manu",
        "Quantity",
        "TV**Price",
    ]);
    assert!(pullup_through_project(&plan, &c).is_err());
}

#[test]
fn eq8_pullup_groupby() {
    // Figure 11's shape: aggregate over pivoted cells.
    let c = catalog();
    let plan = Plan::scan("sales")
        .project_cols(&["Country", "Manu", "Type", "Price"])
        .gpivot(type_pivot())
        .group_by(
            &["Manu"],
            vec![
                AggSpec::sum("TV**Price", "TVTotal"),
                AggSpec::sum("VCR**Price", "VCRTotal"),
            ],
        );
    let rewritten = pullup_through_group_by(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 8");
    // Inner tree: GroupBy below a pivot below the rename projection.
    let Plan::Project { input, .. } = &rewritten else {
        panic!("rename projection")
    };
    let Plan::GPivot { input: gb, .. } = input.as_ref() else {
        panic!("pivot")
    };
    assert!(matches!(gb.as_ref(), Plan::GroupBy { .. }));
}

#[test]
fn eq8_refuses_grouping_on_pivoted_columns() {
    // Figure 10's counter-example: group by a pivoted output column.
    let c = catalog();
    let plan = Plan::scan("sales")
        .project_cols(&["Country", "Manu", "Type", "Price"])
        .gpivot(type_pivot())
        .group_by(&["TV**Price"], vec![AggSpec::count_star("n")]);
    assert!(pullup_through_group_by(&plan, &c).is_err());
}

#[test]
fn eq8_refuses_count_because_of_bottom_semantics() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .project_cols(&["Country", "Manu", "Type", "Price"])
        .gpivot(type_pivot())
        .group_by(
            &["Manu"],
            vec![
                AggSpec::count("TV**Price", "a"),
                AggSpec::count("VCR**Price", "b"),
            ],
        );
    assert!(pullup_through_group_by(&plan, &c).is_err());
}

#[test]
fn eq9_cancellation() {
    let c = catalog();
    let spec = sony_pana_tv_vcr();
    let plan = Plan::scan("sales")
        .gpivot(spec.clone())
        .gunpivot(UnpivotSpec::reversing(&spec));
    let rewritten = cancel_pivot_unpivot(&plan, &c).unwrap();
    assert_eq!(rewritten.pivot_count(), 0);
    assert_equivalent(&plan, &rewritten, &c, "Eq. 9");
}

#[test]
fn eq10_swap_disjoint_parameters() {
    // Pivot by Type, then unpivot the carried (Manu-ish) columns — use a
    // schema where a carried non-key column exists: unpivot Quantity… the
    // carried columns of type_pivot() are Country, Manu, Quantity.
    let c = catalog();
    let spec = type_pivot();
    let unspec = UnpivotSpec::new(
        vec![UnpivotGroup {
            tags: vec![Value::str("Quantity")],
            cols: vec!["Quantity".into()],
        }],
        vec!["Measure"],
        vec!["Val"],
    );
    let plan = Plan::scan("sales").gpivot(spec).gunpivot(unspec);
    let rewritten = swap_unpivot_below_pivot(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 10");
    // The unpivot now runs below the pivot.
    let Plan::Project { input, .. } = &rewritten else {
        panic!("order projection")
    };
    let Plan::GPivot { input: un, .. } = input.as_ref() else {
        panic!("pivot on top")
    };
    assert!(matches!(un.as_ref(), Plan::GUnpivot { .. }));
}

// ───────────────────────────── §5.2 pushdowns ────────────────────────────

#[test]
fn eq11_pushdown_select_dimension_atom() {
    // Figure 13's σ(Type = TV) under the pivot.
    let c = catalog();
    let plan = Plan::scan("sales")
        .select(Expr::col("Type").eq(Expr::lit("TV")))
        .gpivot(sony_pana_tv_vcr());
    let rewritten = pushdown_through_select(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 11 dimension");
    // The pivot moved below the selection machinery.
    let Plan::Select { input, .. } = &rewritten else {
        panic!("not-all-⊥ select")
    };
    assert!(matches!(input.as_ref(), Plan::Project { .. }));
}

#[test]
fn eq11_pushdown_select_measure_atom() {
    // Figure 13's σ(Price = 220).
    let c = catalog();
    let plan = Plan::scan("sales")
        .select(Expr::col("Price").eq(Expr::lit(220)))
        .gpivot(sony_pana_tv_vcr());
    let rewritten = pushdown_through_select(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 11 measure");
}

#[test]
fn eq11_pushdown_select_k_atom_commutes() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .select(Expr::col("Country").eq(Expr::lit("USA")))
        .gpivot(sony_pana_tv_vcr());
    let rewritten = pushdown_through_select(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 11 K-atom");
}

#[test]
fn eq11_mixed_conjunction() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .select(
            Expr::col("Type")
                .eq(Expr::lit("TV"))
                .and(Expr::col("Price").ge(Expr::lit(100)))
                .and(Expr::col("Country").ne(Expr::lit("Japan"))),
        )
        .gpivot(sony_pana_tv_vcr());
    let rewritten = pushdown_through_select(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 11 mixed");
}

#[test]
fn pushdown_join_on_carried_columns() {
    // §5.2.3: GPivot(sales ⋈ regions) where the pivot parameters come from
    // sales and the join is on the carried Country column.
    let c = catalog();
    let plan = Plan::scan("sales")
        .join(Plan::scan("regions"), vec![("Country", "r_country")])
        .gpivot(sony_pana_tv_vcr());
    let rewritten = pushdown_through_join(&plan, &c).unwrap();
    // The pivot moved below the join (under the order-restoring Project).
    let Plan::Project { input, .. } = &rewritten else {
        panic!("projection on top")
    };
    let Plan::Join { left, .. } = input.as_ref() else {
        panic!("join below")
    };
    assert!(matches!(left.as_ref(), Plan::GPivot { .. }));
    assert_equivalent(&plan, &rewritten, &c, "§5.2.3");
}

#[test]
fn pushdown_groupby_reverses_eq8() {
    // §5.2.4: pivot over a GROUPBY whose dimensions are grouping columns.
    let c = catalog();
    let plan = Plan::scan("sales")
        .group_by(&["Manu", "Type"], vec![AggSpec::sum("Price", "total")])
        .gpivot(PivotSpec::new(
            vec!["Type"],
            vec!["total"],
            vec![vec![Value::str("TV")], vec![Value::str("VCR")]],
        ));
    let rewritten = pushdown_through_group_by(&plan, &c).unwrap();
    let Plan::GroupBy { input, .. } = &rewritten else {
        panic!("groupby on top")
    };
    assert!(matches!(input.as_ref(), Plan::GPivot { .. }));
    assert_equivalent(&plan, &rewritten, &c, "§5.2.4");
}

#[test]
fn eq12_cancellation() {
    // GUNPIVOT then re-GPIVOT over a wide table.
    let c = catalog();
    let spec = type_pivot();
    // Build the wide table via a pivot (it plays the role of H).
    let wide = Plan::scan("sales").gpivot(spec.clone());
    let plan = wide
        .clone()
        .gunpivot(UnpivotSpec::reversing(&spec))
        .gpivot(spec.clone());
    let rewritten = cancel_unpivot_pivot(&plan, &c).unwrap();
    assert_eq!(
        rewritten.pivot_count(),
        1,
        "only the H-producing pivot remains"
    );
    assert_equivalent(&plan, &rewritten, &c, "Eq. 12");
}

// ───────────────────────── §5.3 / §5.4 GUNPIVOT rules ────────────────────

fn wide_plan() -> Plan {
    Plan::scan("sales").gpivot(sony_pana_tv_vcr())
}

fn wide_unpivot() -> UnpivotSpec {
    UnpivotSpec::reversing(&sony_pana_tv_vcr())
}

#[test]
fn eq13_select_name_column_atom() {
    // Figure 16's σ(Type = TV) over the unpivot output.
    let c = catalog();
    let plan = wide_plan()
        .gunpivot(wide_unpivot())
        .select(Expr::col("Type").eq(Expr::lit("TV")));
    let rewritten = push_select_below_unpivot(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 13 name atom");
    // Groups were filtered statically: TV groups only.
    let Plan::GUnpivot { spec, .. } = &rewritten else {
        panic!("unpivot on top")
    };
    assert_eq!(spec.groups.len(), 2);
}

#[test]
fn eq13_select_value_column_atom() {
    // Figure 16's σ(Price = 150).
    let c = catalog();
    let plan = wide_plan()
        .gunpivot(wide_unpivot())
        .select(Expr::col("Price").eq(Expr::lit(150)));
    let rewritten = push_select_below_unpivot(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 13 value atom");
}

#[test]
fn eq13_select_k_column_atom() {
    let c = catalog();
    let plan = wide_plan()
        .gunpivot(wide_unpivot())
        .select(Expr::col("Country").eq(Expr::lit("USA")));
    let rewritten = push_select_below_unpivot(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 13 K atom");
}

#[test]
fn unpivot_above_join_on_k_columns() {
    let c = catalog();
    let plan = Plan::Join {
        left: Box::new(wide_plan().gunpivot(wide_unpivot())),
        right: Box::new(Plan::scan("regions")),
        kind: JoinKind::Inner,
        on: vec![("Country".into(), "r_country".into())],
        residual: None,
    };
    let rewritten = pull_unpivot_above_join(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "§5.3.3 K join");
}

#[test]
fn eq15_unpivot_above_groupby() {
    // Figure 18's horizontal aggregation: sum all prices per country.
    let c = catalog();
    let plan = wide_plan()
        .gunpivot(wide_unpivot())
        .group_by(&["Country"], vec![AggSpec::sum("Price", "total")]);
    let rewritten = pull_unpivot_above_group_by(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 15 sum");
}

#[test]
fn eq15_with_name_column_grouping() {
    let c = catalog();
    let plan = wide_plan().gunpivot(wide_unpivot()).group_by(
        &["Manu"],
        vec![AggSpec::sum("Price", "total"), AggSpec::count("Price", "n")],
    );
    let rewritten = pull_unpivot_above_group_by(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 15 name grouping");
}

#[test]
fn eq16_unpivot_below_select_selfjoin() {
    // Figure 19's σ(Sony**TV**Price = 220) below the unpivot.
    let c = catalog();
    let plan = PlanBuilder::from_plan(wide_plan())
        .select(Expr::col("Sony**TV**Price").eq(Expr::lit(220)))
        .gunpivot(wide_unpivot())
        .build();
    let rewritten = push_unpivot_below_select(&plan, &c).unwrap();
    assert_equivalent(&plan, &rewritten, &c, "Eq. 16");
}

#[test]
fn eq16_trivial_commute_for_k_atoms() {
    let c = catalog();
    let plan = PlanBuilder::from_plan(wide_plan())
        .select(Expr::col("Country").eq(Expr::lit("USA")))
        .gunpivot(wide_unpivot())
        .build();
    let rewritten = push_unpivot_below_select(&plan, &c).unwrap();
    let Plan::Select { .. } = &rewritten else {
        panic!("select hoisted above")
    };
    assert_equivalent(&plan, &rewritten, &c, "§5.4.1 commute");
}

#[test]
fn eq18_unpivot_below_groupby() {
    // Figure 21: unpivot per-type aggregates.
    let c = catalog();
    let plan = Plan::scan("sales")
        .group_by(
            &["Country"],
            vec![
                AggSpec::sum("Price", "tv_or_vcr_a"),
                AggSpec::sum("Quantity", "tv_or_vcr_b"),
            ],
        )
        .gunpivot(UnpivotSpec::new(
            vec![
                UnpivotGroup {
                    tags: vec![Value::str("price")],
                    cols: vec!["tv_or_vcr_a".into()],
                },
                UnpivotGroup {
                    tags: vec![Value::str("quantity")],
                    cols: vec!["tv_or_vcr_b".into()],
                },
            ],
            vec!["measure"],
            vec!["val"],
        ));
    let rewritten = push_unpivot_below_group_by(&plan, &c).unwrap();
    let Plan::GroupBy { input, .. } = &rewritten else {
        panic!("groupby on top")
    };
    assert!(matches!(input.as_ref(), Plan::GUnpivot { .. }));
    assert_equivalent(&plan, &rewritten, &c, "Eq. 18");
}

// ───────────────────────────── transposes ───────────────────────────────

#[test]
fn transpose_select_through_join() {
    let c = catalog();
    let plan = Plan::Join {
        left: Box::new(
            Plan::scan("sales")
                .gpivot(type_pivot())
                .select(Expr::col("TV**Price").gt(Expr::lit(100))),
        ),
        right: Box::new(Plan::scan("regions")),
        kind: JoinKind::Inner,
        on: vec![("Country".into(), "r_country".into())],
        residual: None,
    };
    let rewritten = hoist_select_through_join(&plan, &c).unwrap();
    assert!(matches!(rewritten, Plan::Select { .. }));
    assert_equivalent(&plan, &rewritten, &c, "hoist-select-join");
}

#[test]
fn transpose_pivot_through_rename() {
    let c = catalog();
    // Rename every column, then pivot over the renamed names.
    let renamed = Plan::scan("sales").project(vec![
        (Expr::col("Country"), "c".into()),
        (Expr::col("Manu"), "m".into()),
        (Expr::col("Type"), "t".into()),
        (Expr::col("Price"), "p".into()),
        (Expr::col("Quantity"), "q".into()),
    ]);
    let plan = renamed.gpivot(PivotSpec::simple(
        "t",
        "p",
        vec![Value::str("TV"), Value::str("VCR")],
    ));
    let rewritten = pivot_through_rename(&plan, &c).unwrap();
    // The pivot now reads the original columns below the projection.
    let Plan::Project { input, .. } = &rewritten else {
        panic!("rename project on top")
    };
    let Plan::GPivot { input: below, .. } = input.as_ref() else {
        panic!("pivot")
    };
    assert!(matches!(below.as_ref(), Plan::Scan { .. }));
    assert_equivalent(&plan, &rewritten, &c, "pivot-through-rename");
}

#[test]
fn transpose_groupby_through_project() {
    let c = catalog();
    let plan = Plan::scan("sales")
        .gpivot(type_pivot())
        .project_cols(&["Manu", "TV**Price", "VCR**Price"])
        .group_by(&["Manu"], vec![AggSpec::sum("TV**Price", "s")]);
    let rewritten = groupby_through_project(&plan, &c).unwrap();
    let Plan::GroupBy { input, .. } = &rewritten else {
        panic!("groupby on top")
    };
    assert!(matches!(input.as_ref(), Plan::GPivot { .. }));
    assert_equivalent(&plan, &rewritten, &c, "groupby-through-project");
}
