//! Errors for the rewrite + maintenance layers.

use gpivot_algebra::AlgebraError;
use gpivot_exec::ExecError;
use gpivot_storage::StorageError;
use std::fmt;

/// Errors raised by the core (rewrite / maintenance) layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying algebra error.
    Algebra(AlgebraError),
    /// Underlying execution error.
    Exec(ExecError),
    /// Underlying storage error.
    Storage(StorageError),
    /// A rewrite rule's precondition does not hold for the given plan.
    RuleNotApplicable { rule: &'static str, reason: String },
    /// The requested maintenance strategy cannot maintain this view shape.
    StrategyNotApplicable { strategy: String, reason: String },
    /// A named view was not found in the view manager.
    UnknownView(String),
    /// A view with this name is already registered.
    DuplicateView(String),
    /// The view query is not incrementally maintainable at all and fallback
    /// was disallowed.
    NotMaintainable(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Algebra(e) => write!(f, "algebra error: {e}"),
            CoreError::Exec(e) => write!(f, "execution error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::RuleNotApplicable { rule, reason } => {
                write!(f, "rule `{rule}` not applicable: {reason}")
            }
            CoreError::StrategyNotApplicable { strategy, reason } => {
                write!(f, "strategy `{strategy}` not applicable: {reason}")
            }
            CoreError::UnknownView(v) => write!(f, "unknown view `{v}`"),
            CoreError::DuplicateView(v) => write!(f, "view `{v}` already exists"),
            CoreError::NotMaintainable(s) => write!(f, "view not maintainable: {s}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Algebra(e) => Some(e),
            CoreError::Exec(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for CoreError {
    fn from(e: AlgebraError) -> Self {
        CoreError::Algebra(e)
    }
}

impl From<ExecError> for CoreError {
    fn from(e: ExecError) -> Self {
        CoreError::Exec(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = CoreError::RuleNotApplicable {
            rule: "pullup-join",
            reason: "join key not preserved".into(),
        };
        assert!(e.to_string().contains("pullup-join"));
        assert!(CoreError::UnknownView("v".into())
            .to_string()
            .contains("`v`"));
    }
}
