//! Errors for the rewrite + maintenance layers.

use gpivot_algebra::AlgebraError;
use gpivot_analyze::{DiagCode, Diagnostic};
use gpivot_exec::ExecError;
use gpivot_storage::StorageError;
use std::fmt;

/// Errors raised by the core (rewrite / maintenance) layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Underlying algebra error.
    Algebra(AlgebraError),
    /// Underlying execution error.
    Exec(ExecError),
    /// Underlying storage error.
    Storage(StorageError),
    /// A rewrite rule's precondition does not hold for the given plan. The
    /// [`DiagCode`] matches what the static analyzer (`gpivot-analyze`)
    /// reports for the same obstruction, so runtime and static verdicts
    /// can be cross-checked.
    RuleNotApplicable {
        rule: &'static str,
        code: DiagCode,
        reason: String,
    },
    /// Plan lint refused the view at registration: the static analyzer
    /// found `Error`-severity diagnostics. Opt out per view with
    /// [`ViewOptions::skip_plan_lint`](crate::ViewOptions::skip_plan_lint).
    PlanLint {
        view: String,
        diagnostics: Vec<Diagnostic>,
    },
    /// The requested maintenance strategy cannot maintain this view shape.
    StrategyNotApplicable { strategy: String, reason: String },
    /// A named view was not found in the view manager.
    UnknownView(String),
    /// A view with this name is already registered.
    DuplicateView(String),
    /// The view query is not incrementally maintainable at all and fallback
    /// was disallowed.
    NotMaintainable(String),
    /// A refresh worker panicked while maintaining a view. The panic was
    /// caught at the task boundary (the view's state was discarded), so
    /// this is an ordinary, retryable error to the caller.
    ViewPanic { view: String, message: String },
    /// An ingestion was rejected (or timed out) because the pending-queue
    /// watermark was reached. Transient by definition: draining an epoch
    /// frees space.
    Backpressure { pending_rows: u64, watermark: u64 },
    /// A configuration builder was given an invalid value (zero workers,
    /// a backoff cap below the initial backoff, ...). Raised by
    /// `ServeConfig::builder()` in `gpivot-serve` at `build()` time so
    /// misconfiguration fails fast instead of misbehaving at runtime.
    InvalidConfig { field: String, message: String },
}

/// Coarse retry classification of an error — the taxonomy the service
/// layer's retry/quarantine decisions are built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Retrying the same operation can plausibly succeed (injected faults,
    /// caught worker panics, backpressure).
    Transient,
    /// Retrying is pointless: the error is a fact about the data, the
    /// schema, or the request (key violations, unknown tables, shape
    /// mismatches, ...).
    Permanent,
}

impl CoreError {
    /// Classify this error for retry decisions. Fault-injected storage
    /// errors (wherever they surface in the stack) and caught panics are
    /// [`ErrorClass::Transient`]; every real engine error is
    /// [`ErrorClass::Permanent`].
    pub fn classify(&self) -> ErrorClass {
        let transient = match self {
            CoreError::Storage(e) => e.is_transient(),
            CoreError::Exec(ExecError::Storage(e)) => e.is_transient(),
            // Storage errors can also surface wrapped in algebra errors
            // (schema inference inside plan execution).
            CoreError::Algebra(AlgebraError::Storage(e)) => e.is_transient(),
            CoreError::Exec(ExecError::Algebra(AlgebraError::Storage(e))) => e.is_transient(),
            // A panic caught inside a partition worker is isolated at the
            // job boundary, exactly like a caught refresh-worker panic.
            CoreError::Exec(ExecError::WorkerPanic { .. }) => true,
            CoreError::ViewPanic { .. } | CoreError::Backpressure { .. } => true,
            _ => false,
        };
        if transient {
            ErrorClass::Transient
        } else {
            ErrorClass::Permanent
        }
    }

    /// Convenience: `classify() == ErrorClass::Transient`.
    pub fn is_transient(&self) -> bool {
        self.classify() == ErrorClass::Transient
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Algebra(e) => write!(f, "algebra error: {e}"),
            CoreError::Exec(e) => write!(f, "execution error: {e}"),
            CoreError::Storage(e) => write!(f, "storage error: {e}"),
            CoreError::RuleNotApplicable { rule, code, reason } => {
                write!(f, "rule `{rule}` not applicable [{code}]: {reason}")
            }
            CoreError::PlanLint { view, diagnostics } => {
                write!(
                    f,
                    "plan lint refused view `{view}` ({} finding{}):",
                    diagnostics.len(),
                    if diagnostics.len() == 1 { "" } else { "s" }
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            CoreError::StrategyNotApplicable { strategy, reason } => {
                write!(f, "strategy `{strategy}` not applicable: {reason}")
            }
            CoreError::UnknownView(v) => write!(f, "unknown view `{v}`"),
            CoreError::DuplicateView(v) => write!(f, "view `{v}` already exists"),
            CoreError::NotMaintainable(s) => write!(f, "view not maintainable: {s}"),
            CoreError::ViewPanic { view, message } => {
                write!(
                    f,
                    "refresh worker panicked maintaining view `{view}`: {message}"
                )
            }
            CoreError::Backpressure {
                pending_rows,
                watermark,
            } => write!(
                f,
                "ingestion rejected: {pending_rows} pending rows at watermark {watermark}"
            ),
            CoreError::InvalidConfig { field, message } => {
                write!(f, "invalid config: `{field}` {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Algebra(e) => Some(e),
            CoreError::Exec(e) => Some(e),
            CoreError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AlgebraError> for CoreError {
    fn from(e: AlgebraError) -> Self {
        CoreError::Algebra(e)
    }
}

impl From<ExecError> for CoreError {
    fn from(e: ExecError) -> Self {
        CoreError::Exec(e)
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_classifies_for_retry() {
        use gpivot_storage::StorageError;
        let injected = CoreError::Storage(StorageError::FaultInjected {
            site: "scan".into(),
            op: "t".into(),
        });
        assert_eq!(injected.classify(), ErrorClass::Transient);
        let nested = CoreError::Exec(ExecError::Storage(StorageError::FaultInjected {
            site: "scan".into(),
            op: "t".into(),
        }));
        assert!(nested.is_transient());
        assert!(CoreError::ViewPanic {
            view: "v".into(),
            message: "boom".into(),
        }
        .is_transient());
        assert!(CoreError::Backpressure {
            pending_rows: 10,
            watermark: 8,
        }
        .is_transient());
        // Real engine errors are permanent.
        assert_eq!(
            CoreError::UnknownView("v".into()).classify(),
            ErrorClass::Permanent
        );
        assert_eq!(
            CoreError::Storage(StorageError::KeyViolation {
                table: "t".into(),
                key: "k".into(),
            })
            .classify(),
            ErrorClass::Permanent
        );
    }

    #[test]
    fn display_variants() {
        let e = CoreError::RuleNotApplicable {
            rule: "pullup-join",
            code: DiagCode::Gp010KeyNotPreserved,
            reason: "join key not preserved".into(),
        };
        assert!(e.to_string().contains("pullup-join"));
        assert!(e.to_string().contains("[GP010]"));
        let lint = CoreError::PlanLint {
            view: "v".into(),
            diagnostics: vec![Diagnostic::new(
                DiagCode::Gp001PivotInputNoKey,
                vec![0],
                "no key",
            )],
        };
        assert!(lint.to_string().contains("GP001"));
        assert_eq!(lint.classify(), ErrorClass::Permanent);
        assert!(CoreError::UnknownView("v".into())
            .to_string()
            .contains("`v`"));
    }
}
