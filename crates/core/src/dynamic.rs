//! Dynamic (data-driven) pivot specs — the paper's *high-order pivot*
//! future-work item (§9, discussing SchemaSQL's FOLD/UNFOLD \[14\]).
//!
//! A first-order GPIVOT fixes its output parameters in the query. The
//! high-order variant derives them from the data: "one column per distinct
//! dimension value currently present". This module provides:
//!
//! * [`discover_groups`] / [`discover_pivot_spec`] — compute the output
//!   parameters from the current table state (SchemaSQL's dynamic column
//!   set, ordered deterministically);
//! * [`DynamicPivotView`] — a materialized dynamic pivot that maintains
//!   itself incrementally with the Fig. 23 update rules *as long as the
//!   delta stays within the discovered dimension values*, and detects when
//!   a delta introduces (or retires) dimension values, at which point the
//!   view **re-compiles**: the spec is re-discovered and the view
//!   re-materialized (a schema change, which no incremental rule can
//!   express — the paper's \[13\] hits the same wall).

use crate::error::{CoreError, Result};
use crate::maintain::apply::{apply_pivot_update, ApplyStats};
use crate::maintain::delta_prop::{propagate, PropagationCtx};
use crate::maintain::SourceDeltas;
use gpivot_algebra::{PivotSpec, Plan};
use gpivot_exec::{Executor, TableProvider};
use gpivot_storage::{Catalog, Row, Table, Value};
use std::collections::BTreeSet;

/// Distinct dimension-value tuples of `by` columns present in a table,
/// in sorted (deterministic) order.
pub fn discover_groups(table: &Table, by: &[&str]) -> Result<Vec<Vec<Value>>> {
    let idx: Vec<usize> = by
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<gpivot_storage::Result<_>>()?;
    let mut set: BTreeSet<Row> = BTreeSet::new();
    for row in table.iter() {
        let tags = row.project(&idx);
        if tags.iter().any(Value::is_null) {
            continue; // NULL dimension values cannot become column names
        }
        set.insert(tags);
    }
    Ok(set.into_iter().map(|r| r.to_vec()).collect())
}

/// Build a pivot spec whose output parameters are discovered from the
/// current contents of `table`.
pub fn discover_pivot_spec(table: &Table, by: &[&str], on: &[&str]) -> Result<PivotSpec> {
    let groups = discover_groups(table, by)?;
    if groups.is_empty() {
        return Err(CoreError::NotMaintainable(
            "dynamic pivot over an empty dimension domain".to_string(),
        ));
    }
    Ok(PivotSpec::new(by.to_vec(), on.to_vec(), groups))
}

/// Outcome of one dynamic-pivot refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynamicRefresh {
    /// The delta stayed within the known dimension values; the view was
    /// maintained incrementally (Fig. 23).
    Incremental(ApplyStats),
    /// The delta introduced or retired dimension values; the spec was
    /// re-discovered and the view re-materialized with a new schema.
    Recompiled { new_groups: usize },
}

/// A materialized dynamic pivot over a single base table.
#[derive(Debug, Clone)]
pub struct DynamicPivotView {
    table_name: String,
    by: Vec<String>,
    on: Vec<String>,
    spec: PivotSpec,
    mv: Table,
}

impl DynamicPivotView {
    /// Discover the spec from the current state and materialize.
    pub fn create(
        catalog: &Catalog,
        table_name: impl Into<String>,
        by: &[&str],
        on: &[&str],
    ) -> Result<Self> {
        let table_name = table_name.into();
        let base = catalog.table(&table_name)?;
        let spec = discover_pivot_spec(base, by, on)?;
        let mv = Self::materialize(catalog, &table_name, &spec)?;
        Ok(DynamicPivotView {
            table_name,
            by: by.iter().map(|s| s.to_string()).collect(),
            on: on.iter().map(|s| s.to_string()).collect(),
            spec,
            mv,
        })
    }

    fn plan(table_name: &str, spec: &PivotSpec) -> Plan {
        Plan::scan(table_name).gpivot(spec.clone())
    }

    fn materialize(catalog: &Catalog, table_name: &str, spec: &PivotSpec) -> Result<Table> {
        let bag = Executor::new().run(&Self::plan(table_name, spec), catalog)?;
        let schema = bag.schema().clone();
        Ok(bag.into_keyed(schema)?)
    }

    /// The current pivot spec (output parameters included).
    pub fn spec(&self) -> &PivotSpec {
        &self.spec
    }

    /// The materialized contents.
    pub fn table(&self) -> &Table {
        &self.mv
    }

    /// Does this delta stay within the discovered dimension values, and
    /// does it leave every discovered value alive?
    fn delta_within_domain(&self, catalog: &Catalog, deltas: &SourceDeltas) -> Result<bool> {
        let Some(delta) = deltas.delta(&self.table_name) else {
            return Ok(true);
        };
        let base = catalog.table(&self.table_name)?;
        let by_idx: Vec<usize> = self
            .by
            .iter()
            .map(|c| base.schema().index_of(c))
            .collect::<gpivot_storage::Result<_>>()?;
        // New dimension values from inserts?
        for (row, &w) in delta.iter() {
            if w > 0 {
                let tags = row.project(&by_idx);
                if tags.iter().any(Value::is_null) {
                    continue;
                }
                if self.spec.group_index(tags.values()).is_none() {
                    return Ok(false);
                }
            }
        }
        // Retired dimension values from deletes? Check survivor counts per
        // group touched by deletes.
        let touched: BTreeSet<Row> = delta
            .iter()
            .filter(|(_, &w)| w < 0)
            .map(|(r, _)| r.project(&by_idx))
            .collect();
        if touched.is_empty() {
            return Ok(true);
        }
        for tags in touched {
            let mut survivors: i64 =
                base.iter().filter(|r| r.project(&by_idx) == tags).count() as i64;
            for (row, &w) in delta.iter() {
                if row.project(&by_idx) == tags {
                    survivors += w;
                }
            }
            if survivors <= 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Refresh against pending deltas: incremental while the dimension
    /// domain is stable, recompile otherwise. Call before committing the
    /// deltas to the catalog; pass the catalog in its pre-update state.
    pub fn refresh(&mut self, catalog: &Catalog, deltas: &SourceDeltas) -> Result<DynamicRefresh> {
        if self.delta_within_domain(catalog, deltas)? {
            let ctx = PropagationCtx::new(catalog, deltas);
            let core = Plan::scan(&self.table_name);
            let dcore = propagate(&core, &ctx)?;
            let core_schema = catalog.table(&self.table_name)?.schema().clone();
            let stats = apply_pivot_update(&mut self.mv, &self.spec, &core_schema, &dcore)?;
            Ok(DynamicRefresh::Incremental(stats))
        } else {
            // Schema change: re-discover against the post-state.
            let mut post = catalog.clone();
            if let Some(d) = deltas.delta(&self.table_name) {
                post.apply_delta(&self.table_name, d)?;
            }
            let base = post.table(&self.table_name)?;
            let by_refs: Vec<&str> = self.by.iter().map(String::as_str).collect();
            let on_refs: Vec<&str> = self.on.iter().map(String::as_str).collect();
            self.spec = discover_pivot_spec(base, &by_refs, &on_refs)?;
            self.mv = Self::materialize(&post, &self.table_name, &self.spec)?;
            Ok(DynamicRefresh::Recompiled {
                new_groups: self.spec.groups.len(),
            })
        }
    }

    /// Verify against recomputation (testing aid). The catalog must hold
    /// the state the view was last refreshed against.
    pub fn verify(&self, catalog: &Catalog) -> Result<bool> {
        let fresh = Executor::new().run(&Self::plan(&self.table_name, &self.spec), catalog)?;
        Ok(self.mv.bag_eq(&fresh))
    }
}

// Silence: TableProvider is used via Executor::run's bound.
#[allow(unused_imports)]
use TableProvider as _;

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_storage::{row, DataType, Schema};
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        let t = Table::from_rows(
            schema,
            vec![row![1, "a", 10], row![1, "b", 20], row![2, "a", 30]],
        )
        .unwrap();
        let mut c = Catalog::new();
        c.register("facts", t).unwrap();
        c
    }

    #[test]
    fn discovery_finds_sorted_distinct_groups() {
        let c = catalog();
        let spec = discover_pivot_spec(c.table("facts").unwrap(), &["attr"], &["val"]).unwrap();
        assert_eq!(
            spec.groups,
            vec![vec![Value::str("a")], vec![Value::str("b")]]
        );
        assert_eq!(spec.output_col_names(), vec!["a**val", "b**val"]);
    }

    #[test]
    fn in_domain_delta_maintains_incrementally() {
        let c = catalog();
        let mut v = DynamicPivotView::create(&c, "facts", &["attr"], &["val"]).unwrap();
        let mut deltas = SourceDeltas::new();
        deltas.insert_rows("facts", vec![row![2, "b", 99]]);
        let r = v.refresh(&c, &deltas).unwrap();
        assert!(matches!(r, DynamicRefresh::Incremental(_)));
        let mut post = c.clone();
        post.apply_delta("facts", deltas.delta("facts").unwrap())
            .unwrap();
        assert!(v.verify(&post).unwrap());
    }

    #[test]
    fn new_dimension_value_triggers_recompile() {
        let c = catalog();
        let mut v = DynamicPivotView::create(&c, "facts", &["attr"], &["val"]).unwrap();
        assert_eq!(v.spec().groups.len(), 2);
        let mut deltas = SourceDeltas::new();
        deltas.insert_rows("facts", vec![row![3, "z", 7]]);
        let r = v.refresh(&c, &deltas).unwrap();
        assert_eq!(r, DynamicRefresh::Recompiled { new_groups: 3 });
        assert!(v.table().schema().index_of("z**val").is_ok());
        let mut post = c.clone();
        post.apply_delta("facts", deltas.delta("facts").unwrap())
            .unwrap();
        assert!(v.verify(&post).unwrap());
    }

    #[test]
    fn retiring_a_dimension_value_triggers_recompile() {
        let c = catalog();
        let mut v = DynamicPivotView::create(&c, "facts", &["attr"], &["val"]).unwrap();
        let mut deltas = SourceDeltas::new();
        deltas.delete_rows("facts", vec![row![1, "b", 20]]); // only 'b' row
        let r = v.refresh(&c, &deltas).unwrap();
        assert_eq!(r, DynamicRefresh::Recompiled { new_groups: 1 });
        assert!(v.table().schema().index_of("b**val").is_err());
    }

    #[test]
    fn delete_that_keeps_domain_is_incremental() {
        let c = catalog();
        let mut v = DynamicPivotView::create(&c, "facts", &["attr"], &["val"]).unwrap();
        let mut deltas = SourceDeltas::new();
        deltas.delete_rows("facts", vec![row![1, "a", 10]]); // 'a' survives via id 2
        let r = v.refresh(&c, &deltas).unwrap();
        assert!(matches!(r, DynamicRefresh::Incremental(_)));
        let mut post = c.clone();
        post.apply_delta("facts", deltas.delta("facts").unwrap())
            .unwrap();
        assert!(v.verify(&post).unwrap());
    }

    #[test]
    fn empty_domain_is_rejected() {
        let schema = Arc::new(
            Schema::from_pairs_keyed(
                &[
                    ("id", DataType::Int),
                    ("attr", DataType::Str),
                    ("val", DataType::Int),
                ],
                &["id", "attr"],
            )
            .unwrap(),
        );
        let mut c = Catalog::new();
        c.register("empty", Table::new(schema)).unwrap();
        assert!(DynamicPivotView::create(&c, "empty", &["attr"], &["val"]).is_err());
    }
}
