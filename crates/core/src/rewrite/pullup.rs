//! Pullup rules for GPIVOT (§5.1): move a GPIVOT up through SELECT,
//! PROJECT, JOIN and GROUPBY so it ends at the top of the view tree, where
//! the efficient update propagation rules (Fig. 23 / 27 / 29) apply.
//!
//! Every rule here is *key-preservation gated* (Fig. 8): the rewritten
//! plan's schema is re-derived and the rewrite is refused whenever the
//! pulled-up pivot would lose its input key.

use crate::error::{CoreError, Result};
use gpivot_algebra::plan::{JoinKind, PivotSpec, Plan};
use gpivot_algebra::{AlgebraError, Expr, SchemaProvider};
use gpivot_analyze::DiagCode;
use gpivot_storage::Value;
use std::collections::BTreeSet;

fn na(rule: &'static str, code: DiagCode, reason: impl Into<String>) -> CoreError {
    CoreError::RuleNotApplicable {
        rule,
        code,
        reason: reason.into(),
    }
}

/// The `K` (carried-through) column names of a pivot input.
fn pivot_k_cols<P: SchemaProvider>(
    input: &Plan,
    spec: &PivotSpec,
    provider: &P,
) -> Result<Vec<String>> {
    let schema = input.schema(provider)?;
    Ok(spec.validate(&schema)?)
}

/// Validate a candidate rewritten plan by re-deriving its schema (this is
/// where the key-preservation prerequisite is enforced).
fn check<P: SchemaProvider>(plan: Plan, provider: &P, rule: &'static str) -> Result<Plan> {
    match plan.schema(provider) {
        Ok(_) => Ok(plan),
        Err(AlgebraError::PivotRequiresKey { detail }) => Err(na(
            rule,
            DiagCode::Gp010KeyNotPreserved,
            format!("key not preserved by the rewrite: {detail}"),
        )),
        Err(e) => Err(e.into()),
    }
}

/// §5.1.1, easy case: `Select(pred, GPivot(X))` where `pred` references only
/// non-pivoted (K) columns ⇒ `GPivot(Select(pred, X))`.
pub fn pullup_through_select<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pullup-select (§5.1.1)";
    let Plan::Select { input, predicate } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not Select", plan.op_name()),
        ));
    };
    let Plan::GPivot { input: x, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GPivot directly under the Select",
        ));
    };
    let k_cols = pivot_k_cols(x, spec, provider)?;
    let pred_cols = predicate.columns();
    if !pred_cols.iter().all(|c| k_cols.contains(c)) {
        return Err(na(
            RULE,
            DiagCode::Gp011SelectOverCells,
            format!(
                "predicate references pivoted output columns {:?}; \
                 use the self-join pushdown (Eq. 7) or the combined \
                 SELECT/GPIVOT update rules (Fig. 29)",
                pred_cols
                    .iter()
                    .filter(|c| !k_cols.contains(*c))
                    .collect::<Vec<_>>()
            ),
        ));
    }
    let rewritten = x
        .as_ref()
        .clone()
        .select(predicate.clone())
        .gpivot(spec.clone());
    check(rewritten, provider, RULE)
}

/// Eq. 7: `Select(σ over pivoted cells, GPivot(V))` ⇒
/// `GPivot(π_K(qualifying keys) ⋉ V)` — the SELECT is pushed below the
/// pivot as key-qualifying self-joins, leaving the GPIVOT on top.
///
/// Supported predicate forms (conjunctions thereof, each atom over pivoted
/// cells): `cell op literal` and `cell1 op cell2`. Atoms over K columns stay
/// as a plain selection on `V`'s K columns.
pub fn push_select_below_pivot_selfjoin<P: SchemaProvider>(
    plan: &Plan,
    provider: &P,
) -> Result<Plan> {
    const RULE: &str = "select-selfjoin-pushdown (Eq. 7)";
    let Plan::Select { input, predicate } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not Select", plan.op_name()),
        ));
    };
    let Plan::GPivot { input: x, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GPivot directly under the Select",
        ));
    };
    if !predicate.is_null_intolerant() {
        return Err(na(
            RULE,
            DiagCode::Gp011SelectOverCells,
            "predicate is not null-intolerant",
        ));
    }
    let k_cols = pivot_k_cols(x, spec, provider)?;
    let atoms = conjuncts(predicate);

    // The qualifying-keys plan: chain of semijoin filters over V.
    let mut keys_plan: Option<Plan> = None;
    let mut k_selects: Vec<Expr> = Vec::new();
    for atom in &atoms {
        match classify_atom(atom, spec, &k_cols)? {
            AtomKind::OnK => k_selects.push(atom.clone()),
            AtomKind::CellLiteral {
                group,
                measure,
                op,
                lit,
            } => {
                // π_K(σ_{(A..)=g ∧ B op lit}(V))
                let sel = group_predicate(spec, &spec.groups[group]).and(Expr::Cmp(
                    op,
                    Box::new(Expr::col(&spec.on[measure])),
                    Box::new(Expr::Lit(lit)),
                ));
                let keys = x
                    .as_ref()
                    .clone()
                    .select(sel)
                    .project_cols(&k_cols.iter().map(String::as_str).collect::<Vec<_>>());
                keys_plan = Some(match keys_plan {
                    None => keys,
                    // Conjunction of cell atoms = intersection of key sets,
                    // realized as a chained semijoin.
                    Some(prev) => semijoin_keys(prev, keys, &k_cols),
                });
            }
            AtomKind::CellPair {
                group1,
                measure1,
                op,
                group2,
                measure2,
            } => {
                // π_K(σ_{A=g1}(V) ⋈_{K=K ∧ B1 op B2} σ_{A=g2}(V))
                let left = x
                    .as_ref()
                    .clone()
                    .select(group_predicate(spec, &spec.groups[group1]));
                let right = x
                    .as_ref()
                    .clone()
                    .select(group_predicate(spec, &spec.groups[group2]));
                // Rename the right side completely to keep names disjoint.
                let schema = x.schema(provider)?;
                let rename: Vec<(Expr, String)> = schema
                    .column_names()
                    .iter()
                    .map(|c| (Expr::col(*c), format!("__sj_{c}")))
                    .collect();
                let right = right.project(rename);
                let on_pairs: Vec<(String, String)> = k_cols
                    .iter()
                    .map(|k| (k.clone(), format!("__sj_{k}")))
                    .collect();
                let residual = Expr::Cmp(
                    op,
                    Box::new(Expr::col(&spec.on[measure1])),
                    Box::new(Expr::col(format!("__sj_{}", spec.on[measure2]))),
                );
                let joined = Plan::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: JoinKind::Inner,
                    on: on_pairs,
                    residual: Some(residual),
                };
                let keys =
                    joined.project_cols(&k_cols.iter().map(String::as_str).collect::<Vec<_>>());
                keys_plan = Some(match keys_plan {
                    None => keys,
                    Some(prev) => semijoin_keys(prev, keys, &k_cols),
                });
            }
        }
    }

    let Some(keys) = keys_plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "predicate has no atoms over pivoted cells; use pullup-select instead",
        ));
    };

    // V restricted to qualifying keys (semijoin), plus any K-column atoms.
    let x_cols: Vec<String> = x
        .schema(provider)?
        .column_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut filtered = semijoin_rows(x.as_ref().clone(), &x_cols, keys, &k_cols);
    if !k_selects.is_empty() {
        filtered = filtered.select(Expr::conjunction(k_selects));
    }
    check(filtered.gpivot(spec.clone()), provider, RULE)
}

/// One conjunct list from a predicate tree.
fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other.clone()],
    }
}

/// `(A1..Am) = tags` as a predicate over the pivot input.
fn group_predicate(spec: &PivotSpec, tags: &[Value]) -> Expr {
    Expr::conjunction(
        spec.by
            .iter()
            .zip(tags)
            .map(|(c, v)| Expr::col(c).eq(Expr::Lit(v.clone())))
            .collect(),
    )
}

enum AtomKind {
    /// Atom only over K columns.
    OnK,
    /// `cell op literal`.
    CellLiteral {
        group: usize,
        measure: usize,
        op: gpivot_algebra::CmpOp,
        lit: Value,
    },
    /// `cell1 op cell2`.
    CellPair {
        group1: usize,
        measure1: usize,
        op: gpivot_algebra::CmpOp,
        group2: usize,
        measure2: usize,
    },
}

/// Resolve a pivoted output column name to `(group index, measure index)`.
fn resolve_cell(name: &str, spec: &PivotSpec) -> Option<(usize, usize)> {
    for gi in 0..spec.groups.len() {
        for bj in 0..spec.on.len() {
            if spec.col_name(gi, bj) == name {
                return Some((gi, bj));
            }
        }
    }
    None
}

fn classify_atom(atom: &Expr, spec: &PivotSpec, k_cols: &[String]) -> Result<AtomKind> {
    const RULE: &str = "select-selfjoin-pushdown (Eq. 7)";
    let cols = atom.columns();
    let cells: Vec<&String> = cols
        .iter()
        .filter(|c| resolve_cell(c, spec).is_some())
        .collect();
    if cells.is_empty() {
        if cols.iter().all(|c| k_cols.contains(c)) {
            return Ok(AtomKind::OnK);
        }
        return Err(na(
            RULE,
            DiagCode::Gp011SelectOverCells,
            format!("atom `{atom}` references columns outside the pivot output"),
        ));
    }
    match atom {
        Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => {
                let (g, m) = resolve_cell(c, spec).ok_or_else(|| {
                    na(
                        RULE,
                        DiagCode::Gp011SelectOverCells,
                        format!("`{c}` is not a pivoted cell"),
                    )
                })?;
                Ok(AtomKind::CellLiteral {
                    group: g,
                    measure: m,
                    op: *op,
                    lit: v.clone(),
                })
            }
            (Expr::Lit(v), Expr::Col(c)) => {
                let (g, m) = resolve_cell(c, spec).ok_or_else(|| {
                    na(
                        RULE,
                        DiagCode::Gp011SelectOverCells,
                        format!("`{c}` is not a pivoted cell"),
                    )
                })?;
                Ok(AtomKind::CellLiteral {
                    group: g,
                    measure: m,
                    op: op.flipped(),
                    lit: v.clone(),
                })
            }
            (Expr::Col(c1), Expr::Col(c2)) => {
                let (g1, m1) = resolve_cell(c1, spec).ok_or_else(|| {
                    na(
                        RULE,
                        DiagCode::Gp011SelectOverCells,
                        format!("`{c1}` is not a pivoted cell"),
                    )
                })?;
                let (g2, m2) = resolve_cell(c2, spec).ok_or_else(|| {
                    na(
                        RULE,
                        DiagCode::Gp011SelectOverCells,
                        format!("`{c2}` is not a pivoted cell"),
                    )
                })?;
                Ok(AtomKind::CellPair {
                    group1: g1,
                    measure1: m1,
                    op: *op,
                    group2: g2,
                    measure2: m2,
                })
            }
            _ => Err(na(
                RULE,
                DiagCode::Gp011SelectOverCells,
                format!("unsupported atom shape `{atom}`"),
            )),
        },
        _ => Err(na(
            RULE,
            DiagCode::Gp011SelectOverCells,
            format!("unsupported atom `{atom}`"),
        )),
    }
}

/// Key-set intersection: `prev ⋉ keys` (both are bags of K tuples; both
/// sides are deduplicated so the intersection stays set-like).
fn semijoin_keys(prev: Plan, keys: Plan, k_cols: &[String]) -> Plan {
    semijoin_rows(dedup_keys(prev, k_cols), k_cols, keys, k_cols)
}

/// Deduplicate a bag of key tuples (GROUP BY all columns).
fn dedup_keys(plan: Plan, k_cols: &[String]) -> Plan {
    Plan::GroupBy {
        input: Box::new(plan),
        group_by: k_cols.to_vec(),
        aggs: vec![],
    }
}

/// `rows ⋉ keys` on the K columns: keep rows whose key appears in `keys`.
/// `keys` is deduplicated and renamed to avoid ambiguity; the helper
/// columns are projected away again (`rows_cols` is the row schema's column
/// list, preserved in order).
fn semijoin_rows(rows: Plan, rows_cols: &[String], keys: Plan, k_cols: &[String]) -> Plan {
    let deduped = dedup_keys(keys, k_cols);
    let rename: Vec<(Expr, String)> = k_cols
        .iter()
        .map(|k| (Expr::col(k), format!("__key_{k}")))
        .collect();
    let renamed = deduped.project(rename);
    let on: Vec<(String, String)> = k_cols
        .iter()
        .map(|k| (k.clone(), format!("__key_{k}")))
        .collect();
    let joined = Plan::Join {
        left: Box::new(rows),
        right: Box::new(renamed),
        kind: JoinKind::Inner,
        on,
        residual: None,
    };
    joined.project(
        rows_cols
            .iter()
            .map(|c| (Expr::col(c), c.clone()))
            .collect(),
    )
}

/// §5.1.3: `Join(GPivot(X), B)` joined on non-pivoted (K) columns ⇒
/// `GPivot(Join(X, B))`. `side` selects which operand carries the pivot.
pub fn pullup_through_join<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pullup-join (§5.1.3)";
    let Plan::Join {
        left,
        right,
        kind,
        on,
        residual,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not Join", plan.op_name()),
        ));
    };
    if *kind != JoinKind::Inner {
        return Err(na(
            RULE,
            DiagCode::Gp014OuterJoin,
            format!("join kind {kind} not supported for pullup"),
        ));
    }
    if residual.is_some() {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "join has a residual predicate",
        ));
    }

    // The pulled-up pivot emits [K..., cells...] while the original join
    // emitted the pivot columns in place; a permutation Project restores
    // the original column order (the driver absorbs it at the top).
    let restore_order = |rewritten: Plan| -> Result<Plan> {
        let orig_schema = plan.schema(provider)?;
        let items: Vec<(Expr, String)> = orig_schema
            .column_names()
            .iter()
            .map(|c| (Expr::col(*c), c.to_string()))
            .collect();
        check(rewritten.project(items), provider, RULE)
    };

    // Pivot on the left?
    if let Plan::GPivot { input: x, spec } = left.as_ref() {
        let k_cols = pivot_k_cols(x, spec, provider)?;
        if on.iter().all(|(l, _)| k_cols.contains(l)) {
            let rewritten = Plan::Join {
                left: Box::new(x.as_ref().clone()),
                right: right.clone(),
                kind: JoinKind::Inner,
                on: on.clone(),
                residual: None,
            }
            .gpivot(spec.clone());
            return restore_order(rewritten);
        }
        return Err(na(
            RULE,
            DiagCode::Gp013JoinOnCells,
            "join condition references pivoted output columns (§5.1.3 self-join case)",
        ));
    }
    // Pivot on the right?
    if let Plan::GPivot { input: x, spec } = right.as_ref() {
        let k_cols = pivot_k_cols(x, spec, provider)?;
        if on.iter().all(|(_, r)| k_cols.contains(r)) {
            let rewritten = Plan::Join {
                left: left.clone(),
                right: Box::new(x.as_ref().clone()),
                kind: JoinKind::Inner,
                on: on.clone(),
                residual: None,
            }
            .gpivot(spec.clone());
            return restore_order(rewritten);
        }
        return Err(na(
            RULE,
            DiagCode::Gp013JoinOnCells,
            "join condition references pivoted output columns (§5.1.3 self-join case)",
        ));
    }
    Err(na(
        RULE,
        DiagCode::Gp020RuleShapeMismatch,
        "neither join operand is a GPivot",
    ))
}

/// §5.1.2: `Project(cols, GPivot(X))` where the projection keeps *all*
/// pivoted output columns and a key-preserving subset of `K` ⇒
/// `Project(cols, GPivot(Project(K'∪by∪on, X)))` with the outer projection
/// reduced to a pure permutation (absorbed later by the driver).
pub fn pullup_through_project<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pullup-project (§5.1.2)";
    let Plan::Project { input, items } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not Project", plan.op_name()),
        ));
    };
    let Plan::GPivot { input: x, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GPivot directly under the Project",
        ));
    };
    // Pure column projection only.
    let mut kept: Vec<String> = Vec::with_capacity(items.len());
    for (e, n) in items {
        match e {
            Expr::Col(c) if c == n => kept.push(c.clone()),
            _ => {
                return Err(na(
                    RULE,
                    DiagCode::Gp012ProjectDropsCells,
                    format!("item `{n}` is not a bare column"),
                ))
            }
        }
    }
    let kept_set: BTreeSet<&str> = kept.iter().map(String::as_str).collect();
    let cells = spec.output_col_names();
    if !cells.iter().all(|c| kept_set.contains(c.as_str())) {
        return Err(na(
            RULE,
            DiagCode::Gp012ProjectDropsCells,
            "projection drops pivoted output columns (§5.1.2: would change ⊥ semantics); \
             falling back to insert/delete propagation",
        ));
    }
    let k_cols = pivot_k_cols(x, spec, provider)?;
    let kept_k: Vec<String> = kept
        .iter()
        .filter(|c| k_cols.contains(c))
        .cloned()
        .collect();
    if kept_k.len() == k_cols.len() {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "projection keeps every column (pure permutation); nothing to push — \
             the driver absorbs it at the top",
        ));
    }
    // Dropping any K column violates key preservation (Fig. 8): the pivot
    // output's key is K itself, and pushing the projection below the pivot
    // would coarsen its grouping. (The paper's §5.2.2 footnote: only
    // functionally-determined columns could be dropped, and we do not track
    // functional dependencies.)
    Err(na(
        RULE,
        DiagCode::Gp010KeyNotPreserved,
        format!(
            "projection drops K column(s) {:?}; the pivot output's key K would not be \
             preserved (§5.1.2) — falling back to insert/delete propagation",
            k_cols
                .iter()
                .filter(|c| !kept_k.contains(c))
                .collect::<Vec<_>>()
        ),
    ))
}

/// §5.1.4 / Eq. 8: `GroupBy(K' ; f(cells)) ∘ GPivot` ⇒
/// `Project(rename) ∘ GPivot' ∘ GroupBy(K'∪by ; f(measures))`.
///
/// Preconditions: grouping columns are K columns; the aggregate list covers
/// exactly groups × measures with one function per measure; the functions
/// ignore `⊥` and return `⊥` on all-`⊥` input (true for SUM/MIN/MAX here —
/// COUNT is refused because SQL count returns 0, not `⊥`; the paper notes
/// this exact caveat under Eq. 8).
pub fn pullup_through_group_by<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pullup-groupby (Eq. 8)";
    let Plan::GroupBy {
        input,
        group_by,
        aggs,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GroupBy", plan.op_name()),
        ));
    };
    let Plan::GPivot { input: x, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GPivot directly under the GroupBy",
        ));
    };
    let k_cols = pivot_k_cols(x, spec, provider)?;
    if !group_by.iter().all(|g| k_cols.contains(g)) {
        return Err(na(
            RULE,
            DiagCode::Gp019GroupByOnCells,
            "grouping columns include pivoted output columns (§5.1.4: multi-value \
             grouping on a single source column is not expressible)",
        ));
    }

    // Match the aggregate list against groups × measures.
    // func_per_measure[j] = the aggregate function used for measure j.
    let mut func_per_measure: Vec<Option<gpivot_algebra::AggFunc>> = vec![None; spec.on.len()];
    // out_name[(gi, bj)] = original aggregate output name.
    let mut out_name: Vec<Vec<Option<String>>> = vec![vec![None; spec.on.len()]; spec.groups.len()];
    for a in aggs {
        use gpivot_algebra::AggFunc;
        match a.func {
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {}
            AggFunc::Count | AggFunc::CountStar | AggFunc::Avg => {
                return Err(na(
                    RULE,
                    DiagCode::Gp015AggNotBottomRespecting,
                    format!(
                        "aggregate {} does not return ⊥ on all-⊥ input (Eq. 8 requirement)",
                        a.func
                    ),
                ))
            }
        }
        let Some((gi, bj)) = resolve_cell(&a.input, spec) else {
            return Err(na(
                RULE,
                DiagCode::Gp015AggNotBottomRespecting,
                format!("aggregate input `{}` is not a pivoted cell", a.input),
            ));
        };
        match &func_per_measure[bj] {
            None => func_per_measure[bj] = Some(a.func),
            Some(f) if *f == a.func => {}
            Some(f) => {
                return Err(na(
                    RULE,
                    DiagCode::Gp015AggNotBottomRespecting,
                    format!(
                        "measure `{}` aggregated with both {f} and {}",
                        spec.on[bj], a.func
                    ),
                ))
            }
        }
        if out_name[gi][bj].replace(a.output.clone()).is_some() {
            return Err(na(
                RULE,
                DiagCode::Gp015AggNotBottomRespecting,
                format!("cell ({gi},{bj}) aggregated more than once"),
            ));
        }
    }
    // Coverage check: every (group, measure) cell aggregated exactly once.
    for (gi, row) in out_name.iter().enumerate() {
        for (bj, n) in row.iter().enumerate() {
            if n.is_none() {
                return Err(na(
                    RULE,
                    DiagCode::Gp015AggNotBottomRespecting,
                    format!(
                        "aggregate list does not cover cell `{}`",
                        spec.col_name(gi, bj)
                    ),
                ));
            }
            let _ = bj;
        }
        let _ = gi;
    }

    // Inner GROUPBY: group by K' ∪ by, aggregate each measure.
    let mut inner_group: Vec<&str> = group_by.iter().map(String::as_str).collect();
    inner_group.extend(spec.by.iter().map(String::as_str));
    let fresh_names: Vec<String> = spec
        .on
        .iter()
        .enumerate()
        .map(|(j, b)| format!("{}__{}", func_per_measure[j].expect("covered"), b))
        .collect();
    let inner_aggs: Vec<gpivot_algebra::AggSpec> = spec
        .on
        .iter()
        .enumerate()
        .map(|(j, b)| gpivot_algebra::AggSpec {
            func: func_per_measure[j].expect("covered"),
            input: b.clone(),
            output: fresh_names[j].clone(),
        })
        .collect();
    let grouped = x.as_ref().clone().group_by(&inner_group, inner_aggs);

    // Outer GPIVOT: same dimensions/groups, measures = the aggregates.
    let new_spec = PivotSpec {
        by: spec.by.clone(),
        on: fresh_names.clone(),
        groups: spec.groups.clone(),
    };

    // Rename to the original aggregate output names, in the original
    // GroupBy output order (group cols first, then aggs in listed order).
    let mut rename_items: Vec<(Expr, String)> =
        group_by.iter().map(|g| (Expr::col(g), g.clone())).collect();
    for a in aggs {
        let (gi, bj) = resolve_cell(&a.input, spec).expect("checked");
        let new_cell = gpivot_algebra::encode_pivot_col(&spec.groups[gi], &fresh_names[bj]);
        rename_items.push((Expr::col(new_cell), a.output.clone()));
    }
    let rewritten = grouped.gpivot(new_spec).project(rename_items);
    check(rewritten, provider, RULE)
}

/// Eq. 9: `GUnpivot(GPivot(V))` where the unpivot exactly reverses the
/// pivot ⇒ `Select(σs, V)` with σs = "dimensions are a listed group AND not
/// every measure is ⊥".
pub fn cancel_pivot_unpivot<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "cancel-gpivot-gunpivot (Eq. 9)";
    let Plan::GUnpivot {
        input,
        spec: unspec,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GUnpivot", plan.op_name()),
        ));
    };
    let Plan::GPivot { input: v, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GPivot directly under the GUnpivot",
        ));
    };
    let expected = gpivot_algebra::plan::UnpivotSpec::reversing(spec);
    // The unpivot must decode exactly the pivot's structure, and its output
    // columns must restore the original names.
    if unspec.groups != expected.groups
        || unspec.name_cols != spec.by
        || unspec.value_cols != spec.on
    {
        return Err(na(
            RULE,
            DiagCode::Gp022PivotUnpivotMismatch,
            "unpivot does not exactly reverse the pivot (partial use or renamed \
             outputs; see Fig. 12 cases 2-3)",
        ));
    }
    // σs: (A1..Am) ∈ groups AND (B1 IS NOT NULL OR ... OR Bn IS NOT NULL).
    let group_disj = Expr::disjunction(
        spec.groups
            .iter()
            .map(|g| group_predicate(spec, g))
            .collect(),
    );
    let not_all_null = Expr::disjunction(
        spec.on
            .iter()
            .map(|b| Expr::col(b).is_null().not())
            .collect(),
    );
    // Restore the GUnpivot output column order: K, name cols, value cols.
    let k_cols = pivot_k_cols(v, spec, provider)?;
    let mut order: Vec<String> = k_cols;
    order.extend(spec.by.iter().cloned());
    order.extend(spec.on.iter().cloned());
    let rewritten = v
        .as_ref()
        .clone()
        .select(group_disj.and(not_all_null))
        .project(order.iter().map(|c| (Expr::col(c), c.clone())).collect());
    check(rewritten, provider, RULE)
}

/// Eq. 10: `GUnpivot[G](GPivot(V))` with disjoint parameters (the unpivot
/// consumes only K columns of the pivot output) ⇒
/// `GPivot(GUnpivot[G](V))`.
pub fn swap_unpivot_below_pivot<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "swap-gunpivot-gpivot (Eq. 10)";
    let Plan::GUnpivot {
        input,
        spec: unspec,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GUnpivot", plan.op_name()),
        ));
    };
    let Plan::GPivot { input: v, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GPivot directly under the GUnpivot",
        ));
    };
    let cells: BTreeSet<String> = spec.output_col_names().into_iter().collect();
    let consumed: Vec<&String> = unspec.groups.iter().flat_map(|g| g.cols.iter()).collect();
    if consumed.iter().any(|c| cells.contains(*c)) {
        return Err(na(
            RULE,
            DiagCode::Gp022PivotUnpivotMismatch,
            "unpivot consumes pivoted output columns — parameters overlap (Fig. 12)",
        ));
    }
    let rewritten = v
        .as_ref()
        .clone()
        .gunpivot(unspec.clone())
        .gpivot(spec.clone());
    // Column order differs (GUnpivot moves its outputs to the end), so wrap
    // a permutation Project restoring the original order.
    let orig_schema = plan.schema(provider)?;
    let items: Vec<(Expr, String)> = orig_schema
        .column_names()
        .iter()
        .map(|c| (Expr::col(*c), c.to_string()))
        .collect();
    check(rewritten.project(items), provider, RULE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::plan::PivotSpec;
    use gpivot_storage::{DataType, Schema, SchemaRef};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "t".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("k", DataType::Int),
                        ("a", DataType::Str),
                        ("b", DataType::Int),
                    ],
                    &["k", "a"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn spec() -> PivotSpec {
        PivotSpec::simple("a", "b", vec![Value::str("x"), Value::str("y")])
    }

    #[test]
    fn rules_reject_wrong_top_operators() {
        let p = provider();
        let scan = Plan::scan("t");
        assert!(pullup_through_select(&scan, &p).is_err());
        assert!(pullup_through_join(&scan, &p).is_err());
        assert!(pullup_through_project(&scan, &p).is_err());
        assert!(pullup_through_group_by(&scan, &p).is_err());
        assert!(cancel_pivot_unpivot(&scan, &p).is_err());
        assert!(swap_unpivot_below_pivot(&scan, &p).is_err());
        assert!(push_select_below_pivot_selfjoin(&scan, &p).is_err());
    }

    #[test]
    fn selfjoin_pushdown_rejects_null_tolerant_predicates() {
        let p = provider();
        let plan = Plan::scan("t")
            .gpivot(spec())
            .select(Expr::col("x**b").is_null());
        assert!(matches!(
            push_select_below_pivot_selfjoin(&plan, &p),
            Err(CoreError::RuleNotApplicable { .. })
        ));
    }

    #[test]
    fn selfjoin_pushdown_rejects_pure_k_predicates() {
        let p = provider();
        let plan = Plan::scan("t")
            .gpivot(spec())
            .select(Expr::col("k").gt(Expr::lit(1)));
        // No cell atoms → the cheap pullup-select rule is the right tool.
        assert!(push_select_below_pivot_selfjoin(&plan, &p).is_err());
        assert!(pullup_through_select(&plan, &p).is_ok());
    }

    #[test]
    fn join_pullup_requires_inner_join() {
        let p = {
            let mut m = provider();
            m.insert(
                "d".to_string(),
                Arc::new(Schema::from_pairs_keyed(&[("dk", DataType::Int)], &["dk"]).unwrap()),
            );
            m
        };
        let plan = Plan::Join {
            left: Box::new(Plan::scan("t").gpivot(spec())),
            right: Box::new(Plan::scan("d")),
            kind: JoinKind::LeftOuter,
            on: vec![("k".into(), "dk".into())],
            residual: None,
        };
        assert!(pullup_through_join(&plan, &p).is_err());
    }

    #[test]
    fn groupby_pullup_reports_uncovered_cells() {
        let p = provider();
        // Aggregate only one of the two cells: coverage check must fire.
        let plan = Plan::scan("t")
            .gpivot(spec())
            .group_by(&["k"], vec![gpivot_algebra::AggSpec::sum("x**b", "s")]);
        let err = pullup_through_group_by(&plan, &p).unwrap_err();
        assert!(err.to_string().contains("does not cover"), "{err}");
    }
}
