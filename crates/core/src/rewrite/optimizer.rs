//! A small rule-based query optimizer built from the same rewriting rules —
//! the paper's "dual purpose" claim (§1): the combination and movement
//! rules serve query optimization as well as view maintenance.
//!
//! The optimizer greedily applies rules that reduce a simple cost proxy:
//! fewer GPIVOT operators first (each pivot is a full hash pass), then
//! fewer plan nodes, with early selections preferred (selection pushdown
//! through pivots via Eq. 11's trivial case).

use crate::combine::{try_compose, try_multicolumn};
use crate::error::Result;
use crate::rewrite::pullup::cancel_pivot_unpivot;
use crate::rewrite::pushdown::{
    cancel_unpivot_pivot, pushdown_through_join, pushdown_through_select,
};
use gpivot_algebra::plan::Plan;
use gpivot_algebra::SchemaProvider;

/// Cost proxy: `(pivot count, select depth penalty, node count)` — compared
/// lexicographically, lower is better.
fn cost(plan: &Plan) -> (usize, usize, usize) {
    fn select_depth(plan: &Plan, depth: usize) -> usize {
        let own = if matches!(plan, Plan::Select { .. }) {
            depth
        } else {
            0
        };
        own + plan
            .children()
            .iter()
            .map(|c| select_depth(c, depth + 1))
            .sum::<usize>()
    }
    // Selections closer to the leaves have *higher* depth, which we want:
    // penalize shallow selections by inverting against a bound.
    let depth_penalty = {
        let total = select_depth(plan, 0);
        let bound = plan.node_count() * plan.node_count();
        bound.saturating_sub(total)
    };
    (plan.pivot_count(), depth_penalty, plan.node_count())
}

/// One optimization step: try every rule at every node, return the best
/// strictly-improving rewrite.
fn step<P: SchemaProvider>(plan: &Plan, provider: &P) -> Option<(Plan, &'static str)> {
    type Rule<P> = (&'static str, fn(&Plan, &P) -> Result<Plan>);
    let rules: &[Rule<P>] = &[
        ("cancel-gpivot-gunpivot (Eq. 9)", cancel_pivot_unpivot),
        ("cancel-gunpivot-gpivot (Eq. 12)", cancel_unpivot_pivot),
        ("combine-composition (Eq. 6)", |p, _| try_compose(p)),
        ("combine-multicolumn (Eq. 5)", |p, _| try_multicolumn(p)),
        ("pushdown-select (Eq. 11)", pushdown_through_select),
        ("pushdown-join (§5.2.3)", pushdown_through_join),
    ];

    let mut best: Option<(Plan, &'static str)> = None;
    let mut best_cost = cost(plan);

    // Enumerate rewrites at every node via recursive reconstruction.
    fn rewrites_at<P: SchemaProvider>(
        plan: &Plan,
        provider: &P,
        rules: &[Rule<P>],
        out: &mut Vec<(Plan, &'static str)>,
    ) {
        for (name, rule) in rules {
            if let Ok(p) = rule(plan, provider) {
                if &p != plan {
                    out.push((p, name));
                }
            }
        }
        // Child rewrites, spliced back into this node.
        let children = plan.children();
        for (i, child) in children.iter().enumerate() {
            let mut child_rewrites = Vec::new();
            rewrites_at(child, provider, rules, &mut child_rewrites);
            for (new_child, name) in child_rewrites {
                out.push((replace_child(plan, i, new_child), name));
            }
        }
    }

    let mut candidates = Vec::new();
    rewrites_at(plan, provider, rules, &mut candidates);
    for (candidate, name) in candidates {
        // Candidate must still type-check.
        if candidate.schema(provider).is_err() {
            continue;
        }
        let c = cost(&candidate);
        if c < best_cost {
            best_cost = c;
            best = Some((candidate, name));
        }
    }
    best
}

/// Replace the `i`-th child of a node.
fn replace_child(plan: &Plan, i: usize, new_child: Plan) -> Plan {
    let mut cloned = plan.clone();
    match &mut cloned {
        Plan::Scan { .. } => unreachable!("scans have no children"),
        Plan::Select { input, .. }
        | Plan::Project { input, .. }
        | Plan::GroupBy { input, .. }
        | Plan::GPivot { input, .. }
        | Plan::GUnpivot { input, .. } => **input = new_child,
        Plan::Join { left, right, .. }
        | Plan::Union { left, right }
        | Plan::Diff { left, right } => {
            if i == 0 {
                **left = new_child;
            } else {
                **right = new_child;
            }
        }
    }
    cloned
}

/// Optimize a query plan: greedy descent on the cost proxy, returning the
/// improved plan and the rule applications (for explainability).
pub fn optimize<P: SchemaProvider>(plan: &Plan, provider: &P) -> (Plan, Vec<&'static str>) {
    let mut current = plan.clone();
    let mut log = Vec::new();
    const MAX_STEPS: usize = 32;
    for _ in 0..MAX_STEPS {
        match step(&current, provider) {
            Some((next, name)) => {
                log.push(name);
                current = next;
            }
            None => break,
        }
    }
    (current, log)
}
