//! The rewriting framework (§5 of the paper).
//!
//! * [`pullup`] — GPIVOT pullup rules (Eq. 7–10 and the §5.1 cases).
//! * [`pushdown`] — GPIVOT pushdown rules (Eq. 11–12 and the §5.2 cases).
//! * [`unpivot_rules`] — GUNPIVOT pullup/pushdown rules (Eq. 13–18).
//! * [`transpose`] — enabler commutations used by the driver.
//! * [`driver`] — the Fig. 4 normalization: pivots to the top, combined.
//! * [`optimizer`] — a small rule-based query optimizer demonstrating the
//!   dual (query-optimization) use of the same rules.

pub mod driver;
pub mod optimizer;
pub mod pullup;
pub mod pushdown;
pub mod transpose;
pub mod unpivot_rules;

pub use driver::{normalize_view, normalize_view_with_select_pushdown, NormalizedView, TopShape};
