//! Pushdown rules for GPIVOT (§5.2): the query-optimization direction.
//!
//! Where the pullup rules normalize a view for maintenance, the pushdown
//! rules let a cost-based optimizer move a GPIVOT *below* other operators —
//! e.g. to filter early (Eq. 11 keeps a selection below the pivot as a
//! case-projection) or to pivot before a blow-up join (§5.2.3).

use crate::error::{CoreError, Result};
use gpivot_algebra::plan::{JoinKind, Plan};
use gpivot_algebra::{CmpOp, Expr, SchemaProvider};
use gpivot_analyze::DiagCode;
use gpivot_storage::Value;

fn na(rule: &'static str, code: DiagCode, reason: impl Into<String>) -> CoreError {
    CoreError::RuleNotApplicable {
        rule,
        code,
        reason: reason.into(),
    }
}

fn check<P: SchemaProvider>(plan: Plan, provider: &P, rule: &'static str) -> Result<Plan> {
    plan.schema(provider).map_err(|e| {
        na(
            rule,
            DiagCode::Gp005TypeCheck,
            format!("rewritten plan does not type-check: {e}"),
        )
    })?;
    Ok(plan)
}

/// One atom of a conjunctive selection under a pivot.
enum PushAtom {
    /// Over K columns — commutes freely.
    OnK(Expr),
    /// `A_u = x`: dimension column equals a literal (statically decidable
    /// per output group).
    ByEq { by_idx: usize, value: Value },
    /// `B_v op y`: measure column compared to a literal (becomes a CASE
    /// over each group's cells).
    OnCmp {
        on_idx: usize,
        op: CmpOp,
        lit: Value,
    },
}

fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other.clone()],
    }
}

/// Eq. 11 (plus the trivial K-column case): push a GPIVOT below a SELECT.
///
/// `GPivot(Select(pred, V))` where `pred` is a conjunction of atoms over
/// `K` columns, `A_u = x` dimension atoms, and `B_v op y` measure atoms ⇒
///
/// ```text
/// Select(not-all-⊥, Project(K, case-cells, GPivot(V)))   [with K-atoms as a plain Select]
/// ```
pub fn pushdown_through_select<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pushdown-select (Eq. 11)";
    let Plan::GPivot { input, spec } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GPivot", plan.op_name()),
        ));
    };
    let Plan::Select {
        input: v,
        predicate,
    } = input.as_ref()
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no Select directly under the GPivot",
        ));
    };
    let v_schema = v.schema(provider)?;
    let k_cols = spec.validate(&v_schema)?;

    // Classify each conjunct.
    let mut atoms = Vec::new();
    for c in conjuncts(predicate) {
        let cols = c.columns();
        if cols.iter().all(|x| k_cols.contains(x)) {
            atoms.push(PushAtom::OnK(c));
            continue;
        }
        match &c {
            Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(col), Expr::Lit(val)) | (Expr::Lit(val), Expr::Col(col)) => {
                    let op = if matches!(a.as_ref(), Expr::Col(_)) {
                        *op
                    } else {
                        op.flipped()
                    };
                    if let Some(i) = spec.by.iter().position(|x| x == col) {
                        if op != CmpOp::Eq {
                            return Err(na(
                                RULE,
                                DiagCode::Gp011SelectOverCells,
                                format!("dimension atom `{c}` must be an equality"),
                            ));
                        }
                        atoms.push(PushAtom::ByEq {
                            by_idx: i,
                            value: val.clone(),
                        });
                    } else if let Some(i) = spec.on.iter().position(|x| x == col) {
                        atoms.push(PushAtom::OnCmp {
                            on_idx: i,
                            op,
                            lit: val.clone(),
                        });
                    } else {
                        return Err(na(
                            RULE,
                            DiagCode::Gp011SelectOverCells,
                            format!("atom `{c}` references unknown column `{col}`"),
                        ));
                    }
                }
                _ => {
                    return Err(na(
                        RULE,
                        DiagCode::Gp011SelectOverCells,
                        format!("unsupported atom shape `{c}`"),
                    ))
                }
            },
            _ => {
                return Err(na(
                    RULE,
                    DiagCode::Gp011SelectOverCells,
                    format!("unsupported atom `{c}`"),
                ))
            }
        }
    }

    // Build: pivot the raw input, then per group either null out cells
    // (static dimension-atom failure), wrap them in CASE (measure atoms),
    // or pass through.
    let pivoted = v.as_ref().clone().gpivot(spec.clone());

    let mut items: Vec<(Expr, String)> = k_cols.iter().map(|k| (Expr::col(k), k.clone())).collect();
    let mut k_selects = Vec::new();
    let mut cell_names = Vec::new();
    for gi in 0..spec.groups.len() {
        // Static dimension-atom evaluation for this group.
        let group_passes = atoms.iter().all(|a| match a {
            PushAtom::ByEq { by_idx, value } => &spec.groups[gi][*by_idx] == value,
            _ => true,
        });
        // Dynamic measure conditions for this group.
        let mut conds = Vec::new();
        for a in &atoms {
            match a {
                PushAtom::OnCmp { on_idx, op, lit } => conds.push(Expr::Cmp(
                    *op,
                    Box::new(Expr::col(spec.col_name(gi, *on_idx))),
                    Box::new(Expr::Lit(lit.clone())),
                )),
                PushAtom::OnK(e) => {
                    if gi == 0 {
                        k_selects.push(e.clone());
                    }
                }
                PushAtom::ByEq { .. } => {}
            }
        }
        for bj in 0..spec.on.len() {
            let name = spec.col_name(gi, bj);
            cell_names.push(name.clone());
            let expr = if !group_passes {
                Expr::Lit(Value::Null)
            } else if conds.is_empty() {
                Expr::col(&name)
            } else {
                Expr::Case {
                    branches: vec![(Expr::conjunction(conds.clone()), Expr::col(&name))],
                    otherwise: Box::new(Expr::Lit(Value::Null)),
                }
            };
            items.push((expr, name));
        }
    }

    let projected = pivoted.project(items);
    // Remove rows whose every cell became ⊥.
    let not_all_null = Expr::disjunction(
        cell_names
            .iter()
            .map(|c| Expr::col(c).is_null().not())
            .collect(),
    );
    let mut rewritten = projected.select(not_all_null);
    if !k_selects.is_empty() {
        rewritten = rewritten.select(Expr::conjunction(k_selects));
    }
    check(rewritten, provider, RULE)
}

/// §5.2.3, key-join case: `GPivot(Join(V, A, on))` where every pivot
/// parameter column comes from `V` and the join is on `V`'s carried (K)
/// columns ⇒ `Join(GPivot(V), A, on)`.
pub fn pushdown_through_join<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pushdown-join (§5.2.3)";
    let Plan::GPivot { input, spec } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GPivot", plan.op_name()),
        ));
    };
    let Plan::Join {
        left,
        right,
        kind: JoinKind::Inner,
        on,
        residual: None,
    } = input.as_ref()
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no plain inner join directly under the GPivot",
        ));
    };
    let left_schema = left.schema(provider)?;
    // All pivot parameter columns must come from the left side.
    for c in spec.by.iter().chain(spec.on.iter()) {
        if left_schema.index_of(c).is_err() {
            return Err(na(
                RULE,
                DiagCode::Gp013JoinOnCells,
                format!("pivot parameter column `{c}` does not come from one join side"),
            ));
        }
    }
    // The join must be on left K columns (not on by/on columns).
    for (l, _) in on {
        if spec.by.contains(l) || spec.on.contains(l) {
            return Err(na(
                RULE,
                DiagCode::Gp013JoinOnCells,
                format!(
                    "join column `{l}` is a pivot parameter (§5.2.3 case-projection case \
                     not implemented as a plan rewrite)"
                ),
            ));
        }
    }
    let rewritten = Plan::Join {
        left: Box::new(left.as_ref().clone().gpivot(spec.clone())),
        right: right.clone(),
        kind: JoinKind::Inner,
        on: on.clone(),
        residual: None,
    };
    // The pushed-down form emits [K(left), cells, right-cols] while the
    // original pivot emitted [K(left) ++ right-cols, cells]; restore order.
    let orig_schema = plan.schema(provider)?;
    let items: Vec<(Expr, String)> = orig_schema
        .column_names()
        .iter()
        .map(|c| (Expr::col(*c), c.to_string()))
        .collect();
    check(rewritten.project(items), provider, RULE)
}

/// §5.2.4 (reverse of Eq. 8): `GPivot(GroupBy(K'∪by ; f(B)))` ⇒
/// `GroupBy(K' ; f(cells))(GPivot(V))` — push the pivot below the
/// aggregation. Requires the GroupBy input to carry a key and `f` to be
/// `⊥`-respecting (SUM/MIN/MAX).
pub fn pushdown_through_group_by<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pushdown-groupby (§5.2.4)";
    let Plan::GPivot { input, spec } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GPivot", plan.op_name()),
        ));
    };
    let Plan::GroupBy {
        input: v,
        group_by,
        aggs,
    } = input.as_ref()
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GroupBy directly under the GPivot",
        ));
    };
    // The pivot dimensions must be grouping columns, the measures exactly
    // the aggregate outputs.
    if !spec.by.iter().all(|b| group_by.contains(b)) {
        return Err(na(
            RULE,
            DiagCode::Gp015AggNotBottomRespecting,
            "pivot dimensions are not grouping columns",
        ));
    }
    for a in aggs {
        use gpivot_algebra::AggFunc;
        if !matches!(a.func, AggFunc::Sum | AggFunc::Min | AggFunc::Max) {
            return Err(na(
                RULE,
                DiagCode::Gp015AggNotBottomRespecting,
                format!(
                    "aggregate {} is not ⊥-respecting (see Eq. 8 caveat)",
                    a.func
                ),
            ));
        }
    }
    let agg_outputs: Vec<&String> = aggs.iter().map(|a| &a.output).collect();
    if spec.on.len() != aggs.len() || !spec.on.iter().all(|o| agg_outputs.contains(&o)) {
        return Err(na(
            RULE,
            DiagCode::Gp015AggNotBottomRespecting,
            "pivot measures are not exactly the aggregate outputs",
        ));
    }
    // GroupBy input must itself carry a key for the inner pivot.
    let v_schema = v.schema(provider)?;
    if !v_schema.has_key() {
        return Err(na(
            RULE,
            DiagCode::Gp001PivotInputNoKey,
            "group-by input carries no key; the pushed-down pivot would be inapplicable \
             (§5.2.4: duplicate inputs)",
        ));
    }

    // Inner pivot: same dimensions/groups, measures = the aggregate inputs.
    let on_inputs: Vec<String> = spec
        .on
        .iter()
        .map(|o| {
            aggs.iter()
                .find(|a| &a.output == o)
                .map(|a| a.input.clone())
                .expect("checked above")
        })
        .collect();
    let inner_spec = gpivot_algebra::PivotSpec {
        by: spec.by.clone(),
        on: on_inputs.clone(),
        groups: spec.groups.clone(),
    };
    let inner = v.as_ref().clone().gpivot(inner_spec.clone());

    // Outer group-by: remaining grouping columns; aggregate each cell with
    // its measure's function, named as the original pivot output cell.
    let outer_group: Vec<&str> = group_by
        .iter()
        .filter(|g| !spec.by.contains(g))
        .map(String::as_str)
        .collect();
    let mut outer_aggs = Vec::new();
    for gi in 0..spec.groups.len() {
        for (bj, o) in spec.on.iter().enumerate() {
            let func = aggs.iter().find(|a| &a.output == o).expect("checked").func;
            outer_aggs.push(gpivot_algebra::AggSpec {
                func,
                input: inner_spec.col_name(gi, bj),
                output: spec.col_name(gi, bj),
            });
        }
    }
    let rewritten = inner.group_by(&outer_group, outer_aggs);
    // Column order: original = K' ++ cells where K' excludes... the
    // original output order is (GroupBy K cols minus nothing) — pivot K is
    // all group_by columns except spec.by, which matches outer_group; cells
    // follow in group-major order. Orders agree by construction.
    check(rewritten, provider, RULE)
}

/// Eq. 12: `GPivot(GUnpivot(H))` where the pivot exactly re-encodes what
/// the unpivot decoded ⇒ `Select(not-all-⊥, H)`.
pub fn cancel_unpivot_pivot<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "cancel-gunpivot-gpivot (Eq. 12)";
    let Plan::GPivot { input, spec } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GPivot", plan.op_name()),
        ));
    };
    let Plan::GUnpivot {
        input: h,
        spec: unspec,
    } = input.as_ref()
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GUnpivot directly under the GPivot",
        ));
    };
    // The pivot must re-encode exactly the unpivot's structure.
    if unspec.name_cols != spec.by || unspec.value_cols != spec.on {
        return Err(na(
            RULE,
            DiagCode::Gp022PivotUnpivotMismatch,
            "pivot parameters do not mirror the unpivot outputs",
        ));
    }
    if unspec.groups.len() != spec.groups.len() {
        return Err(na(
            RULE,
            DiagCode::Gp022PivotUnpivotMismatch,
            "group counts differ",
        ));
    }
    let mut cells = Vec::new();
    for (g, ug) in spec.groups.iter().zip(&unspec.groups) {
        if &ug.tags != g {
            return Err(na(
                RULE,
                DiagCode::Gp022PivotUnpivotMismatch,
                "group tags differ between pivot and unpivot",
            ));
        }
        // The unpivot's source columns must be the names the pivot will
        // re-create.
        for (bj, col) in ug.cols.iter().enumerate() {
            let expected = gpivot_algebra::encode_pivot_col(g, &spec.on[bj]);
            if col != &expected {
                return Err(na(
                    RULE,
                    DiagCode::Gp022PivotUnpivotMismatch,
                    format!("unpivot reads `{col}` but pivot would emit `{expected}`"),
                ));
            }
            cells.push(col.clone());
        }
    }
    // σs: not all cells ⊥.
    let not_all_null =
        Expr::disjunction(cells.iter().map(|c| Expr::col(c).is_null().not()).collect());
    // Restore the pivot output column order (K then cells); H may order
    // them differently.
    let h_schema = h.schema(provider)?;
    let k_cols: Vec<String> = h_schema
        .column_names()
        .into_iter()
        .filter(|c| !cells.iter().any(|x| x == c))
        .map(str::to_string)
        .collect();
    let mut order = k_cols;
    order.extend(cells);
    let rewritten = h
        .as_ref()
        .clone()
        .select(not_all_null)
        .project(order.iter().map(|c| (Expr::col(c), c.clone())).collect());
    check(rewritten, provider, RULE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::PivotSpec;
    use gpivot_storage::{DataType, Schema, SchemaRef, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "t".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("k", DataType::Int),
                        ("a", DataType::Str),
                        ("b", DataType::Int),
                    ],
                    &["k", "a"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn spec() -> PivotSpec {
        PivotSpec::simple("a", "b", vec![Value::str("x"), Value::str("y")])
    }

    #[test]
    fn rules_reject_wrong_shapes() {
        let p = provider();
        let scan = Plan::scan("t");
        assert!(pushdown_through_select(&scan, &p).is_err());
        assert!(pushdown_through_join(&scan, &p).is_err());
        assert!(pushdown_through_group_by(&scan, &p).is_err());
        assert!(cancel_unpivot_pivot(&scan, &p).is_err());
    }

    #[test]
    fn select_pushdown_rejects_non_equality_dimension_atoms() {
        let p = provider();
        let plan = Plan::scan("t")
            .select(Expr::col("a").gt(Expr::lit("m")))
            .gpivot(spec());
        assert!(pushdown_through_select(&plan, &p).is_err());
    }

    #[test]
    fn groupby_pushdown_rejects_count() {
        let p = provider();
        // COUNT breaks the ⊥-for-empty requirement (Eq. 8 caveat).
        let plan = Plan::scan("t")
            .group_by(&["k", "a"], vec![gpivot_algebra::AggSpec::count("b", "c")])
            .gpivot(PivotSpec::new(
                vec!["a"],
                vec!["c"],
                vec![vec![Value::str("x")]],
            ));
        assert!(pushdown_through_group_by(&plan, &p).is_err());
    }

    #[test]
    fn join_pushdown_rejects_pivot_params_in_join() {
        let p = {
            let mut m = provider();
            m.insert(
                "d".to_string(),
                Arc::new(Schema::from_pairs_keyed(&[("dk", DataType::Int)], &["dk"]).unwrap()),
            );
            m
        };
        // Join on the measure column b: §5.2.3's case-projection case.
        let plan = Plan::scan("t")
            .join(Plan::scan("d"), vec![("b", "dk")])
            .gpivot(spec());
        assert!(pushdown_through_join(&plan, &p).is_err());
    }
}
