//! Transposition (enabler) rules used by the normalization driver.
//!
//! These are not paper equations by themselves; they are the standard
//! algebraic commutations that let the Fig. 4 normalization reach the
//! paper's rules: hoisting a pivot-carrying SELECT or PROJECT through a
//! JOIN, commuting SELECT with a rename PROJECT, and sliding a pure rename
//! PROJECT below a GPIVOT so two pivots become adjacent for the combination
//! rules.

use crate::error::{CoreError, Result};
use gpivot_algebra::plan::{JoinKind, PivotSpec, Plan};
use gpivot_algebra::{Expr, SchemaProvider};
use gpivot_analyze::DiagCode;
use std::collections::HashMap;

fn na(rule: &'static str, code: DiagCode, reason: impl Into<String>) -> CoreError {
    CoreError::RuleNotApplicable {
        rule,
        code,
        reason: reason.into(),
    }
}

fn check<P: SchemaProvider>(plan: Plan, provider: &P, rule: &'static str) -> Result<Plan> {
    plan.schema(provider).map_err(|e| {
        na(
            rule,
            DiagCode::Gp005TypeCheck,
            format!("rewritten plan does not type-check: {e}"),
        )
    })?;
    Ok(plan)
}

/// Does this subtree end (ignoring pure projections and selections) in a
/// GPivot? Used to hoist only pivot-carrying wrappers.
fn carries_pivot(plan: &Plan) -> bool {
    match plan {
        Plan::GPivot { .. } => true,
        Plan::Select { input, .. } | Plan::Project { input, .. } => carries_pivot(input),
        _ => false,
    }
}

/// Pure column projection? Returns the `output name → source column` map.
fn pure_items(items: &[(Expr, String)]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::with_capacity(items.len());
    for (e, n) in items {
        match e {
            Expr::Col(c) => {
                map.insert(n.clone(), c.clone());
            }
            _ => return None,
        }
    }
    Some(map)
}

/// `Join(Select(p, A), B)` ⇒ `Select(p, Join(A, B))` (inner joins only),
/// applied when `A` carries a pivot — this is how a SELECT-over-GPIVOT pair
/// travels to the top together (§6.3.2's prerequisite: "we pull both SELECT
/// and GPIVOT up to the top of the query tree").
pub fn hoist_select_through_join<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "hoist-select-join";
    let Plan::Join {
        left,
        right,
        kind: JoinKind::Inner,
        on,
        residual,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "not an inner join",
        ));
    };
    if let Plan::Select { input, predicate } = left.as_ref() {
        if carries_pivot(input) {
            let rewritten = Plan::Join {
                left: Box::new(input.as_ref().clone()),
                right: right.clone(),
                kind: JoinKind::Inner,
                on: on.clone(),
                residual: residual.clone(),
            }
            .select(predicate.clone());
            return check(rewritten, provider, RULE);
        }
    }
    if let Plan::Select { input, predicate } = right.as_ref() {
        if carries_pivot(input) {
            let rewritten = Plan::Join {
                left: left.clone(),
                right: Box::new(input.as_ref().clone()),
                kind: JoinKind::Inner,
                on: on.clone(),
                residual: residual.clone(),
            }
            .select(predicate.clone());
            return check(rewritten, provider, RULE);
        }
    }
    Err(na(
        RULE,
        DiagCode::Gp020RuleShapeMismatch,
        "no pivot-carrying Select directly under the join",
    ))
}

/// `Join(Project(items, A), B)` ⇒ `Project(items ++ B columns, Join(A, B))`
/// for pure column projections over a pivot-carrying side. Join columns are
/// remapped through the rename.
pub fn hoist_project_through_join<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "hoist-project-join";
    let Plan::Join {
        left,
        right,
        kind: JoinKind::Inner,
        on,
        residual,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "not an inner join",
        ));
    };
    // Left side only (the symmetric case is reached after join reordering,
    // which we do not do — keep the rule minimal).
    let Plan::Project { input, items } = left.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "left join side is not a Project",
        ));
    };
    if !carries_pivot(input) {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "projected side carries no pivot",
        ));
    }
    let Some(map) = pure_items(items) else {
        return Err(na(
            RULE,
            DiagCode::Gp012ProjectDropsCells,
            "projection is not pure columns",
        ));
    };
    if residual.is_some() {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "join has a residual predicate",
        ));
    }
    // Remap join columns through the rename.
    let new_on: Vec<(String, String)> = on
        .iter()
        .map(|(l, r)| {
            map.get(l)
                .map(|src| (src.clone(), r.clone()))
                .ok_or_else(|| {
                    na(
                        RULE,
                        DiagCode::Gp012ProjectDropsCells,
                        format!("join column `{l}` not in projection"),
                    )
                })
        })
        .collect::<Result<_>>()?;
    let right_cols: Vec<String> = right
        .schema(provider)?
        .column_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let mut new_items: Vec<(Expr, String)> = items.clone();
    for c in right_cols {
        new_items.push((Expr::col(&c), c));
    }
    let rewritten = Plan::Join {
        left: Box::new(input.as_ref().clone()),
        right: right.clone(),
        kind: JoinKind::Inner,
        on: new_on,
        residual: None,
    }
    .project(new_items);
    check(rewritten, provider, RULE)
}

/// `Select(p, Project(pure items, Z))` ⇒ `Project(items, Select(p', Z))`
/// with `p'` renamed through the projection — bubbles rename projections
/// above selections so the driver can absorb them at the top.
pub fn select_through_project<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "select-through-project";
    let Plan::Select { input, predicate } = plan else {
        return Err(na(RULE, DiagCode::Gp020RuleShapeMismatch, "not a Select"));
    };
    let Plan::Project { input: z, items } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no Project under the Select",
        ));
    };
    if !carries_pivot(z) {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "projected input carries no pivot",
        ));
    }
    let Some(map) = pure_items(items) else {
        return Err(na(
            RULE,
            DiagCode::Gp012ProjectDropsCells,
            "projection is not pure columns",
        ));
    };
    let renamed =
        predicate.rename_columns(&|c| map.get(c).cloned().unwrap_or_else(|| c.to_string()));
    // Every predicate column must be resolvable through the projection.
    if !predicate.columns().iter().all(|c| map.contains_key(c)) {
        return Err(na(
            RULE,
            DiagCode::Gp012ProjectDropsCells,
            "predicate references a column the projection drops",
        ));
    }
    let rewritten = z.as_ref().clone().select(renamed).project(items.clone());
    check(rewritten, provider, RULE)
}

/// `GroupBy(K'; aggs)(Project(pure items, Z))` ⇒ `GroupBy(K″; aggs′)(Z)`
/// with grouping columns and aggregate inputs renamed through the
/// projection. A GROUPBY only reads the columns it names, so a pure-column
/// projection below it (even a dropping one) can always be absorbed —
/// this un-blocks the Eq. 8 pullup when an order-restoring `Project` sits
/// between the GROUPBY and a pivot.
pub fn groupby_through_project<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "groupby-through-project";
    let Plan::GroupBy {
        input,
        group_by,
        aggs,
    } = plan
    else {
        return Err(na(RULE, DiagCode::Gp020RuleShapeMismatch, "not a GroupBy"));
    };
    let Plan::Project { input: z, items } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no Project under the GroupBy",
        ));
    };
    if !carries_pivot(z) {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "projected input carries no pivot",
        ));
    }
    let Some(map) = pure_items(items) else {
        return Err(na(
            RULE,
            DiagCode::Gp012ProjectDropsCells,
            "projection is not pure columns",
        ));
    };
    let rename = |c: &String| -> Result<String> {
        map.get(c).cloned().ok_or_else(|| {
            na(
                RULE,
                DiagCode::Gp012ProjectDropsCells,
                format!("column `{c}` not in projection"),
            )
        })
    };
    // Grouping columns keep their *output* names only if the rename is
    // trivial for them; otherwise the output schema would change. Require
    // group columns and aggregate inputs to map to identically-named source
    // columns OR wrap nothing — simplest sound version: allow arbitrary
    // renames for aggregate inputs (their output names are ours) but
    // require identity for group columns.
    for g in group_by {
        let src = rename(g)?;
        if &src != g {
            return Err(na(
                RULE,
                DiagCode::Gp012ProjectDropsCells,
                format!(
                    "grouping column `{g}` is renamed from `{src}`; absorbing would \
                         change the output schema"
                ),
            ));
        }
    }
    let new_aggs = aggs
        .iter()
        .map(|a| {
            Ok(gpivot_algebra::AggSpec {
                func: a.func,
                input: if a.func == gpivot_algebra::AggFunc::CountStar {
                    a.input.clone()
                } else {
                    rename(&a.input)?
                },
                output: a.output.clone(),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    let rewritten = Plan::GroupBy {
        input: z.clone(),
        group_by: group_by.clone(),
        aggs: new_aggs,
    };
    check(rewritten, provider, RULE)
}

/// `GPivot(Project(pure rename, Z), spec)` ⇒
/// `Project(cell renames, GPivot(Z, spec'))` where `spec'` uses the
/// pre-rename column names. Requires the projection to be a *bijective
/// rename keeping every column* (dropping columns before a pivot changes
/// its `K`, §5.2.2). This makes stacked pivots adjacent so Eq. 6 applies.
pub fn pivot_through_rename<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pivot-through-rename";
    let Plan::GPivot { input, spec } = plan else {
        return Err(na(RULE, DiagCode::Gp020RuleShapeMismatch, "not a GPivot"));
    };
    let Plan::Project { input: z, items } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no Project under the GPivot",
        ));
    };
    let Some(map) = pure_items(items) else {
        return Err(na(
            RULE,
            DiagCode::Gp012ProjectDropsCells,
            "projection is not pure columns",
        ));
    };
    let z_schema = z.schema(provider)?;
    // Must keep every column exactly once (pure rename / permutation).
    if items.len() != z_schema.arity() {
        return Err(na(
            RULE,
            DiagCode::Gp012ProjectDropsCells,
            "projection drops or duplicates columns; sliding the pivot below \
             it would change the pivot's K",
        ));
    }
    let mut seen_sources = std::collections::HashSet::new();
    for src in map.values() {
        if !seen_sources.insert(src.as_str()) {
            return Err(na(
                RULE,
                DiagCode::Gp012ProjectDropsCells,
                format!("source column `{src}` projected twice"),
            ));
        }
    }

    // Rewrite the spec through the rename (output name → source name).
    let rename = |c: &String| -> Result<String> {
        map.get(c).cloned().ok_or_else(|| {
            na(
                RULE,
                DiagCode::Gp012ProjectDropsCells,
                format!("pivot column `{c}` not in projection"),
            )
        })
    };
    let new_spec = PivotSpec {
        by: spec.by.iter().map(rename).collect::<Result<_>>()?,
        on: spec.on.iter().map(rename).collect::<Result<_>>()?,
        groups: spec.groups.clone(),
    };

    // Outer projection: restore the original output names. K columns of the
    // original pivot output are projection output names; cells re-encode.
    let orig_schema = plan.schema(provider)?;
    let new_cells: Vec<String> = new_spec.output_col_names();
    let old_cells: Vec<String> = spec.output_col_names();
    let mut out_items: Vec<(Expr, String)> = Vec::with_capacity(orig_schema.arity());
    for name in orig_schema.column_names() {
        if let Some(pos) = old_cells.iter().position(|c| c == name) {
            out_items.push((Expr::col(&new_cells[pos]), name.to_string()));
        } else {
            // K column: its pre-rename source name.
            let src = map.get(name).ok_or_else(|| {
                na(
                    RULE,
                    DiagCode::Gp012ProjectDropsCells,
                    format!("K column `{name}` not in projection"),
                )
            })?;
            out_items.push((Expr::col(src), name.to_string()));
        }
    }
    let rewritten = z.as_ref().clone().gpivot(new_spec).project(out_items);
    check(rewritten, provider, RULE)
}
