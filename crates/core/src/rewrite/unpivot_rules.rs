//! Rewriting rules for GUNPIVOT (§5.3 pullups, §5.4 pushdowns; Eq. 13–18).
//!
//! Terminology from the paper: in a GUNPIVOT output, the *name columns* are
//! the new dimension columns decoded from column names (`A1..Am`) and the
//! *value columns* are the measures (`B1..Bn`); everything else is carried
//! through (`K`).

use crate::error::{CoreError, Result};
use gpivot_algebra::plan::{JoinKind, Plan, UnpivotSpec};
use gpivot_algebra::{AggFunc, AggSpec, CmpOp, Expr, SchemaProvider};
use gpivot_analyze::DiagCode;
use gpivot_storage::Value;

fn na(rule: &'static str, code: DiagCode, reason: impl Into<String>) -> CoreError {
    CoreError::RuleNotApplicable {
        rule,
        code,
        reason: reason.into(),
    }
}

fn check<P: SchemaProvider>(plan: Plan, provider: &P, rule: &'static str) -> Result<Plan> {
    plan.schema(provider).map_err(|e| {
        na(
            rule,
            DiagCode::Gp005TypeCheck,
            format!("rewritten plan does not type-check: {e}"),
        )
    })?;
    Ok(plan)
}

fn conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(a, b) => {
            let mut v = conjuncts(a);
            v.extend(conjuncts(b));
            v
        }
        other => vec![other.clone()],
    }
}

/// Eq. 13 / §5.3.1: push a SELECT below a GUNPIVOT (equivalently: pull the
/// GUNPIVOT above the SELECT). `Select(pred, GUnpivot(H))` with `pred` a
/// conjunction of:
///
/// * atoms over carried (K) columns — pushed through unchanged;
/// * `name_col = x` atoms — resolved *statically* by filtering the unpivot
///   groups;
/// * `value_col op y` atoms — turned into per-group CASE projections that
///   `⊥`-out a group's cells when the condition fails.
pub fn push_select_below_unpivot<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "select-below-gunpivot (Eq. 13)";
    let Plan::Select { input, predicate } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not Select", plan.op_name()),
        ));
    };
    let Plan::GUnpivot { input: h, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GUnpivot directly under the Select",
        ));
    };
    let h_schema = h.schema(provider)?;
    let k_cols = spec.validate(&h_schema)?;

    enum Atom {
        OnK(Expr),
        NameEq {
            name_idx: usize,
            value: Value,
        },
        ValueCmp {
            value_idx: usize,
            op: CmpOp,
            lit: Value,
        },
    }

    let mut atoms = Vec::new();
    for c in conjuncts(predicate) {
        let cols = c.columns();
        if cols.iter().all(|x| k_cols.contains(x)) {
            atoms.push(Atom::OnK(c));
            continue;
        }
        match &c {
            Expr::Cmp(op, a, b) => match (a.as_ref(), b.as_ref()) {
                (Expr::Col(col), Expr::Lit(val)) | (Expr::Lit(val), Expr::Col(col)) => {
                    let op = if matches!(a.as_ref(), Expr::Col(_)) {
                        *op
                    } else {
                        op.flipped()
                    };
                    if let Some(i) = spec.name_cols.iter().position(|x| x == col) {
                        if op != CmpOp::Eq {
                            return Err(na(
                                RULE,
                                DiagCode::Gp011SelectOverCells,
                                format!("name-column atom `{c}` must be an equality"),
                            ));
                        }
                        atoms.push(Atom::NameEq {
                            name_idx: i,
                            value: val.clone(),
                        });
                    } else if let Some(i) = spec.value_cols.iter().position(|x| x == col) {
                        atoms.push(Atom::ValueCmp {
                            value_idx: i,
                            op,
                            lit: val.clone(),
                        });
                    } else {
                        return Err(na(
                            RULE,
                            DiagCode::Gp011SelectOverCells,
                            format!("unknown column `{col}` in atom `{c}`"),
                        ));
                    }
                }
                _ => {
                    return Err(na(
                        RULE,
                        DiagCode::Gp011SelectOverCells,
                        format!("unsupported atom shape `{c}`"),
                    ))
                }
            },
            _ => {
                return Err(na(
                    RULE,
                    DiagCode::Gp011SelectOverCells,
                    format!("unsupported atom `{c}`"),
                ))
            }
        }
    }

    // Static group filtering by name atoms (§5.3.1 third case).
    let kept_groups: Vec<_> = spec
        .groups
        .iter()
        .filter(|g| {
            atoms.iter().all(|a| match a {
                Atom::NameEq { name_idx, value } => &g.tags[*name_idx] == value,
                _ => true,
            })
        })
        .cloned()
        .collect();
    if kept_groups.is_empty() {
        return Err(na(
            RULE,
            DiagCode::Gp011SelectOverCells,
            "no unpivot group satisfies the name-column atoms",
        ));
    }

    // Dynamic value atoms become a CASE projection over H (§5.3.1 second
    // case): a group's cells are ⊥-ed out when its value condition fails.
    let value_atoms: Vec<(usize, CmpOp, Value)> = atoms
        .iter()
        .filter_map(|a| match a {
            Atom::ValueCmp { value_idx, op, lit } => Some((*value_idx, *op, lit.clone())),
            _ => None,
        })
        .collect();

    let mut base = h.as_ref().clone();
    if !value_atoms.is_empty() {
        let mut items: Vec<(Expr, String)> =
            k_cols.iter().map(|k| (Expr::col(k), k.clone())).collect();
        for g in &kept_groups {
            let cond = Expr::conjunction(
                value_atoms
                    .iter()
                    .map(|(vi, op, lit)| {
                        Expr::Cmp(
                            *op,
                            Box::new(Expr::col(&g.cols[*vi])),
                            Box::new(Expr::Lit(lit.clone())),
                        )
                    })
                    .collect(),
            );
            for c in &g.cols {
                items.push((
                    Expr::Case {
                        branches: vec![(cond.clone(), Expr::col(c))],
                        otherwise: Box::new(Expr::Lit(Value::Null)),
                    },
                    c.clone(),
                ));
            }
        }
        base = base.project(items);
    } else if kept_groups.len() < spec.groups.len() {
        // Only name filtering: drop the unused groups' columns (negative
        // projection, §5.3.2-style).
        let mut keep: Vec<String> = k_cols.clone();
        for g in &kept_groups {
            keep.extend(g.cols.iter().cloned());
        }
        base = base.project(keep.iter().map(|c| (Expr::col(c), c.clone())).collect());
    }

    let new_spec = UnpivotSpec {
        groups: kept_groups,
        name_cols: spec.name_cols.clone(),
        value_cols: spec.value_cols.clone(),
    };
    let mut rewritten = base.gunpivot(new_spec);
    let k_atoms: Vec<Expr> = atoms
        .into_iter()
        .filter_map(|a| match a {
            Atom::OnK(e) => Some(e),
            _ => None,
        })
        .collect();
    if !k_atoms.is_empty() {
        rewritten = rewritten.select(Expr::conjunction(k_atoms));
    }
    // Residual dynamic value atoms: the CASE projection nulls out failing
    // cells, and GUNPIVOT drops all-⊥ groups — but a group with *several*
    // value columns may keep non-⊥ cells for other measures; the CASE nulls
    // the whole group, matching the Select semantics only when the atoms
    // constrain the row as a whole, which they do (the Select removes the
    // whole output row). No residual needed.
    check(rewritten, provider, RULE)
}

/// §5.3.3, K-join case + Eq. 14's value-join case: pull a GUNPIVOT above a
/// JOIN. `Join(GUnpivot(H), T, on)`:
///
/// * join on carried (K) columns ⇒ `GUnpivot(Join(H, T, on))`;
/// * join on a value column `B_l = K1` ⇒ `GUnpivot(π_case(H ⋈ T))` where
///   the case nulls a group's cells unless its `B_l` column matches.
pub fn pull_unpivot_above_join<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pull-gunpivot-join (§5.3.3 / Eq. 14)";
    let Plan::Join {
        left,
        right,
        kind: JoinKind::Inner,
        on,
        residual: None,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "not a plain inner join",
        ));
    };
    let Plan::GUnpivot { input: h, spec } = left.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "left join side is not a GUnpivot",
        ));
    };
    let h_schema = h.schema(provider)?;
    let k_cols = spec.validate(&h_schema)?;

    // Case 1: all join columns are carried K columns.
    if on.iter().all(|(l, _)| k_cols.contains(l)) {
        let rewritten = Plan::Join {
            left: Box::new(h.as_ref().clone()),
            right: right.clone(),
            kind: JoinKind::Inner,
            on: on.clone(),
            residual: None,
        }
        .gunpivot(spec.clone());
        // GUnpivot K columns now include T's columns; column order is
        // K(H), K(T), names, values vs original K(H), names, values, K(T).
        let orig_schema = plan.schema(provider)?;
        let items: Vec<(Expr, String)> = orig_schema
            .column_names()
            .iter()
            .map(|c| (Expr::col(*c), c.to_string()))
            .collect();
        return check(rewritten.project(items), provider, RULE);
    }

    // Case 2 (Eq. 14): a single join column is a value column.
    if on.len() == 1 && spec.value_cols.contains(&on[0].0) {
        let vi = spec
            .value_cols
            .iter()
            .position(|c| c == &on[0].0)
            .expect("checked");
        let t_key = &on[0].1;
        // Cross-join H with T, then null out each group's cells unless its
        // B_l column equals T's join column.
        let joined = Plan::Join {
            left: Box::new(h.as_ref().clone()),
            right: right.clone(),
            kind: JoinKind::Inner,
            on: vec![],
            residual: Some(Expr::disjunction(
                spec.groups
                    .iter()
                    .map(|g| Expr::col(&g.cols[vi]).eq(Expr::col(t_key)))
                    .collect(),
            )),
        };
        let right_cols: Vec<String> = right
            .schema(provider)?
            .column_names()
            .into_iter()
            .map(str::to_string)
            .collect();
        let mut items: Vec<(Expr, String)> = k_cols
            .iter()
            .chain(right_cols.iter())
            .map(|c| (Expr::col(c), c.clone()))
            .collect();
        for g in &spec.groups {
            let cond = Expr::col(&g.cols[vi]).eq(Expr::col(t_key));
            for c in &g.cols {
                items.push((
                    Expr::Case {
                        branches: vec![(cond.clone(), Expr::col(c))],
                        otherwise: Box::new(Expr::Lit(Value::Null)),
                    },
                    c.clone(),
                ));
            }
        }
        let cased = joined.project(items);
        let rewritten = cased.gunpivot(spec.clone());
        let orig_schema = plan.schema(provider)?;
        let out_items: Vec<(Expr, String)> = orig_schema
            .column_names()
            .iter()
            .map(|c| (Expr::col(*c), c.to_string()))
            .collect();
        return check(rewritten.project(out_items), provider, RULE);
    }

    Err(na(
        RULE,
        DiagCode::Gp013JoinOnCells,
        "join involves name columns (higher-order join, §5.3.3 third case) or \
         multiple value columns",
    ))
}

/// Eq. 15 / §5.3.4: pull a GUNPIVOT above a GROUPBY via two-level
/// aggregation. `GroupBy(K', f(value_col))(GUnpivot(H))` where `K' ⊆ K ∪
/// name columns and `f ∈ {SUM, COUNT}` ⇒ aggregate each unpivot column
/// inside `H` first, unpivot the partial aggregates, then re-aggregate.
pub fn pull_unpivot_above_group_by<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "pull-gunpivot-groupby (Eq. 15)";
    let Plan::GroupBy {
        input,
        group_by,
        aggs,
    } = plan
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GroupBy", plan.op_name()),
        ));
    };
    let Plan::GUnpivot { input: h, spec } = input.as_ref() else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GUnpivot directly under the GroupBy",
        ));
    };
    let h_schema = h.schema(provider)?;
    let k_cols = spec.validate(&h_schema)?;

    // Grouping columns: subset of K ∪ name columns (never value columns —
    // §5.3.4: "we cannot group same values in different columns").
    for g in group_by {
        if !k_cols.contains(g) && !spec.name_cols.contains(g) {
            return Err(na(
                RULE,
                DiagCode::Gp019GroupByOnCells,
                format!("grouping column `{g}` is a value column or unknown"),
            ));
        }
    }
    // Aggregates: f(value_col), f ∈ {SUM, COUNT} (paper's simplification).
    for a in aggs {
        if !matches!(a.func, AggFunc::Sum | AggFunc::Count) {
            return Err(na(
                RULE,
                DiagCode::Gp015AggNotBottomRespecting,
                format!("aggregate {} not supported here", a.func),
            ));
        }
        if !spec.value_cols.contains(&a.input) {
            return Err(na(
                RULE,
                DiagCode::Gp015AggNotBottomRespecting,
                format!(
                    "aggregate input `{}` is not a value column (§5.3.4: cannot \
                     aggregate name columns)",
                    a.input
                ),
            ));
        }
    }

    // Inner aggregation over H: group by K'' = group_by ∩ K, computing
    // f(col) for every unpivot source column used by some aggregate.
    let k2: Vec<&str> = group_by
        .iter()
        .filter(|g| k_cols.contains(*g))
        .map(String::as_str)
        .collect();
    let mut inner_aggs = Vec::new();
    let mut partial_groups = Vec::new();
    for g in &spec.groups {
        let mut cols = Vec::new();
        for a in aggs {
            let vi = spec
                .value_cols
                .iter()
                .position(|c| c == &a.input)
                .expect("checked");
            let partial = format!("__p_{}_{}", a.output, g.cols[vi]);
            inner_aggs.push(AggSpec {
                func: a.func,
                input: g.cols[vi].clone(),
                output: partial.clone(),
            });
            cols.push(partial);
        }
        partial_groups.push(gpivot_algebra::plan::UnpivotGroup {
            tags: g.tags.clone(),
            cols,
        });
    }
    let inner = h.as_ref().clone().group_by(&k2, inner_aggs);

    // COUNT partials must re-aggregate with SUM; a COUNT partial of 0 must
    // not survive as a row — SQL count returns 0, and unpivot would carry
    // it. Guard: refuse COUNT when any group could be empty... we instead
    // map COUNT partials of 0 to ⊥ with a CASE so the unpivot drops them.
    let mut case_items: Vec<(Expr, String)> = k2
        .iter()
        .map(|k| (Expr::col(*k), (*k).to_string()))
        .collect();
    let mut needs_case = false;
    for (g, pg) in spec.groups.iter().zip(&partial_groups) {
        let _ = g;
        for (a, col) in aggs.iter().zip(&pg.cols) {
            if a.func == AggFunc::Count {
                needs_case = true;
                case_items.push((
                    Expr::Case {
                        branches: vec![(Expr::col(col).gt(Expr::lit(0)), Expr::col(col))],
                        otherwise: Box::new(Expr::Lit(Value::Null)),
                    },
                    col.clone(),
                ));
            } else {
                case_items.push((Expr::col(col), col.clone()));
            }
        }
    }
    let inner = if needs_case {
        inner.project(case_items)
    } else {
        inner
    };

    // Unpivot the partial aggregates, then re-aggregate.
    let value_names: Vec<String> = aggs.iter().map(|a| format!("__v_{}", a.output)).collect();
    let mid = inner.gunpivot(UnpivotSpec {
        groups: partial_groups,
        name_cols: spec.name_cols.clone(),
        value_cols: value_names.clone(),
    });
    let outer_aggs: Vec<AggSpec> = aggs
        .iter()
        .zip(&value_names)
        .map(|(a, v)| AggSpec {
            // COUNT partials are re-aggregated with SUM.
            func: AggFunc::Sum,
            input: v.clone(),
            output: a.output.clone(),
        })
        .collect();
    let rewritten = mid.group_by(
        &group_by.iter().map(String::as_str).collect::<Vec<_>>(),
        outer_aggs,
    );
    check(rewritten, provider, RULE)
}

/// Eq. 16: push a GUNPIVOT below a SELECT over to-be-unpivoted columns via
/// a key semijoin: `GUnpivot(Select(σ, H))` ⇒
/// `(π_K(σ(H)) ⋉) GUnpivot(H)` — realized as
/// `GUnpivot(π_K(σ(H)) ⋈ H)` after pushing the key join in (§5.3.3).
pub fn push_unpivot_below_select<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "push-gunpivot-select (Eq. 16)";
    let Plan::GUnpivot { input, spec } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GUnpivot", plan.op_name()),
        ));
    };
    let Plan::Select {
        input: h,
        predicate,
    } = input.as_ref()
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no Select directly under the GUnpivot",
        ));
    };
    let h_schema = h.schema(provider)?;
    let k_cols = spec.validate(&h_schema)?;
    // The predicate must touch at least one to-be-unpivoted column (else
    // the trivial §5.4.1 commute applies — also handled here).
    let consumed: Vec<&String> = spec.groups.iter().flat_map(|g| g.cols.iter()).collect();
    let touches_cells = predicate.columns().iter().any(|c| consumed.contains(&c));
    if !touches_cells {
        // §5.4.1 first case: plain commute.
        let rewritten = h
            .as_ref()
            .clone()
            .gunpivot(spec.clone())
            .select(predicate.clone());
        return check(rewritten, provider, RULE);
    }
    if !h_schema.has_key() {
        return Err(na(
            RULE,
            DiagCode::Gp001PivotInputNoKey,
            "input carries no key for the semijoin",
        ));
    }
    // Key semijoin: qualifying keys from σ(H), joined back into H before
    // unpivoting.
    let keys = h
        .as_ref()
        .clone()
        .select(predicate.clone())
        .project_cols(&k_cols.iter().map(String::as_str).collect::<Vec<_>>());
    let rename: Vec<(Expr, String)> = k_cols
        .iter()
        .map(|k| (Expr::col(k), format!("__key_{k}")))
        .collect();
    let keys = Plan::GroupBy {
        input: Box::new(keys),
        group_by: k_cols.clone(),
        aggs: vec![],
    }
    .project(rename);
    let on: Vec<(String, String)> = k_cols
        .iter()
        .map(|k| (k.clone(), format!("__key_{k}")))
        .collect();
    let filtered = Plan::Join {
        left: Box::new(h.as_ref().clone()),
        right: Box::new(keys),
        kind: JoinKind::Inner,
        on,
        residual: None,
    }
    .project(
        h_schema
            .column_names()
            .iter()
            .map(|c| (Expr::col(*c), c.to_string()))
            .collect(),
    );
    check(filtered.gunpivot(spec.clone()), provider, RULE)
}

/// Eq. 18: push a GUNPIVOT below a GROUPBY when it unpivots the aggregate
/// outputs: `GUnpivot(f-outputs)(GroupBy(K; f(B_i)))` ⇒
/// `GroupBy(K ∪ names; f(value))(GUnpivot([B_i])(T))`.
pub fn push_unpivot_below_group_by<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<Plan> {
    const RULE: &str = "push-gunpivot-groupby (Eq. 18)";
    let Plan::GUnpivot { input, spec } = plan else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            format!("top is {}, not GUnpivot", plan.op_name()),
        ));
    };
    let Plan::GroupBy {
        input: t,
        group_by,
        aggs,
    } = input.as_ref()
    else {
        return Err(na(
            RULE,
            DiagCode::Gp020RuleShapeMismatch,
            "no GroupBy directly under the GUnpivot",
        ));
    };
    // Every unpivoted column must be an aggregate output; grouping columns
    // must be untouched (§5.4.4: unpivoting group-by columns is not
    // pushable).
    let consumed: Vec<&String> = spec.groups.iter().flat_map(|g| g.cols.iter()).collect();
    for c in &consumed {
        if group_by.contains(c) {
            return Err(na(
                RULE,
                DiagCode::Gp022PivotUnpivotMismatch,
                format!("unpivot consumes grouping column `{c}` (§5.4.4)"),
            ));
        }
        if !aggs.iter().any(|a| &a.output == *c) {
            return Err(na(
                RULE,
                DiagCode::Gp022PivotUnpivotMismatch,
                format!("unpivot consumes non-aggregate column `{c}`"),
            ));
        }
    }
    // One value column (the paper's Figure 21 shape); each group reads one
    // aggregate output, all computed with the same function over different
    // inputs. `f` must disregard ⊥ (SUM/COUNT/MIN/MAX all qualify; COUNT of
    // an empty group would produce 0 either way since groups here exist).
    if spec.value_cols.len() != 1 {
        return Err(na(
            RULE,
            DiagCode::Gp015AggNotBottomRespecting,
            "only single-measure unpivots supported (Figure 21 shape)",
        ));
    }
    let mut func: Option<AggFunc> = None;
    let mut inner_groups = Vec::new();
    for g in &spec.groups {
        let a = aggs
            .iter()
            .find(|a| a.output == g.cols[0])
            .expect("checked above");
        match func {
            None => func = Some(a.func),
            Some(f) if f == a.func => {}
            Some(f) => {
                return Err(na(
                    RULE,
                    DiagCode::Gp015AggNotBottomRespecting,
                    format!("mixed aggregate functions {f} and {}", a.func),
                ))
            }
        }
        if a.func == AggFunc::CountStar {
            return Err(na(
                RULE,
                DiagCode::Gp015AggNotBottomRespecting,
                "count(*) has no input column to unpivot",
            ));
        }
        inner_groups.push(gpivot_algebra::plan::UnpivotGroup {
            tags: g.tags.clone(),
            cols: vec![a.input.clone()],
        });
    }
    let func = func.ok_or_else(|| na(RULE, DiagCode::Gp020RuleShapeMismatch, "no groups"))?;
    // All aggregate outputs must be consumed (otherwise the leftover
    // aggregates would need duplicating — keep the rule exact).
    if aggs.len() != spec.groups.len() {
        return Err(na(
            RULE,
            DiagCode::Gp015AggNotBottomRespecting,
            "unpivot does not consume every aggregate output",
        ));
    }

    let value_col = &spec.value_cols[0];
    let inner = t.as_ref().clone().gunpivot(UnpivotSpec {
        groups: inner_groups,
        name_cols: spec.name_cols.clone(),
        value_cols: vec![value_col.clone()],
    });
    let mut outer_group: Vec<&str> = group_by.iter().map(String::as_str).collect();
    let name_cols: Vec<&str> = spec.name_cols.iter().map(String::as_str).collect();
    outer_group.extend(name_cols);
    let rewritten = inner.group_by(
        &outer_group,
        vec![AggSpec {
            func,
            input: value_col.clone(),
            output: value_col.clone(),
        }],
    );
    check(rewritten, provider, RULE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpivot_algebra::plan::UnpivotGroup;
    use gpivot_storage::{DataType, Schema, SchemaRef, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "wide".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("k", DataType::Int),
                        ("x_v", DataType::Int),
                        ("y_v", DataType::Int),
                    ],
                    &["k"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn unspec() -> UnpivotSpec {
        UnpivotSpec::new(
            vec![
                UnpivotGroup {
                    tags: vec![Value::str("x")],
                    cols: vec!["x_v".into()],
                },
                UnpivotGroup {
                    tags: vec![Value::str("y")],
                    cols: vec!["y_v".into()],
                },
            ],
            vec!["which"],
            vec!["v"],
        )
    }

    #[test]
    fn rules_reject_wrong_shapes() {
        let p = provider();
        let scan = Plan::scan("wide");
        assert!(push_select_below_unpivot(&scan, &p).is_err());
        assert!(pull_unpivot_above_join(&scan, &p).is_err());
        assert!(pull_unpivot_above_group_by(&scan, &p).is_err());
        assert!(push_unpivot_below_select(&scan, &p).is_err());
        assert!(push_unpivot_below_group_by(&scan, &p).is_err());
    }

    #[test]
    fn select_pushdown_rejects_unsatisfiable_name_atoms() {
        let p = provider();
        let plan = Plan::scan("wide")
            .gunpivot(unspec())
            .select(Expr::col("which").eq(Expr::lit("zzz")));
        // No group matches 'zzz': the rule refuses (the plan is constant-
        // empty; the optimizer has nothing to push).
        assert!(push_select_below_unpivot(&plan, &p).is_err());
    }

    #[test]
    fn groupby_pullup_rejects_value_column_grouping() {
        let p = provider();
        // §5.3.4: cannot group by the value column.
        let plan = Plan::scan("wide")
            .gunpivot(unspec())
            .group_by(&["v"], vec![gpivot_algebra::AggSpec::count_star("n")]);
        assert!(pull_unpivot_above_group_by(&plan, &p).is_err());
    }

    #[test]
    fn groupby_pullup_rejects_min_max() {
        let p = provider();
        let plan = Plan::scan("wide")
            .gunpivot(unspec())
            .group_by(&["which"], vec![gpivot_algebra::AggSpec::max("v", "m")]);
        assert!(pull_unpivot_above_group_by(&plan, &p).is_err());
    }
}
