//! The normalization driver (Fig. 4 of the paper): pull every GPIVOT to the
//! top of the view tree and combine adjacent pivots, so that the efficient
//! update propagation rules apply.
//!
//! The driver runs a fixpoint of the pullup, combination and transposition
//! rules bottom-up. Top-level pure-column `Project`s are absorbed into an
//! output rename map (the MV is materialized from the normalized plan; the
//! user-facing view is that MV re-projected through the map). Views whose
//! pivots cannot be hoisted keep them in place — the maintenance planner
//! then falls back to the insert/delete propagation rules, which is the
//! paper's completeness story (§3).

use crate::combine::{try_compose, try_multicolumn};
use crate::error::Result;
use crate::rewrite::pullup::{
    cancel_pivot_unpivot, pullup_through_group_by, pullup_through_join, pullup_through_project,
    pullup_through_select, push_select_below_pivot_selfjoin, swap_unpivot_below_pivot,
};
use crate::rewrite::transpose::{
    groupby_through_project, hoist_project_through_join, hoist_select_through_join,
    pivot_through_rename, select_through_project,
};
use gpivot_algebra::plan::Plan;
use gpivot_algebra::{AggSpec, Expr, PivotSpec, SchemaProvider};

/// What sits at the top of a normalized view tree — this decides which
/// update propagation rules the maintenance planner can use.
#[derive(Debug, Clone, PartialEq)]
pub enum TopShape {
    /// `GPivot(relational core)` — Fig. 23 update rules apply.
    PivotTop { spec: PivotSpec },
    /// `Select(σc, GPivot(core))` with σc null-intolerant over pivoted
    /// columns — Fig. 29 combined update rules apply.
    SelectOverPivot { spec: PivotSpec, predicate: Expr },
    /// `GPivot(GroupBy(core))` — Fig. 27 combined update rules apply.
    PivotOverGroupBy {
        spec: PivotSpec,
        group_by: Vec<String>,
        aggs: Vec<AggSpec>,
    },
    /// No pivot anywhere — plain relational IVM.
    Relational,
    /// Pivots remain buried in the tree — only the insert/delete
    /// propagation rules (Fig. 22) can maintain this view.
    StuckPivot,
}

/// A view after normalization.
#[derive(Debug, Clone)]
pub struct NormalizedView {
    /// The normalized plan (top rename projections stripped).
    pub plan: Plan,
    /// `(normalized column, view column)` pairs in view output order;
    /// `Project(plan, output)` reproduces the original view exactly.
    pub output: Vec<(String, String)>,
    /// True iff `output` is the in-order identity over the normalized
    /// plan's schema (no projection needed to recover the original view).
    pub identity_output: bool,
    /// Rules applied, in order, for explainability.
    pub log: Vec<String>,
    /// Classification of the normalized top.
    pub shape: TopShape,
}

impl NormalizedView {
    /// The plan computing the *original* view from the normalized plan.
    pub fn view_plan(&self) -> Plan {
        if self.identity_output {
            self.plan.clone()
        } else {
            self.plan.clone().project(
                self.output
                    .iter()
                    .map(|(from, to)| (Expr::col(from), to.clone()))
                    .collect(),
            )
        }
    }
}

/// All rules the driver tries at a node, in priority order.
fn apply_first_rule<P: SchemaProvider>(plan: &Plan, provider: &P) -> Option<(Plan, &'static str)> {
    type Rule<P> = (&'static str, fn(&Plan, &P) -> Result<Plan>);
    let rules: &[Rule<P>] = &[
        ("cancel-gpivot-gunpivot (Eq. 9)", cancel_pivot_unpivot),
        ("swap-gunpivot-gpivot (Eq. 10)", swap_unpivot_below_pivot),
        ("pivot-through-rename", pivot_through_rename),
        ("combine-composition (Eq. 6)", |p, _| try_compose(p)),
        ("combine-multicolumn (Eq. 5)", |p, _| try_multicolumn(p)),
        ("pullup-select (§5.1.1)", pullup_through_select),
        ("pullup-join (§5.1.3)", pullup_through_join),
        ("groupby-through-project", groupby_through_project),
        ("pullup-groupby (Eq. 8)", pullup_through_group_by),
        ("pullup-project (§5.1.2)", pullup_through_project),
        ("select-through-project", select_through_project),
        ("hoist-select-join", hoist_select_through_join),
        ("hoist-project-join", hoist_project_through_join),
    ];
    for (name, rule) in rules {
        if let Ok(new_plan) = rule(plan, provider) {
            if &new_plan != plan {
                return Some((new_plan, name));
            }
        }
    }
    None
}

/// Rebuild a node with each child normalized.
fn with_normalized_children<P: SchemaProvider>(
    plan: &Plan,
    provider: &P,
    log: &mut Vec<String>,
) -> Result<Plan> {
    Ok(match plan {
        Plan::Scan { .. } => plan.clone(),
        Plan::Select { input, predicate } => Plan::Select {
            input: Box::new(normalize_rec(input, provider, log)?),
            predicate: predicate.clone(),
        },
        Plan::Project { input, items } => Plan::Project {
            input: Box::new(normalize_rec(input, provider, log)?),
            items: items.clone(),
        },
        Plan::Join {
            left,
            right,
            kind,
            on,
            residual,
        } => Plan::Join {
            left: Box::new(normalize_rec(left, provider, log)?),
            right: Box::new(normalize_rec(right, provider, log)?),
            kind: *kind,
            on: on.clone(),
            residual: residual.clone(),
        },
        Plan::GroupBy {
            input,
            group_by,
            aggs,
        } => Plan::GroupBy {
            input: Box::new(normalize_rec(input, provider, log)?),
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        Plan::Union { left, right } => Plan::Union {
            left: Box::new(normalize_rec(left, provider, log)?),
            right: Box::new(normalize_rec(right, provider, log)?),
        },
        Plan::Diff { left, right } => Plan::Diff {
            left: Box::new(normalize_rec(left, provider, log)?),
            right: Box::new(normalize_rec(right, provider, log)?),
        },
        Plan::GPivot { input, spec } => Plan::GPivot {
            input: Box::new(normalize_rec(input, provider, log)?),
            spec: spec.clone(),
        },
        Plan::GUnpivot { input, spec } => Plan::GUnpivot {
            input: Box::new(normalize_rec(input, provider, log)?),
            spec: spec.clone(),
        },
    })
}

const MAX_PASSES: usize = 64;

fn normalize_rec<P: SchemaProvider>(
    plan: &Plan,
    provider: &P,
    log: &mut Vec<String>,
) -> Result<Plan> {
    let mut current = with_normalized_children(plan, provider, log)?;
    for _ in 0..MAX_PASSES {
        match apply_first_rule(&current, provider) {
            Some((new_plan, name)) => {
                log.push(name.to_string());
                current = with_normalized_children(&new_plan, provider, log)?;
            }
            None => break,
        }
    }
    Ok(current)
}

/// A classified top: stripped plan, output rename map, whether that map is
/// the in-order identity, and the recognized top shape.
type ClassifiedTop = (Plan, Vec<(String, String)>, bool, TopShape);

/// Classify a normalized tree's top and strip absorbable rename projections.
fn classify<P: SchemaProvider>(mut plan: Plan, provider: &P) -> Result<ClassifiedTop> {
    // Absorb top-level pure-column projections into the output map.
    let schema = plan.schema(provider)?;
    let mut output: Vec<(String, String)> = schema
        .column_names()
        .iter()
        .map(|c| (c.to_string(), c.to_string()))
        .collect();
    while let Plan::Project { input, items } = &plan {
        let all_pure = items.iter().all(|(e, _)| matches!(e, Expr::Col(_)));
        if !all_pure {
            break;
        }
        // Compose: output currently maps plan-columns → view-columns; the
        // project maps input-columns → plan-columns.
        let mut new_output = Vec::with_capacity(output.len());
        for (from, to) in &output {
            let (src, _) = items
                .iter()
                .find_map(|(e, n)| match e {
                    Expr::Col(c) if n == from => Some((c.clone(), n)),
                    _ => None,
                })
                .expect("output map refers to project outputs");
            new_output.push((src, to.clone()));
        }
        output = new_output;
        plan = input.as_ref().clone();
    }

    let shape = match &plan {
        Plan::GPivot { input, spec } => match input.as_ref() {
            Plan::GroupBy { group_by, aggs, .. } => TopShape::PivotOverGroupBy {
                spec: spec.clone(),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            _ if input.pivot_count() == 0 => TopShape::PivotTop { spec: spec.clone() },
            _ => TopShape::StuckPivot,
        },
        Plan::Select { input, predicate } => match input.as_ref() {
            Plan::GPivot { input: core, spec } if core.pivot_count() == 0 => {
                TopShape::SelectOverPivot {
                    spec: spec.clone(),
                    predicate: predicate.clone(),
                }
            }
            _ if plan.pivot_count() == 0 => TopShape::Relational,
            _ => TopShape::StuckPivot,
        },
        other if other.pivot_count() == 0 => TopShape::Relational,
        _ => TopShape::StuckPivot,
    };
    // Is the composed map the in-order identity over the stripped plan?
    let stripped_schema = plan.schema(provider)?;
    let identity_output = output.len() == stripped_schema.arity()
        && output
            .iter()
            .zip(stripped_schema.column_names())
            .all(|((from, to), col)| from == to && from == col);
    Ok((plan, output, identity_output, shape))
}

/// Normalize a view tree: pull pivots to the top, combine them, absorb top
/// renames, and classify the result.
pub fn normalize_view<P: SchemaProvider>(plan: &Plan, provider: &P) -> Result<NormalizedView> {
    let mut log = Vec::new();
    let normalized = normalize_rec(plan, provider, &mut log)?;
    let (stripped, output, identity_output, shape) = classify(normalized, provider)?;
    Ok(NormalizedView {
        plan: stripped,
        output,
        identity_output,
        log,
        shape,
    })
}

/// Variant used by the "SELECT pushdown" comparison strategy of §7.2.2:
/// after normalization, a remaining `Select(GPivot(core))` pair is rewritten
/// with the Eq. 7 self-join pushdown so the pivot alone tops the tree.
pub fn normalize_view_with_select_pushdown<P: SchemaProvider>(
    plan: &Plan,
    provider: &P,
) -> Result<NormalizedView> {
    let mut nv = normalize_view(plan, provider)?;
    if matches!(nv.shape, TopShape::SelectOverPivot { .. }) {
        let pushed = push_select_below_pivot_selfjoin(&nv.plan, provider)?;
        nv.log.push("select-selfjoin-pushdown (Eq. 7)".to_string());
        let (stripped, output, _, shape) = classify(pushed, provider)?;
        // Compose output maps: the new map feeds the old one. Keep the old
        // map's *order* (it is the view order).
        let composed: Vec<(String, String)> = nv
            .output
            .iter()
            .map(|(mid, to)| {
                let from = output
                    .iter()
                    .find(|(_, m)| m == mid)
                    .map(|(f, _)| f.clone())
                    .unwrap_or_else(|| mid.clone());
                (from, to.clone())
            })
            .collect();
        nv.plan = stripped;
        let stripped_schema = nv.plan.schema(provider)?;
        nv.identity_output = composed.len() == stripped_schema.arity()
            && composed
                .iter()
                .zip(stripped_schema.column_names())
                .all(|((from, to), col)| from == to && from == col);
        nv.output = composed;
        nv.shape = shape;
    }
    Ok(nv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::multicolumn_join_plan;
    use gpivot_algebra::{AggSpec, PivotSpec};
    use gpivot_storage::{DataType, Schema, SchemaRef, Value};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn provider() -> BTreeMap<String, SchemaRef> {
        let mut m = BTreeMap::new();
        m.insert(
            "facts".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[
                        ("id", DataType::Int),
                        ("attr", DataType::Str),
                        ("val", DataType::Int),
                        ("fee", DataType::Int),
                    ],
                    &["id", "attr"],
                )
                .unwrap(),
            ),
        );
        m.insert(
            "dims".to_string(),
            Arc::new(
                Schema::from_pairs_keyed(
                    &[("d_id", DataType::Int), ("grp", DataType::Str)],
                    &["d_id"],
                )
                .unwrap(),
            ),
        );
        m
    }

    fn spec() -> PivotSpec {
        PivotSpec::simple("attr", "val", vec![Value::str("a"), Value::str("b")])
    }

    #[test]
    fn bare_scan_is_relational() {
        let nv = normalize_view(&Plan::scan("facts"), &provider()).unwrap();
        assert_eq!(nv.shape, TopShape::Relational);
        assert!(nv.log.is_empty());
        assert!(nv.identity_output);
    }

    #[test]
    fn pivot_join_normalizes_to_pivot_top() {
        let plan = Plan::scan("facts")
            .project_cols(&["id", "attr", "val"])
            .gpivot(spec())
            .join(Plan::scan("dims"), vec![("id", "d_id")]);
        let nv = normalize_view(&plan, &provider()).unwrap();
        assert!(matches!(nv.shape, TopShape::PivotTop { .. }));
        // The output map restores the original (pivot-cols-before-dims)
        // column order.
        assert!(!nv.identity_output);
        let view_cols: Vec<&str> = nv.output.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(view_cols, vec!["id", "a**val", "b**val", "d_id", "grp"]);
    }

    #[test]
    fn select_pair_survives_to_the_top() {
        let plan = Plan::scan("facts")
            .project_cols(&["id", "attr", "val"])
            .gpivot(spec())
            .select(Expr::col("a**val").gt(Expr::lit(5)))
            .join(Plan::scan("dims"), vec![("id", "d_id")]);
        let nv = normalize_view(&plan, &provider()).unwrap();
        assert!(matches!(nv.shape, TopShape::SelectOverPivot { .. }));
    }

    #[test]
    fn multicolumn_canonical_form_combines_through_driver() {
        let plan = multicolumn_join_plan(
            Plan::scan("facts"),
            &["id"],
            &["attr"],
            vec![vec![Value::str("a")], vec![Value::str("b")]],
            &["val"],
            &["fee"],
        );
        assert_eq!(plan.pivot_count(), 2);
        let nv = normalize_view(&plan, &provider()).unwrap();
        assert_eq!(nv.plan.pivot_count(), 1, "Eq. 5 must fire:\n{}", nv.plan);
        assert!(nv.log.iter().any(|r| r.contains("Eq. 5")));
    }

    #[test]
    fn group_on_pivoted_columns_stays_stuck() {
        let plan = Plan::scan("facts")
            .project_cols(&["id", "attr", "val"])
            .gpivot(spec())
            .group_by(&["a**val"], vec![AggSpec::count_star("n")]);
        let nv = normalize_view(&plan, &provider()).unwrap();
        assert!(matches!(
            nv.shape,
            TopShape::Relational | TopShape::StuckPivot
        ));
    }

    #[test]
    fn select_pushdown_variant_reaches_pivot_top() {
        let plan = Plan::scan("facts")
            .project_cols(&["id", "attr", "val"])
            .gpivot(spec())
            .select(Expr::col("a**val").gt(Expr::lit(5)));
        let nv = normalize_view_with_select_pushdown(&plan, &provider()).unwrap();
        assert!(matches!(nv.shape, TopShape::PivotTop { .. }));
        assert!(nv.log.iter().any(|r| r.contains("Eq. 7")));
    }

    #[test]
    fn normalization_is_idempotent() {
        let plan = Plan::scan("facts")
            .project_cols(&["id", "attr", "val"])
            .gpivot(spec())
            .join(Plan::scan("dims"), vec![("id", "d_id")]);
        let p = provider();
        let once = normalize_view(&plan, &p).unwrap();
        let twice = normalize_view(&once.plan, &p).unwrap();
        assert_eq!(once.plan, twice.plan);
        assert!(
            twice.log.is_empty(),
            "no rules should fire again: {:?}",
            twice.log
        );
    }
}
